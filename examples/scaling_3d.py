"""3D megavoxel scaling study (paper Sec. 4.2, Figs. 9 and 10).

Measures real per-sample compute at a small 3D resolution, extrapolates to
the paper's 256^3 / 512^3 domains with the voxel-proportional FLOPs model,
and reproduces the strong-scaling curves on the Table 6 cluster models.

Usage::

    python examples/scaling_3d.py [--measure-resolution 16]
"""

from __future__ import annotations

import argparse

from repro import MGDiffNet, PoissonProblem3D
from repro.perf import (AZURE_NDV2, BRIDGES2_CPU, compute_time_at_resolution,
                        measure_sample_time, strong_scaling_study)
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure-resolution", type=int, default=16)
    args = parser.parse_args()

    r_meas = args.measure_resolution
    problem = PoissonProblem3D(resolution=r_meas)
    model = MGDiffNet(ndim=3, base_filters=8, depth=2, rng=0)
    nw = model.num_weights
    print(f"3D U-Net parameters: {nw}")

    t_meas = measure_sample_time(model, problem, r_meas, batch_size=2)
    print(f"measured compute at {r_meas}^3: {t_meas * 1e3:.1f} ms/sample")

    # --- Fig. 9: 256^3 on the V100 cluster, local batch 2, 1024 samples ---
    t256 = compute_time_at_resolution(t_meas, r_meas, 256, ndim=3)
    print(f"\nextrapolated compute at 256^3: {t256:.2f} s/sample")
    print("Fig. 9 reproduction (Azure NDv2, local batch 2, Ns=1024):")
    ps = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    pts = strong_scaling_study(ps, n_samples=1024, t_sample=t256,
                               n_params=nw, spec=AZURE_NDV2, local_batch=2)
    rows = [[p.world_size, p.nodes, f"{p.epoch_seconds:.1f}",
             f"{p.speedup:.1f}x", f"{p.efficiency:.2f}"] for p in pts]
    print(format_table(["GPUs", "nodes", "epoch (s)", "speedup", "eff"],
                       rows))

    # --- Fig. 10: 512^3 on the EPYC cluster, 1 process/node ---
    # CPU nodes are ~8x slower per sample than a V100 for this workload.
    t512 = compute_time_at_resolution(t_meas, r_meas, 512, ndim=3) * 8.0
    print(f"\nextrapolated CPU-node compute at 512^3: {t512:.1f} s/sample")
    print("Fig. 10 reproduction (Bridges2 EPYC, local batch 2, Ns=1024):")
    ps = [1, 2, 4, 8, 16, 32, 64, 128]
    pts = strong_scaling_study(ps, n_samples=1024, t_sample=t512,
                               n_params=nw, spec=BRIDGES2_CPU, local_batch=2)
    rows = [[p.world_size, f"{p.epoch_seconds:.1f}", f"{p.speedup:.1f}x",
             f"{p.efficiency:.2f}"] for p in pts]
    print(format_table(["nodes", "epoch (s)", "speedup", "eff"], rows))

    # --- Future work: gigavoxel extrapolation (paper Sec. 5) ---
    t1024 = compute_time_at_resolution(t_meas, r_meas, 1024, ndim=3) * 8.0
    pts = strong_scaling_study([128, 256, 512, 1024], n_samples=1024,
                               t_sample=t1024, n_params=nw,
                               spec=BRIDGES2_CPU, local_batch=2)
    print("\ngigavoxel (1024^3) projection:")
    rows = [[p.world_size, f"{p.epoch_seconds / 3600:.1f} h",
             f"{p.efficiency:.2f}"] for p in pts]
    print(format_table(["nodes", "epoch", "eff"], rows))


if __name__ == "__main__":
    main()
