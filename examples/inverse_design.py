"""Inverse design with the trained neural solver (the paper's motivating
application: 'computational design optimization, where hundreds (or
thousands) of simulations are necessary', Sec. 1; deployment targets in
Sec. 5: thermal transport / flow through porous media).

Task: among the 4-parameter diffusivity family, find the omega of maximum
*effective conductance* — the total flux driven through the domain by the
unit potential drop, which for the energy-minimizing field equals twice
the dissipated energy ``2 J(u; nu) = int nu |grad u|^2``.  The trained
MGDiffNet evaluates hundreds of candidates in the time a handful of FEM
solves take; the winners are then verified with FEM.

Usage::

    python examples/inverse_design.py [--candidates 256]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D, MultigridTrainer, MGTrainConfig
from repro.core import compare_fields, predict_batch
from repro.data import sample_omega


def effective_conductance(problem, u: np.ndarray, nu: np.ndarray) -> float:
    """Figure of merit: int nu |grad u|^2 == total flux x potential drop.

    Evaluated with the same Gauss-quadrature energy the solver trains on;
    a larger value means the medium conducts more effectively between the
    two Dirichlet faces.
    """
    from repro.autograd import Tensor, no_grad

    energy = problem.energy(u.shape[0], reduction="sum")
    with no_grad():
        j = energy(Tensor(u[None, None].astype(np.float32)),
                   nu[None, None].astype(np.float32))
    return 2.0 * float(j.data)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--candidates", type=int, default=256)
    parser.add_argument("--train-samples", type=int, default=32)
    args = parser.parse_args()

    problem = PoissonProblem2D(resolution=args.resolution)
    dataset = problem.make_dataset(args.train_samples)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=0)
    config = MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=4,
                           max_epochs_per_level=80, patience=10,
                           min_delta=5e-4)
    print("training surrogate (Half-V multigrid)...")
    result = MultigridTrainer(model, problem, dataset, strategy="half_v",
                              levels=2, config=config).train()
    print(f"  done in {result.total_time:.1f}s, loss {result.final_loss:.5f}")

    # --- neural screening of the design space --------------------------
    candidates = sample_omega(args.candidates, m=4, skip=50_000)
    t0 = time.perf_counter()
    fields = predict_batch(model, problem, candidates)
    grid = problem.grid()
    scores = np.array([
        effective_conductance(problem, u, problem.nu(omega))
        for u, omega in zip(fields, candidates)])
    t_screen = time.perf_counter() - t0
    best = int(np.argmax(scores))
    print(f"\nscreened {args.candidates} designs in {t_screen:.2f}s "
          f"({t_screen / args.candidates * 1e3:.1f} ms/design)")
    print(f"best omega: {np.round(candidates[best], 4)} "
          f"(score {scores[best]:.4f})")

    # --- FEM verification of the top designs ---------------------------
    order = np.argsort(-scores)[:5]
    print("\ntop-5 verification against FEM:")
    t0 = time.perf_counter()
    fem_scores = []
    for rank, idx in enumerate(order, start=1):
        ref = problem.fem_solve(candidates[idx])
        fem_score = effective_conductance(problem, ref,
                                          problem.nu(candidates[idx]))
        fem_scores.append(fem_score)
        err = compare_fields(fields[idx], ref).rel_l2
        print(f"  #{rank}: neural {scores[idx]:.4f} vs FEM {fem_score:.4f} "
              f"(field rel_L2 {err:.3f})")
    t_fem = time.perf_counter() - t0
    print("\n(note: J(u_pred) >= J(u*) by the variational principle, so "
          "neural scores upper-bound the FEM values; the *ranking* is what "
          "the screen provides)")
    print(f"5 FEM verifications took {t_fem:.2f}s — "
          f"screening the full set with FEM would take "
          f"~{t_fem / 5 * args.candidates:.0f}s vs {t_screen:.2f}s neural")

    # The neural ranking should agree with FEM on what is good.
    fem_best = max(fem_scores)
    print(f"\nneural-selected best achieves {fem_scores[0] / fem_best:.1%} "
          f"of the verified-best figure of merit")


if __name__ == "__main__":
    main()
