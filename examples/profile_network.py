"""Profile one MGDiffNet training step with the op-level profiler.

Shows where time goes in a forward+backward+loss step — the convolutions
dominate, confirming that conv throughput (the thing GPUs and the
hybrid-parallel engine of Sec. 3.2 accelerate) is the bottleneck the
paper's infrastructure targets.

Usage::

    python examples/profile_network.py [--resolution 32] [--ndim 2]
"""

from __future__ import annotations

import argparse

from repro import MGDiffNet, Trainer, TrainConfig
from repro.autograd import profile
from repro.core.problem import PoissonProblem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    parser.add_argument("--steps", type=int, default=3)
    args = parser.parse_args()

    problem = PoissonProblem(args.ndim, args.resolution)
    dataset = problem.make_dataset(8)
    model = MGDiffNet(ndim=args.ndim, base_filters=8, depth=2, rng=0)
    trainer = Trainer(model, problem, dataset,
                      TrainConfig(batch_size=4, lr=1e-3))

    # Warm up allocator/caches outside the profile window.
    trainer.run_epoch(args.resolution)

    with profile() as prof:
        for _ in range(args.steps):
            trainer.run_epoch(args.resolution)

    print(f"hot ops over {args.steps} epochs at "
          f"{args.resolution}^{args.ndim}:\n")
    print(prof.table(top=12))
    conv_s = (prof.forward.get("ConvNd").seconds
              + prof.backward.get("ConvNd").seconds)
    share = conv_s / prof.total_seconds()
    print(f"\nconvolutions: {share:.0%} of op time — the kernel the "
          f"paper's GPU/hybrid engine exists to accelerate")


if __name__ == "__main__":
    main()
