"""Async serving: mixed-priority lanes, deadlines and backpressure from
an asyncio client.

Trains a small model, then drives one prediction server from a single
event loop the way an outer simulation or design loop would:

1. a **bulk lane** — many low-priority sweep queries submitted at once,
2. an **interactive lane** — a few high-priority queries arriving into
   the saturated queue, which jump it and come back with far lower
   latency,
3. a **deadline demo** — a request with a budget too small to survive
   the queue fails with ``DeadlineExceeded`` instead of wasting compute,
4. **backpressure** — with ``max_pending`` bounding the queue, overflow
   raises ``ServerOverloaded`` synchronously and the client backs off.

Usage::

    python examples/serving_async.py [--requests 64] [--max-pending 32]
"""

from __future__ import annotations

import argparse
import asyncio
import time

import numpy as np

from repro import MGDiffNet, MGTrainConfig, MultigridTrainer, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    AsyncPredictionServer, DeadlineExceeded, ModelRegistry,
    PredictionServer, ServerConfig, ServerOverloaded,
)


async def submit_with_backoff(aserver, omega, attempts: int = 200, **kw):
    """The intended client response to backpressure: retry with backoff."""
    for attempt in range(attempts):
        try:
            return aserver.submit("demo", omega, **kw)
        except ServerOverloaded:
            await asyncio.sleep(0.002 * min(attempt + 1, 10))
    raise RuntimeError("server stayed overloaded")


async def timed(aserver, omega, **kw) -> float:
    """Client-side latency of one request, backoff time included."""
    t0 = time.perf_counter()
    await (await submit_with_backoff(aserver, omega, **kw))
    return time.perf_counter() - t0


async def run(server: PredictionServer, omegas: np.ndarray) -> None:
    async with AsyncPredictionServer(server) as aserver:
        # 1 + 2: saturate with the bulk lane, then drop a few
        # interactive queries into the full queue.
        bulk = [asyncio.ensure_future(timed(aserver, w, priority=0))
                for w in omegas]
        await asyncio.sleep(0)          # let the bulk lane enqueue
        urgent = [asyncio.ensure_future(
            timed(aserver, w, priority=9, deadline_s=30.0))
            for w in omegas[:4]]
        bulk_lat = np.asarray(await asyncio.gather(*bulk))
        urgent_lat = np.asarray(await asyncio.gather(*urgent))
        print(f"bulk lane   : n={bulk_lat.size:3d}  "
              f"p50 {1e3 * np.percentile(bulk_lat, 50):7.1f} ms  "
              f"p99 {1e3 * np.percentile(bulk_lat, 99):7.1f} ms")
        print(f"urgent lane : n={urgent_lat.size:3d}  "
              f"p50 {1e3 * np.percentile(urgent_lat, 50):7.1f} ms  "
              f"p99 {1e3 * np.percentile(urgent_lat, 99):7.1f} ms")

        # 3: a deadline the queue cannot meet fails fast and keyed.
        refill = [await submit_with_backoff(aserver, w, priority=0)
                  for w in omegas[:8]]
        try:
            await aserver.predict("demo", omegas[0] + 0.123,
                                  deadline_s=1e-4)
        except DeadlineExceeded as exc:
            print(f"deadline    : {exc}")
        await asyncio.gather(*refill)

        # 4: overflow the bounded queue hard, recover with backoff.
        flood = [await submit_with_backoff(aserver, w)
                 for w in omegas + 0.456]
        await asyncio.gather(*flood)
        print(f"backpressure: {server.stats.rejected} rejections absorbed "
              f"by client backoff, {server.stats.expired} deadline "
              f"expiries, 0 failures")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-pending", type=int, default=16)
    args = parser.parse_args()

    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=0)
    trainer = MultigridTrainer(
        model, problem, problem.make_dataset(8), strategy="half_v", levels=2,
        config=MGTrainConfig(batch_size=4, max_epochs_per_level=10))
    result = trainer.train()
    print(f"trained in {result.total_time:.1f}s, "
          f"final loss {result.final_loss:.5f}")

    registry = ModelRegistry()
    registry.register_model("demo", model, problem)
    server = PredictionServer(registry, ServerConfig(
        max_batch=args.max_batch, max_wait_ms=2.0, workers=1,
        cache_bytes=0, max_pending=args.max_pending))
    omegas = sample_omega(args.requests, problem.field.m)
    asyncio.run(run(server, omegas))


if __name__ == "__main__":
    main()
