"""Control plane: self-healing, read spreading, tenant quotas, autoscale.

Walks the SLO loops the way an operator would watch them — except
nobody operates anything; the :class:`~repro.serve.ControlPlane` does:

1. **Bring-up** — a sharded fleet plus a control plane: background
   health probes with exponential backoff, power-of-two-choices read
   spreading, per-tenant token buckets, and a queue-depth autoscaler.
2. **Kill a shard, watch it heal** — a shard dies mid-run.  The fleet
   ejects it on the first fault; the prober backs off, declares it
   permanently lost, decommissions it and re-replicates its models
   onto the survivors.  Zero operator calls, zero requests lost.
3. **Saturate one tenant** — a noisy tenant fires a burst far over its
   bucket while a polite tenant paces within its own.  The noisy
   tenant eats keyed ``TenantThrottled`` errors (with ``retry_after_s``
   to honor); the polite tenant never sees one.
4. **Load step** — a backlog spike trips the autoscaler's up-streak; a
   new shard joins the ring (minimal key movement), and once the queue
   drains the fleet scales back down to the floor.

Usage::

    python examples/serving_control.py [--shards 3] [--replicas 2]
    python examples/serving_control.py --requests 96
"""

from __future__ import annotations

import argparse
import time

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    ControlConfig, ControlPlane, FleetConfig, ServerConfig, ShardedFleet,
    TenantThrottled,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--resolution", type=int, default=16)
    args = parser.parse_args()

    # ---------------------------------------------------------------- #
    # 1. Bring-up: fleet + control plane
    # ---------------------------------------------------------------- #
    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=args.shards, replicas=args.replicas, shard_timeout_s=0.5,
        server=ServerConfig(max_batch=8, max_wait_ms=1.0, cache_bytes=0)))
    names = [f"model-{i}" for i in range(4)]
    for name in names:
        fleet.register_model(name, model, problem)

    plane = ControlPlane(fleet, ControlConfig(
        probe_base_backoff_s=0.05, probe_max_backoff_s=0.5,
        probe_timeout_s=0.5, permanent_after=6,     # dead for good -> gone
        tenant_rate=40.0, tenant_burst=20.0,        # 40 req/s per tenant
        autoscale=True, autoscale_min=args.shards,
        autoscale_max=args.shards + 2,
        scale_up_depth=4.0, scale_down_depth=0.5,
        tick_interval_s=0.02))
    print(f"fleet: {args.shards} shards x {args.replicas} replicas; "
          f"plane: {plane!r}")

    omegas = sample_omega(args.requests, 4)

    with fleet, plane:
        # ------------------------------------------------------------ #
        # 2. Kill a shard, watch the plane heal the fleet
        # ------------------------------------------------------------ #
        victim = fleet.shards[0]
        print(f"\n-- killing {victim.id} (it will never come back)")

        def dead(*a, **k):
            raise ConnectionError(f"{victim.id} is gone")

        victim.server.submit = dead
        victim.server._forward = dead

        served = 0
        for i, omega in enumerate(omegas):
            u = fleet.predict(names[i % len(names)], omega, timeout=60,
                              tenant="polite")
            served += 1
            time.sleep(1.0 / 40.0)      # polite: well inside the bucket
            if victim.id not in [s.id for s in fleet.shards]:
                break
        deadline = time.monotonic() + 30.0
        while (victim.id in [s.id for s in fleet.shards]
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert victim.id not in [s.id for s in fleet.shards], \
            "prober should have decommissioned the dead shard"
        print(f"   {victim.id} decommissioned after "
              f"{plane.stats.probes} probes; models re-replicated "
              f"({fleet.stats.reregistrations} re-registrations); "
              f"{served} requests served meanwhile, "
              f"lost={fleet.stats.lost}")
        for name in names:
            assert victim.id not in fleet.replicas_for(name)

        # ------------------------------------------------------------ #
        # 3. Saturate one tenant; the other's quota is untouched
        # ------------------------------------------------------------ #
        print("\n-- noisy tenant bursts 80 requests flat-out")
        noisy_throttled = 0
        futures = []
        for omega in sample_omega(80, 4):
            try:
                futures.append(fleet.submit("model-0", omega,
                                            tenant="noisy"))
            except TenantThrottled as exc:
                noisy_throttled += 1
                last_retry = exc.retry_after_s
        polite_throttled = 0
        for omega in sample_omega(8, 4):
            try:
                futures.append(fleet.submit("model-1", omega,
                                            tenant="polite"))
            except TenantThrottled:
                polite_throttled += 1
            time.sleep(1.0 / 20.0)
        for f in futures:
            f.result(timeout=60)
        print(f"   noisy: {noisy_throttled} throttled "
              f"(last retry_after={last_retry:.3f}s); "
              f"polite: {polite_throttled} throttled")
        assert noisy_throttled > 0 and polite_throttled == 0

        # ------------------------------------------------------------ #
        # 4. Load step: autoscale up, drain, scale back down
        # ------------------------------------------------------------ #
        print("\n-- load step: burst of slow untagged traffic")
        n_before = len(fleet.shards)
        step = [fleet.submit(names[i % len(names)], omega)
                for i, omega in enumerate(sample_omega(96, 4))]
        deadline = time.monotonic() + 20.0
        while (len(fleet.shards) == n_before
               and time.monotonic() < deadline):
            time.sleep(0.02)
        for f in step:
            fleet.await_result(f, timeout=120)
        print(f"   peak shards: {max(len(fleet.shards), n_before)} "
              f"(from {n_before}); scale_ups={fleet.stats.scale_ups}, "
              f"depth gauge now {plane.stats.last_depth:.1f}")
        deadline = time.monotonic() + 30.0
        while (len(fleet.shards) > n_before
               and time.monotonic() < deadline):
            time.sleep(0.05)
        print(f"   drained: back to {len(fleet.shards)} shards "
              f"(scale_downs={fleet.stats.scale_downs})")

    s = fleet.stats
    print(f"\nfinal: served={s.served} throttled={s.throttled} "
          f"lost={s.lost}")
    print(f"plane: {plane.stats}")
    assert s.lost == 0


if __name__ == "__main__":
    main()
