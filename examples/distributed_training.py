"""Distributed data-parallel training on the simulated cluster
(paper Sec. 3.2 / Figs. 4-6).

Demonstrates:
1. worker-count independence (Eq. 15): p=1 and p=4 produce the same model;
2. the ring all-reduce communication volume 2 (p-1)/p * Nw;
3. virtual-clock strong scaling with Table 6 interconnect models.

Usage::

    python examples/distributed_training.py
"""

from __future__ import annotations

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.distributed import DataParallelTrainer, DPConfig, ring_allreduce
from repro.perf import AZURE_NDV2, ring_allreduce_time, measure_sample_time
from repro.utils import format_table


def main() -> None:
    problem = PoissonProblem2D(resolution=16)
    dataset = problem.make_dataset(16)

    def factory():
        return MGDiffNet(ndim=2, base_filters=8, depth=2,
                         use_batchnorm=False, rng=7)

    # ------------------------------------------------------------------ #
    print("=== Eq. 15: results independent of worker count ===")
    states = {}
    for p in (1, 2, 4):
        trainer = DataParallelTrainer(
            factory, problem, dataset,
            DPConfig(world_size=p, batch_size=8, lr=1e-3))
        result = trainer.train_epochs(16, 3)
        states[p] = trainer.model.state_dict()
        print(f"p={p}: epoch losses "
              f"{[f'{l:.6f}' for l in result.losses]}")
    drift = max(np.abs(states[1][k] - states[4][k]).max() for k in states[1])
    print(f"max parameter drift p=1 vs p=4: {drift:.2e} "
          f"(float32 rounding only)\n")

    # ------------------------------------------------------------------ #
    print("=== Ring all-reduce communication volume ===")
    nw = factory().num_weights
    rows = []
    for p in (2, 4, 8):
        bufs = [np.random.default_rng(r).standard_normal(nw)
                for r in range(p)]
        _, stats = ring_allreduce(bufs)
        rows.append([p, nw * 8, stats.bytes_sent_per_rank,
                     round(stats.theoretical_bytes_per_rank)])
    print(format_table(["p", "message bytes", "sent/rank", "2(p-1)/p * N"],
                       rows))

    # ------------------------------------------------------------------ #
    print("\n=== Virtual-clock scaling (Azure NDv2 model, measured "
          "compute) ===")
    t_sample = measure_sample_time(factory(), problem, 16, batch_size=2)
    print(f"measured compute: {t_sample * 1e3:.1f} ms/sample at 16^2")
    rows = []
    base = None
    for p in (1, 2, 4, 8):
        trainer = DataParallelTrainer(
            factory, problem, dataset.padded_to_multiple(2 * p),
            DPConfig(world_size=p, batch_size=2 * p, lr=1e-3),
            comm_time_model=lambda nbytes, ws: ring_allreduce_time(
                nbytes, ws, AZURE_NDV2),
            compute_time_per_sample=t_sample)
        result = trainer.train_epochs(16, 1)
        total = result.virtual_compute_seconds + result.virtual_comm_seconds
        base = base or total
        rows.append([p, f"{total:.3f}", f"{base / total:.2f}x"])
    print(format_table(["p", "virtual epoch (s)", "speedup"], rows))


if __name__ == "__main__":
    main()
