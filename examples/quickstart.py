"""Quickstart: train MGDiffNet on a 2D parametric Poisson family and
compare one prediction against the traditional FEM solver.

Runs in ~1 minute on a laptop CPU.  Usage::

    python examples/quickstart.py [--resolution 32] [--samples 16]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (MGDiffNet, PoissonProblem2D, MultigridTrainer,
                   MGTrainConfig)
from repro.core import compare_fields
from repro.utils import ascii_field


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32,
                        help="finest voxel resolution (default 32)")
    parser.add_argument("--samples", type=int, default=16,
                        help="number of Sobol-sampled diffusivity fields")
    parser.add_argument("--levels", type=int, default=3,
                        help="multigrid levels (default 3)")
    parser.add_argument("--max-epochs", type=int, default=80,
                        help="epoch cap per prolongation phase")
    args = parser.parse_args()

    # 1. The parametric PDE: -div(nu(x; omega) grad u) = 0 on the unit
    #    square, u=1 at x=0, u=0 at x=1 (paper Sec. 2.2.1, Eq. 10 family).
    problem = PoissonProblem2D(resolution=args.resolution)
    dataset = problem.make_dataset(args.samples)

    # 2. The fully convolutional U-Net (same net at every resolution).
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=0)
    print(f"model parameters: {model.num_weights}")

    # 3. Multigrid training with the paper's best strategy (Half-V).
    config = MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=4,
                           max_epochs_per_level=args.max_epochs,
                           patience=10, min_delta=5e-4)
    trainer = MultigridTrainer(model, problem, dataset, strategy="half_v",
                               levels=args.levels, config=config)
    result = trainer.train()

    print(f"\ntrained in {result.total_time:.1f}s, "
          f"final loss {result.final_loss:.5f}")
    for rec in result.records:
        print(f"  level {rec.level} ({rec.resolution}^2) {rec.phase:13s}: "
              f"{rec.result.epochs_run:3d} epochs, {rec.wall_time:6.2f}s, "
              f"loss {rec.result.final_loss:.5f}")

    # 4. Compare a prediction against the traditional FEM solver.
    omega = dataset.omegas[0]
    pred = model.predict(problem, omega)
    ref = problem.fem_solve(omega)
    errors = compare_fields(pred, ref)
    print(f"\nomega = {np.round(omega, 4)}")
    print(f"prediction vs FEM: {errors}")

    print("\nMGDiffNet prediction:")
    print(ascii_field(pred, width=48, height=16, vmin=0, vmax=1))
    print("\nFEM reference:")
    print(ascii_field(ref, width=48, height=16, vmin=0, vmax=1))


if __name__ == "__main__":
    main()
