"""Resilience layer: retry budgets, hedged reads, circuit breakers, replay.

Walks the call-healing policies the way a client would feel them — and
then replays a scripted storm to prove the whole stack conserves every
request:

1. **Hedged reads** — one replica of a 2-way replicated key is 10x
   slower (a hot host).  Unhedged, every read waits out the slow
   primary.  With a :class:`~repro.serve.HedgePolicy` installed, a
   backup request fires on the cold replica after the tracked latency
   quantile; first answer wins, the loser is cancelled.
2. **Retries under a budget** — a shard sheds load with
   ``ServerOverloaded`` for a while.  The retry policy rides through it
   with full-jitter backoff, but the token bucket caps fleet-wide
   retries at ``burst + rate * t`` — retries can never become the storm
   they are meant to ride out.
3. **Circuit breaker** — a shard faults repeatedly; its per
   ``(model, shard)`` circuit opens and dispatch deflects to replicas
   that answer, without ever dropping a request.
4. **Scripted storm replay** — the committed
   ``benchmarks/scenarios/storm.json`` (zipfian popularity, lognormal
   arrivals, kill + hang + flap faults) replays against the fleet with
   the full stack installed.  Same seed ⇒ byte-identical event log;
   ``lost == 0`` at the end.

Usage::

    python examples/serving_resilience.py [--reads 40]
    python examples/serving_resilience.py --time-scale 0.5
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    BreakerConfig, FleetConfig, HedgeConfig, ReplayHarness,
    ResilienceConfig, RetryConfig, ServerConfig, ServerOverloaded,
    ShardedFleet, build_trace, event_log, install_resilience,
    load_scenario,
)

STORM = Path(__file__).resolve().parents[1] / "benchmarks" / "scenarios" \
    / "storm.json"


def _fleet(shards=2, replicas=2, **kw):
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=replicas,
        server=ServerConfig(max_batch=8, max_wait_ms=0.5, workers=1,
                            cache_bytes=0), **kw))


def _slow(server, delay_s):
    forward = server._forward

    def delayed(entry, omegas, resolution):
        time.sleep(delay_s)
        return forward(entry, omegas, resolution)

    server._forward = delayed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=40)
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--time-scale", type=float, default=0.25,
                        help="storm timestamp multiplier (0.25 = 4x speed)")
    args = parser.parse_args()

    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=42)

    # ---------------------------------------------------------------- #
    # 1. Hedged reads against a hot primary
    # ---------------------------------------------------------------- #
    print("-- hedged reads: primary 10x slower than its replica")
    omegas = sample_omega(args.reads, 4)
    p99 = {}
    for hedged in (False, True):
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        primary_id, _ = fleet.replicas_for("m")
        for shard in fleet.shards:
            _slow(shard.server,
                  0.02 if shard.id == primary_id else 0.002)
        if hedged:
            install_resilience(fleet, ResilienceConfig(hedge=HedgeConfig(
                quantile=90.0, max_delay_s=0.008, warmup=8)))
        with fleet:
            for w in omegas:
                fleet.predict("m", w, timeout=60)
        s = fleet.stats
        mode = "hedged  " if hedged else "unhedged"
        p99[hedged] = s.p99
        extra = (f"  ({s.hedges} hedges, {s.hedged_wins} wins, "
                 f"{s.hedge_cancels} cancelled)" if hedged else "")
        print(f"   {mode}: p50 {s.p50 * 1e3:6.2f} ms   "
              f"p99 {s.p99 * 1e3:6.2f} ms   lost={s.lost}{extra}")

    # ---------------------------------------------------------------- #
    # 2. Retries under a token-bucket budget
    # ---------------------------------------------------------------- #
    print("\n-- retries: a shard sheds load for the first 3 attempts")
    fleet = _fleet(shards=1, replicas=1)
    fleet.register_model("m", model, problem)
    install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
        max_attempts=5, base_backoff_s=0.005, max_backoff_s=0.05,
        budget_rate=2.0, budget_burst=8.0)))
    shard = fleet.shards[0]
    real, fails = shard.server.submit, {"n": 0}

    def flaky(*a, **kw):
        if fails["n"] < 3:
            fails["n"] += 1
            raise ServerOverloaded("m", None, 9, 9)
        return real(*a, **kw)

    shard.server.submit = flaky
    with fleet:
        t0 = time.perf_counter()
        fleet.predict("m", omegas[0], timeout=60)
        wall = time.perf_counter() - t0
    s = fleet.stats
    print(f"   served after {s.retried} budgeted retries in "
          f"{wall * 1e3:.1f} ms; budget ceiling over that window: "
          f"{fleet.retry.budget_ceiling(wall):.1f} tokens; lost={s.lost}")
    assert s.retried <= fleet.retry.budget_ceiling(wall)

    # ---------------------------------------------------------------- #
    # 3. Circuit breaker deflects away from a faulting shard
    # ---------------------------------------------------------------- #
    # One fault trips the circuit here: the fleet's own health marks
    # eject a faulting shard immediately, so a higher threshold would
    # never accumulate — the breaker's job is the *deflection* that
    # keeps later submits from even trying the broken (model, shard).
    print("\n-- breaker: a replica faults, its circuit opens, load deflects")
    fleet = _fleet()
    fleet.register_model("m", model, problem)
    install_resilience(fleet, ResilienceConfig(
        breaker=BreakerConfig(failure_threshold=1, reset_after_s=30.0)))
    primary_id, _ = fleet.replicas_for("m")
    victim = {s.id: s for s in fleet.shards}[primary_id]

    def dead(*a, **kw):
        raise ConnectionError(f"{victim.id} is down")

    victim.server.submit = dead
    with fleet:
        for w in omegas[:8]:
            fleet.predict("m", w, timeout=60)
    s = fleet.stats
    print(f"   circuit for ({'m'}, {primary_id}): "
          f"{fleet.breaker.state(('m', primary_id))}; "
          f"{s.breaker_open} deflections, {s.failovers} failovers, "
          f"served={s.served}, lost={s.lost}")
    assert fleet.breaker.state(("m", primary_id)) == "open"

    # ---------------------------------------------------------------- #
    # 4. The committed storm, full stack installed
    # ---------------------------------------------------------------- #
    scenario = load_scenario(STORM)
    print(f"\n-- replaying {scenario.name!r} (seed {scenario.seed}, "
          f"{scenario.duration_s:.0f}s of scenario time at "
          f"{1 / args.time_scale:.0f}x speed)")
    fleet = _fleet(shards=3, shard_timeout_s=1.0 * args.time_scale)
    for name in scenario.models:
        fleet.register_model(name, model, problem)
    install_resilience(fleet, ResilienceConfig(
        retry=RetryConfig(max_attempts=4, budget_rate=4.0,
                          budget_burst=12.0),
        hedge=HedgeConfig(quantile=95.0, max_delay_s=0.05),
        breaker=BreakerConfig(failure_threshold=3, reset_after_s=0.5)))
    with fleet:
        report = ReplayHarness(fleet, scenario,
                               time_scale=args.time_scale).run()
    print(f"   {report.requests} requests, outcomes: {report.outcomes}; "
          f"retried={report.stats.retried} hedges={report.stats.hedges} "
          f"breaker_open={report.stats.breaker_open} "
          f"failovers={report.stats.failovers} lost={report.lost}")
    rebuilt = event_log(build_trace(
        scenario, omega_dim=int(problem.field.m)))
    print(f"   same seed replays byte-identically: "
          f"{rebuilt == report.log}")
    assert report.lost == 0
    assert rebuilt == report.log
    print("\nall storms weathered: lost == 0 with the full stack on")


if __name__ == "__main__":
    main()
