"""Sharded serving fleet: consistent-hash routing, kill-a-shard failover.

Walks the fleet lifecycle the way an operator would see it:

1. **Bring-up** — N shards (simulated hosts), each a full
   ``PredictionServer`` with its own worker, executor and cache; models
   register onto their R-replica shards via the consistent-hash ring.
2. **Routed load** — a mixed request storm spreads over the shards by
   routing key; the merged ``FleetStats`` show the partition.
3. **Kill a shard** — the primary replica of one model starts raising
   mid-run.  The fleet ejects it, fails the in-flight requests over to
   the replicas, and not one request is lost
   (``stats.lost == 0`` is the conservation law the fault-injection
   suite enforces).
4. **Recovery** — the fault clears, a health probe re-admits the shard,
   and traffic returns to it.

Usage::

    python examples/serving_fleet.py [--shards 4] [--replicas 2]
    python examples/serving_fleet.py --requests 128
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import FleetConfig, ServerConfig, ShardedFleet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--resolution", type=int, default=16)
    args = parser.parse_args()

    # ---------------------------------------------------------------- #
    # 1. Bring-up: shards, ring, replicated registration
    # ---------------------------------------------------------------- #
    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=args.shards, replicas=args.replicas,
        server=ServerConfig(max_batch=8, max_wait_ms=1.0, cache_bytes=0)))
    names = [f"model-{i}" for i in range(4)]
    for name in names:
        fleet.register_model(name, model, problem)
        print(f"registered {name!r:10s} -> replicas "
              f"{fleet.replicas_for(name)}")

    omegas = sample_omega(args.requests, 4)

    with fleet:
        # ------------------------------------------------------------ #
        # 2. Routed load: keys partition the fleet
        # ------------------------------------------------------------ #
        t0 = time.perf_counter()
        futures = [fleet.submit(names[i % len(names)], w)
                   for i, w in enumerate(omegas)]
        for f in futures:
            f.result(timeout=120)
        wall = time.perf_counter() - t0
        s = fleet.stats
        print(f"\nstorm: {s.served} requests in {wall:.3f}s "
              f"({s.served / wall:.0f} QPS) over {s.shards} shards")
        for sid, row in s.per_shard.items():
            print(f"  {sid}: {row['requests']} requests, "
                  f"models {row['models']}")

        # ------------------------------------------------------------ #
        # 3. Kill the primary of names[0] mid-run: failover
        # ------------------------------------------------------------ #
        victim_id = fleet.replicas_for(names[0])[0]
        victim = next(sh for sh in fleet.shards if sh.id == victim_id)
        healthy_forward = victim.server._forward

        def faulted(entry, batch, resolution):
            raise RuntimeError(f"{victim_id} power-cycled")

        victim.server._forward = faulted
        print(f"\ninjecting fault into {victim_id} "
              f"(primary for {names[0]!r}) ...")
        u = fleet.predict(names[0], omegas[0], timeout=120)
        s = fleet.stats
        print(f"request survived via replica: field range "
              f"[{u.min():.4f}, {u.max():.4f}]")
        print(f"ejections={s.shard_faults} failovers={s.failovers} "
              f"healthy={s.healthy_shards}/{s.shards} lost={s.lost}")

        # ------------------------------------------------------------ #
        # 4. Recovery: probe + re-admission
        # ------------------------------------------------------------ #
        victim.server._forward = healthy_forward
        readmitted = fleet.check_health()
        before = victim.server.stats.requests
        fleet.predict(names[0], omegas[1] if len(omegas) > 1 else omegas[0],
                      timeout=120)
        s = fleet.stats
        print(f"\nrecovery: probed + re-admitted {readmitted}; "
              f"{victim_id} served "
              f"{victim.server.stats.requests - before} more request(s)")
        print(f"final: served={s.served} lost={s.lost} "
              f"probes={s.probes} readmissions={s.readmissions}")


if __name__ == "__main__":
    main()
