"""MGDiffNet vs traditional FEM on the paper's anecdotal parameter values
(Tables 3, 4, 5 and 7), plus the Sec. 4.3 inference-vs-solve timing.

Trains a Half-V multigrid model, then evaluates it on the exact omega
tuples printed in the paper and reports quantitative error metrics in
place of the paper's difference plots.

Usage::

    python examples/fem_comparison.py [--resolution 32]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MGDiffNet, PoissonProblem2D, MultigridTrainer, MGTrainConfig
from repro.core import compare_fields, time_inference_vs_fem
from repro.utils import ascii_field, format_table

# The omega values printed in the paper's tables.
PAPER_OMEGAS = {
    "Table 3/5/7a": (0.3105, 1.5386, 0.0932, -1.2442),
    "Table 4a": (0.6681, 1.5354, 0.7644, -2.9709),
    "Table 4b": (1.3821, 2.5508, 0.1750, 2.1269),
    "Table 7b": (0.2838, -2.3550, 2.9574, -1.8963),
    "Table 7c": (0.0293, -2.0943, 0.1386, -2.3271),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--samples", type=int, default=32)
    parser.add_argument("--max-epochs", type=int, default=100)
    args = parser.parse_args()

    problem = PoissonProblem2D(resolution=args.resolution)
    dataset = problem.make_dataset(args.samples)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=1)
    config = MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=4,
                           max_epochs_per_level=args.max_epochs,
                           patience=10, min_delta=5e-4)
    trainer = MultigridTrainer(model, problem, dataset, strategy="half_v",
                               levels=2, config=config)
    result = trainer.train()
    print(f"trained: {result.total_time:.1f}s, loss {result.final_loss:.5f}\n")

    rows = []
    for name, omega in PAPER_OMEGAS.items():
        omega = np.asarray(omega)
        pred = model.predict(problem, omega)
        ref = problem.fem_solve(omega)
        e = compare_fields(pred, ref)
        rows.append([name, str(tuple(np.round(omega, 3))),
                     round(e.rel_l2, 4), round(e.linf, 4), round(e.mae, 4)])
    print(format_table(["case", "omega", "rel L2", "Linf", "MAE"], rows))

    omega = np.asarray(PAPER_OMEGAS["Table 3/5/7a"])
    print("\ndiffusivity nu (log scale):")
    print(ascii_field(np.log(problem.nu(omega)), width=48, height=14))
    print("\nu_MGDiffNet:")
    print(ascii_field(model.predict(problem, omega), width=48, height=14,
                      vmin=0, vmax=1))
    print("\nu_FEM:")
    print(ascii_field(problem.fem_solve(omega), width=48, height=14,
                      vmin=0, vmax=1))

    timing = time_inference_vs_fem(model, problem, omega)
    print(f"\nSec 4.3 timing at {args.resolution}^2: "
          f"inference {timing.inference_seconds * 1e3:.1f} ms vs "
          f"FEM {timing.fem_seconds * 1e3:.1f} ms "
          f"({timing.speedup:.1f}x)")


if __name__ == "__main__":
    main()
