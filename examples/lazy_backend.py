"""The lazy op-graph backend: fusion and JIT-compiled kernels, end to end.

Eager NumPy executes ``x + omega * inv_d * r * interior`` as a parade of
full-size temporaries; the ``"lazy"`` backend records the chain as a
graph, fuses it into one kernel at ``realize()``, and — when a C
compiler is on the host — lowers the fused expression to generated C,
compiled once and cached on disk for every later process.

This example:

1. runs the GMG damped-Jacobi smoother chain under eager and lazy and
   shows the fusion statistics (clusters, ops folded, JIT vs
   interpreted runs);
2. demonstrates that results are identical to the last bit;
3. shows the kernel signature — the structural identity that lets any
   process reuse the compiled kernel regardless of data values;
4. times both paths.

Usage::

    python examples/lazy_backend.py
    REPRO_JIT_DISABLE=1 python examples/lazy_backend.py   # interpreter
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import (
    lazy_stats, ops as B, realize, reset_lazy_stats, use_backend,
)
from repro.backend.lazy import jit_enabled
from repro.utils import format_table

SIZE = 1 << 20
SWEEPS = 10
OMEGA = 2.0 / 3.0


def smoother_chain(x, r, diag, interior, sweeps):
    """Damped-Jacobi updates — the hot chain inside every GMG cycle."""
    for _ in range(sweeps):
        inv_d = B.where(diag != 0, 1.0 / diag, 0.0)
        x = realize(x + OMEGA * inv_d * r * interior)
    return x


def main() -> None:
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(SIZE)
    r = rng.standard_normal(SIZE)
    diag = rng.uniform(1.0, 2.0, SIZE)
    interior = (np.arange(SIZE) % 7 != 0).astype(np.float64)

    def eager_run():
        return smoother_chain(x0.copy(), r, diag, interior, SWEEPS)

    def lazy_run():
        return np.asarray(smoother_chain(
            B.asarray(x0.copy()), B.asarray(r), B.asarray(diag),
            B.asarray(interior), SWEEPS))

    def best_of(fn, reps=3):
        times, out = [], None
        for _ in range(reps):
            t0 = time.perf_counter()
            out = fn()
            times.append(time.perf_counter() - t0)
        return min(times), out

    # Eager reference.
    t_eager, eager = best_of(eager_run)

    # Lazy: same code, backend switched; realize() fuses each sweep.
    with use_backend("lazy"):
        lazy_run()                                    # warm the JIT cache
        reset_lazy_stats()
        t_lazy, lazy = best_of(lazy_run)
        stats = lazy_stats()

    assert np.array_equal(eager, lazy), "lazy must match eager bitwise"

    mode = "JIT (compiled C)" if jit_enabled() else "interpreter (no cc)"
    print(f"backend executor: {mode}\n")
    print(format_table(
        ["path", "time (ms)", "clusters", "fused ops", "jit", "interp"],
        [["eager", f"{t_eager * 1e3:.1f}", "-", "-", "-", "-"],
         ["lazy", f"{t_lazy * 1e3:.1f}", stats["clusters"],
          stats["fused_ops"], stats["jit_runs"],
          stats["interpreted_runs"]]]))

    sig = stats["recent_signatures"][-1]
    print(f"\nfused kernel signature (structure only, value-free):\n  {sig}")
    print("\nSame signature in any process → same cached kernel "
          "(~/.cache/repro/jit_kernels). Results are bitwise identical: "
          f"{np.array_equal(eager, lazy)}")


if __name__ == "__main__":
    main()
