"""Serving: train once, then answer many ω queries through the
batching/caching prediction server — the paper's Sec. 4.3 economics.

Trains a small model, registers it, and compares three ways to answer
the same Sobol-sampled request load:

1. sequential single-request inference (the baseline),
2. the worker-thread server with dynamic micro-batching,
3. a replay of the same load (every request a cache hit).

Usage::

    python examples/serving.py [--resolution 16] [--requests 64]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import MGDiffNet, MGTrainConfig, MultigridTrainer, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import ModelRegistry, PredictionServer, ServerConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=0)
    trainer = MultigridTrainer(
        model, problem, problem.make_dataset(8), strategy="half_v", levels=2,
        config=MGTrainConfig(batch_size=4, max_epochs_per_level=10))
    result = trainer.train()
    print(f"trained in {result.total_time:.1f}s, "
          f"final loss {result.final_loss:.5f}")

    registry = ModelRegistry()
    registry.register_model("demo", model, problem)
    omegas = sample_omega(args.requests, problem.field.m)

    # 1. Sequential baseline: one forward per request, no server.
    t0 = time.perf_counter()
    for omega in omegas:
        model.predict(problem, omega)
    t_seq = time.perf_counter() - t0

    # 2. Batched serving (cold cache).
    server = PredictionServer(registry, ServerConfig(
        max_batch=args.max_batch, max_wait_ms=20, workers=args.workers))
    t0 = time.perf_counter()
    with server:
        futures = [server.submit("demo", w) for w in omegas]
        fields = np.stack([f.result() for f in futures])
    t_batched = time.perf_counter() - t0

    # 3. Replay: the cache answers everything.
    t0 = time.perf_counter()
    replay = server.predict_many("demo", omegas)
    t_cached = time.perf_counter() - t0
    np.testing.assert_allclose(replay, fields, atol=1e-6)

    n = len(omegas)
    print(f"sequential : {n / t_seq:8.1f} QPS")
    print(f"batched    : {n / t_batched:8.1f} QPS "
          f"({t_seq / t_batched:.2f}x, mean batch "
          f"{server.stats.mean_batch_size:.1f})")
    print(f"cache replay: {n / t_cached:7.1f} QPS "
          f"(hit rate {100 * server.cache.stats.hit_rate:.0f}%)")


if __name__ == "__main__":
    main()
