"""Serving: train once, then answer many ω queries through the
batching/caching prediction server — the paper's Sec. 4.3 economics.

Trains a small model, registers it, and compares four ways to answer
the same Sobol-sampled request load:

1. sequential single-request inference (the baseline),
2. the worker-thread server with dynamic micro-batching,
3. the same server with a *process-pool* compute layer (``--executor
   process`` escapes the GIL: fused forwards run in worker processes,
   each with a freshly initialised backend),
4. a replay of the same load (every request a cache hit).

``--autotune`` additionally switches the conv planner to measured
autotuning: on first sight of each conv signature both engines are
timed, the winner is locked in, and the decision table persists across
restarts (keyed by host fingerprint).

Usage::

    python examples/serving.py [--resolution 16] [--requests 64]
    python examples/serving.py --executor process --autotune
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import MGDiffNet, MGTrainConfig, MultigridTrainer, PoissonProblem2D
from repro.backend import set_conv_plan_mode
from repro.data.sobol import sample_omega
from repro.serve import ModelRegistry, PredictionServer, ServerConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--executor", default="process",
                        choices=("serial", "thread", "process"),
                        help="compute layer for comparison step 3")
    parser.add_argument("--autotune", action="store_true",
                        help="measured conv autotuning (persisted per host)")
    args = parser.parse_args()

    if args.autotune:
        set_conv_plan_mode("autotune")

    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=0)
    trainer = MultigridTrainer(
        model, problem, problem.make_dataset(8), strategy="half_v", levels=2,
        config=MGTrainConfig(batch_size=4, max_epochs_per_level=10))
    result = trainer.train()
    print(f"trained in {result.total_time:.1f}s, "
          f"final loss {result.final_loss:.5f}")

    registry = ModelRegistry()
    registry.register_model("demo", model, problem)
    omegas = sample_omega(args.requests, problem.field.m)

    # 1. Sequential baseline: one forward per request, no server.
    t0 = time.perf_counter()
    for omega in omegas:
        model.predict(problem, omega)
    t_seq = time.perf_counter() - t0

    # 2. Batched serving (cold cache), compute inline on worker threads.
    server = PredictionServer(registry, ServerConfig(
        max_batch=args.max_batch, max_wait_ms=20, workers=args.workers))
    t0 = time.perf_counter()
    with server:
        futures = [server.submit("demo", w) for w in omegas]
        fields = np.stack([f.result() for f in futures])
    t_batched = time.perf_counter() - t0

    # 3. Same load through a parallel compute executor (cold cache).
    pool_server = PredictionServer(registry, ServerConfig(
        max_batch=args.max_batch, max_wait_ms=20, workers=args.workers,
        executor=args.executor))
    t0 = time.perf_counter()
    with pool_server:   # exit also releases the process pool
        futures = [pool_server.submit("demo", w) for w in omegas]
        pool_fields = np.stack([f.result() for f in futures])
        # All futures resolved: measure before the exit so pool
        # teardown does not count against the executor's QPS.
        t_pool = time.perf_counter() - t0
    np.testing.assert_allclose(pool_fields, fields, atol=1e-6)

    # 4. Replay: the cache answers everything.
    t0 = time.perf_counter()
    replay = server.predict_many("demo", omegas)
    t_cached = time.perf_counter() - t0
    np.testing.assert_allclose(replay, fields, atol=1e-6)

    n = len(omegas)
    print(f"sequential      : {n / t_seq:8.1f} QPS")
    print(f"batched threads : {n / t_batched:8.1f} QPS "
          f"({t_seq / t_batched:.2f}x, mean batch "
          f"{server.stats.mean_batch_size:.1f})")
    print(f"{args.executor:7s} executor: {n / t_pool:8.1f} QPS "
          f"({t_seq / t_pool:.2f}x)")
    print(f"cache replay    : {n / t_cached:7.1f} QPS "
          f"(hit rate {100 * server.cache.stats.hit_rate:.0f}%)")


if __name__ == "__main__":
    main()
