"""Unified telemetry: trace a hedged request, reconcile the ledgers.

Walks the observability layer end-to-end:

1. **Trace a hedged read** — one replica of a 2-way replicated key is
   10x slower.  With hedging installed and a :class:`~repro.serve.
   Telemetry` bundle enabled, every read leaves a span tree:
   ``fleet.request`` roots, ``fleet.attempt`` per shard try,
   ``fleet.hedge`` when the backup fires, and under each attempt the
   server-side stages (``queue.wait``, ``batch.collect``,
   ``server.forward``).  The per-stage latency table shows exactly
   where the time went — the same table ``repro trace summarize``
   renders offline from an exported jsonl.
2. **Reconcile the ledgers** — the metrics registry counts outcomes on
   an independent path from the legacy stats dataclasses; the
   conservation law (``submitted == served + ... ; lost == 0``) must
   hold on both and they must agree term by term.
3. **Golden trace** — the committed storm replayed under a
   :class:`~repro.serve.VirtualClock` twice produces byte-identical
   span jsonl: every timestamp is a pure function of the trace, so a
   trace diff is a semantic diff (the contract pinned by
   ``tests/serve/test_telemetry.py``).

Usage::

    python examples/serving_telemetry.py [--reads 32]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    FleetConfig, HedgeConfig, ReplayHarness, ResilienceConfig, RetryConfig,
    ServerConfig, ShardedFleet, Telemetry, VirtualClock, export_jsonl,
    format_summary, install_resilience, load_scenario, summarize_spans,
)

STORM = Path(__file__).resolve().parents[1] / "benchmarks" / "scenarios" \
    / "storm.json"

CONSERVED = ("served", "rejected", "expired", "errors", "cancelled",
             "unavailable", "throttled")


def _fleet(shards=2, replicas=2, **kw):
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=replicas,
        server=ServerConfig(max_batch=8, max_wait_ms=0.5, workers=1,
                            cache_bytes=0), **kw))


def _slow(server, delay_s):
    forward = server._forward

    def delayed(entry, omegas, resolution, **kw):
        time.sleep(delay_s)
        return forward(entry, omegas, resolution, **kw)

    server._forward = delayed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=32)
    parser.add_argument("--resolution", type=int, default=16)
    args = parser.parse_args()

    problem = PoissonProblem2D(args.resolution)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=42)

    # ---------------------------------------------------------------- #
    # 1. Trace hedged reads against a hot primary
    # ---------------------------------------------------------------- #
    print("-- tracing hedged reads: primary 10x slower than its replica")
    fleet = _fleet()
    fleet.register_model("m", model, problem)
    primary_id, _ = fleet.replicas_for("m")
    for shard in fleet.shards:
        _slow(shard.server, 0.02 if shard.id == primary_id else 0.002)
    install_resilience(fleet, ResilienceConfig(hedge=HedgeConfig(
        quantile=90.0, max_delay_s=0.008, warmup=8)))
    tel = Telemetry()
    fleet.enable_telemetry(tel)
    with fleet:
        for w in sample_omega(args.reads, 4):
            fleet.predict("m", w, timeout=60)

    spans = tel.tracer.spans()
    print(format_summary(summarize_spans(spans)))
    hedges = [s for s in spans if s.name == "fleet.hedge"]
    roots = [s for s in spans if s.name == "fleet.request"]
    print(f"   {len(roots)} request trees, {len(hedges)} hedge spans "
          f"({fleet.stats.hedged_wins} backup wins)")
    assert len(roots) == args.reads

    # ---------------------------------------------------------------- #
    # 2. Reconcile registry counters against the legacy stats views
    # ---------------------------------------------------------------- #
    print("\n-- conservation law, on both accounting paths")
    reg, stats = tel.metrics, fleet.stats
    total = sum(reg.value(f"fleet.{k}") for k in CONSERVED)
    print(f"   counters: submitted={reg.value('fleet.submitted'):.0f} == "
          f"sum(outcomes)={total:.0f}")
    for key in ("submitted",) + CONSERVED:
        assert reg.value(f"fleet.{key}") == reg.value(f"stats.fleet.{key}") \
            == getattr(stats, key)
    assert stats.lost == 0
    print(f"   every term matches the legacy view; lost={stats.lost}")

    # ---------------------------------------------------------------- #
    # 3. Golden trace: the storm under a virtual clock, twice
    # ---------------------------------------------------------------- #
    scenario = load_scenario(STORM)
    print(f"\n-- golden trace: {scenario.name!r} (seed {scenario.seed}) "
          f"under a virtual clock, twice")

    def run():
        clock = VirtualClock()
        tel = Telemetry(clock=clock)
        fleet = _fleet(shards=3)
        for name in scenario.models:
            fleet.register_model(name, model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=4, base_backoff_s=0.002, max_backoff_s=0.02)))
        fleet.enable_telemetry(tel)
        report = ReplayHarness(fleet, scenario, clock=clock,
                               telemetry=tel).run()
        return export_jsonl(tel.tracer.spans()), report

    first, report = run()
    second, _ = run()
    print(f"   {report.requests} requests -> "
          f"{len(first.splitlines())} spans; lost={report.lost}")
    print(f"   byte-identical across runs: {first == second}")
    assert first == second
    assert report.lost == 0
    print("\nevery request accounted for, every millisecond attributed")


if __name__ == "__main__":
    main()
