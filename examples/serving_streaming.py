"""Streaming tiled inference: consume a megavoxel field tile by tile.

A full-field prediction on a large grid makes the client wait for the
*last* tile before it sees the first byte.  Streaming inverts that: the
server yields ``(tile_index, core_slices, core)`` records as the
compute pool completes them, so a renderer, an outer solver loop, or a
downsampling probe starts working while most of the volume is still in
flight.  Four demos on one small 3D model:

1. **progressive assembly** — stream a 32^3 prediction through
   ``PredictionServer.submit_stream`` and paint the field tile by tile,
   reporting first-tile vs full-field latency; the assembled field is
   bitwise-identical to ``tiled_predict``,
2. **early exit** — a consumer that only needs a subregion closes the
   stream after the tiles it wanted; the producer is released, nothing
   else is computed into the void,
3. **per-tile deadlines** — a stream whose budget expires mid-flight
   dies with a keyed ``DeadlineExceeded`` carrying how many tiles were
   already delivered (they remain valid — a partial field is usable),
4. **asyncio face** — the same stream consumed with ``async for`` from
   an event loop, tile waits kept off-loop.

Usage::

    python examples/serving_streaming.py [--resolution 32] [--tile 16]
"""

from __future__ import annotations

import argparse
import asyncio
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem3D
from repro.serve import (
    AsyncPredictionServer, DeadlineExceeded, ModelRegistry,
    PredictionServer, ServerConfig, tiled_predict,
)


def progressive(server, problem, omega, resolution) -> None:
    shape = problem.grid(resolution).shape
    out = np.zeros(shape)
    t0 = time.perf_counter()
    stream = server.submit_stream("demo", omega, resolution)
    first = None
    for i, sl, core in stream:
        if first is None:
            first = time.perf_counter() - t0
        out[sl] = core
        done = 100.0 * stream.delivered / stream.num_tiles
        print(f"  tile {i}: {core.shape} at {sl[0].start, sl[1].start, sl[2].start}"
              f" -> {done:3.0f}% painted")
    full = time.perf_counter() - t0
    exact = tiled_predict(server.registry.get("demo").model, problem, omega,
                          resolution=resolution, tile=server.config.tile,
                          halo=server.config.halo)[0]
    print(f"progressive : first tile {first * 1e3:.1f} ms, full field "
          f"{full * 1e3:.1f} ms, bitwise equal: {np.array_equal(out, exact)}")


def early_exit(server, omega, resolution, want: int = 2) -> None:
    stream = server.submit_stream("demo", omega + 0.111, resolution)
    taken = [i for i, (idx, _, _) in zip(range(want), stream)]
    stream.close()                     # releases the producing worker
    print(f"early exit  : took tiles {taken} of {stream.num_tiles}, "
          f"closed the stream")


def deadline(server, omega, resolution) -> None:
    try:
        for _ in server.submit_stream("demo", omega + 0.222, resolution,
                                      deadline_s=1e-4):
            pass
    except DeadlineExceeded as exc:
        print(f"deadline    : {exc}")


async def async_face(server, problem, omega, resolution) -> None:
    out = np.zeros(problem.grid(resolution).shape)
    async with AsyncPredictionServer(server) as aserver:
        async for i, sl, core in aserver.stream("demo", omega + 0.333,
                                                resolution, buffer_tiles=1):
            out[sl] = core
    print(f"async       : assembled {out.shape} field from an event loop, "
          f"range [{out.min():.4f}, {out.max():.4f}]")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--tile", type=int, default=16)
    parser.add_argument("--halo", type=int, default=4)
    args = parser.parse_args()

    problem = PoissonProblem3D(16)
    model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=0)
    registry = ModelRegistry()
    registry.register_model("demo", model, problem)
    server = PredictionServer(registry, ServerConfig(
        max_batch=4, max_wait_ms=0.5, workers=1, cache_bytes=0,
        tile=args.tile, halo=args.halo))
    omega = np.array([0.3105, 1.5386, 0.0932, -1.2442])

    with server:
        progressive(server, problem, omega, args.resolution)
        early_exit(server, omega, args.resolution)
        deadline(server, omega, args.resolution)
        asyncio.run(async_face(server, problem, omega, args.resolution))
    s = server.stats
    print(f"server stats: {s.streams} streams, {s.stream_tiles} stream "
          f"tiles, {s.expired} expired")


if __name__ == "__main__":
    main()
