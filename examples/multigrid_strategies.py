"""Compare the four multigrid training strategies (paper Table 1 / Fig. 3).

Trains the same initial network with V, W, F and Half-V cycles plus the
full-resolution baseline, and reports time-to-converge, final loss and
speedup — the structure of Table 1 at laptop scale.

Usage::

    python examples/multigrid_strategies.py [--resolution 32] [--levels 3]
"""

from __future__ import annotations

import argparse

from repro import MGDiffNet, PoissonProblem2D, MultigridTrainer, MGTrainConfig
from repro.multigrid import STRATEGIES
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--samples", type=int, default=16)
    parser.add_argument("--max-epochs", type=int, default=60)
    args = parser.parse_args()

    problem = PoissonProblem2D(resolution=args.resolution)
    dataset = problem.make_dataset(args.samples)
    config = MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=3,
                           max_epochs_per_level=args.max_epochs,
                           patience=8, min_delta=5e-4)

    def fresh_model():
        return MGDiffNet(ndim=2, base_filters=8, depth=2, rng=42)

    # Baseline: full training at the finest resolution.
    base_tr = MultigridTrainer(fresh_model(), problem, dataset,
                               strategy="half_v", levels=args.levels,
                               config=config)
    base = base_tr.train_baseline()
    print(f"baseline: {base.wall_time:.1f}s, loss {base.final_loss:.5f}, "
          f"{base.epochs_run} epochs\n")

    rows = []
    for strategy in STRATEGIES:
        trainer = MultigridTrainer(fresh_model(), problem, dataset,
                                   strategy=strategy, levels=args.levels,
                                   config=config)
        result = trainer.train()
        frac = result.time_fraction_per_level()
        frac_str = " ".join(f"L{l}:{frac.get(l, 0):.0%}"
                            for l in range(1, args.levels + 1))
        rows.append([strategy, round(base.wall_time, 1),
                     round(result.total_time, 1),
                     round(base.final_loss, 5), round(result.final_loss, 5),
                     f"{base.wall_time / result.total_time:.2f}x", frac_str])

    print(format_table(
        ["Strategy", "Base Time (s)", "MG Time (s)", "Base Loss", "MG Loss",
         "Speedup", "Time/level (Fig 7)"], rows))


if __name__ == "__main__":
    main()
