"""The classic geometric-multigrid FEM solver (paper Sec. 2.3 substrate).

Solves the variable-coefficient Poisson problem with V / W / F cycles and
shows the hallmark property that inspired MGDiffNet's training schedule:
iteration counts independent of resolution.

Usage::

    python examples/gmg_solver.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import LogPermeabilityField
from repro.fem import (UniformGrid, FEMSolver, GeometricMultigrid,
                       canonical_bc)
from repro.utils import format_table


def main() -> None:
    field = LogPermeabilityField(2)
    omega = np.array([0.3105, 1.5386, 0.0932, -1.2442])  # paper Table 3

    rows = []
    for res in (33, 65, 129):
        grid = UniformGrid(2, res)
        nu = field.evaluate(omega, grid)
        bc = canonical_bc(grid)

        t0 = time.perf_counter()
        ref = FEMSolver(grid).solve(nu, bc, method="direct")
        t_direct = time.perf_counter() - t0

        for cycle in ("v", "w", "f"):
            gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
            t0 = time.perf_counter()
            u = gmg.solve(tol=1e-9, cycle=cycle)
            t_mg = time.perf_counter() - t0
            rep = gmg.last_report
            rows.append([f"{res - 1}^2", cycle.upper(), gmg.num_levels,
                         rep.iterations, f"{rep.residual:.1e}",
                         f"{np.abs(u - ref).max():.1e}",
                         f"{t_mg * 1e3:.0f}", f"{t_direct * 1e3:.0f}"])

    print(format_table(
        ["elements", "cycle", "levels", "iters", "rel res", "err vs LU",
         "MG (ms)", "LU (ms)"], rows))
    print("\nNote the resolution-independent iteration counts — the "
          "property MGDiffNet's training cycles import into deep learning.")


if __name__ == "__main__":
    main()
