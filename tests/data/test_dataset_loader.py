"""Dataset caching / augmentation and the Eq. 15 sharding property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (DiffusivityDataset, LogPermeabilityField,
                        BatchSampler, shard_batch)


@pytest.fixture
def dataset():
    return DiffusivityDataset(LogPermeabilityField(2), 10)


class TestDataset:
    def test_shapes(self, dataset):
        assert dataset.inputs_at(8).shape == (10, 1, 8, 8)
        assert dataset.nu_at(16).shape == (10, 1, 16, 16)

    def test_cache_identity(self, dataset):
        a = dataset.inputs_at(8)
        assert dataset.inputs_at(8) is a
        dataset.clear_cache(8)
        assert dataset.inputs_at(8) is not a

    def test_log_transform_default(self, dataset):
        x = dataset.inputs_at(8)
        nu = dataset.nu_at(8)
        np.testing.assert_allclose(np.exp(x), nu, rtol=1e-4)

    def test_identity_transform(self):
        ds = DiffusivityDataset(LogPermeabilityField(2), 4,
                                input_transform="identity")
        np.testing.assert_allclose(ds.inputs_at(8), ds.nu_at(8))

    def test_padding_multiple(self, dataset):
        padded = dataset.padded_to_multiple(4)
        assert len(padded) == 12
        np.testing.assert_array_equal(padded.omegas[10], dataset.omegas[0])

    def test_padding_noop_when_divisible(self, dataset):
        assert dataset.padded_to_multiple(5) is dataset

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([1, 3]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.omegas[1], dataset.omegas[3])

    def test_explicit_omegas(self):
        om = np.zeros((3, 4))
        ds = DiffusivityDataset(LogPermeabilityField(2), 0, omegas=om)
        assert len(ds) == 3

    def test_invalid_omegas_shape(self):
        with pytest.raises(ValueError):
            DiffusivityDataset(LogPermeabilityField(2), 0,
                               omegas=np.zeros((3, 2)))

    def test_invalid_transform(self):
        with pytest.raises(ValueError):
            DiffusivityDataset(LogPermeabilityField(2), 2,
                               input_transform="sqrt")


class TestBatchSampler:
    def test_covers_all_indices(self):
        s = BatchSampler(10, 3)
        seen = np.concatenate(list(s.batches(0)))
        assert sorted(seen) == list(range(10))

    def test_num_batches(self):
        assert BatchSampler(10, 3).num_batches() == 4
        assert BatchSampler(10, 3, drop_last=True).num_batches() == 3
        assert BatchSampler(9, 3).num_batches() == 3

    def test_epoch_determinism(self):
        s = BatchSampler(16, 4, seed=7)
        a = list(s.batches(3))
        b = list(s.batches(3))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_epochs_differ(self):
        s = BatchSampler(64, 8, seed=7)
        a = np.concatenate(list(s.batches(0)))
        b = np.concatenate(list(s.batches(1)))
        assert not np.array_equal(a, b)

    def test_no_shuffle_is_sequential(self):
        s = BatchSampler(6, 2, shuffle=False)
        batches = list(s.batches(0))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchSampler(4, 0)


class TestEq15Sharding:
    def test_union_equals_global(self):
        idx = np.arange(12)
        shards = shard_batch(idx, 4)
        np.testing.assert_array_equal(np.concatenate(shards), idx)

    def test_rank_selection(self):
        idx = np.arange(8)
        np.testing.assert_array_equal(shard_batch(idx, 4, rank=2), [4, 5])

    def test_equal_local_sizes(self):
        shards = shard_batch(np.arange(12), 3)
        assert all(len(s) == 4 for s in shards)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            shard_batch(np.arange(10), 4)

    @given(p=st.sampled_from([1, 2, 4, 8]), nb=st.integers(1, 5),
           seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_eq15_property(self, p, nb, seed):
        """U_i (LMB)_n^i == (GMB)_n for every n, any worker count
        (the exact statement of Eq. 15)."""
        n_samples = p * nb * 2
        bs = 2 * p
        sampler = BatchSampler(n_samples, bs, seed=seed)
        for gmb in sampler.batches(0):
            shards = shard_batch(gmb, p)
            np.testing.assert_array_equal(np.concatenate(shards), gmb)
            assert len({len(s) for s in shards}) == 1  # load balance
