"""Sobol sampler: agreement with scipy.qmc, determinism, uniformity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import SobolSampler, sample_omega


class TestAgainstScipy:
    @pytest.mark.parametrize("dim", [1, 2, 4, 6])
    def test_matches_scipy_exactly(self, dim):
        ours = sample_omega(128, m=dim, omega_range=(0.0, 1.0), skip=0,
                            engine="own")
        ref = sample_omega(128, m=dim, omega_range=(0.0, 1.0), skip=0,
                           engine="scipy")
        np.testing.assert_array_equal(ours, ref)

    def test_skip_matches_fast_forward(self):
        ours = sample_omega(32, m=4, omega_range=(0.0, 1.0), skip=5,
                            engine="own")
        ref = sample_omega(32, m=4, omega_range=(0.0, 1.0), skip=5,
                           engine="scipy")
        np.testing.assert_array_equal(ours, ref)


class TestSampler:
    def test_deterministic(self):
        a = SobolSampler(4).sample(16)
        b = SobolSampler(4).sample(16)
        np.testing.assert_array_equal(a, b)

    def test_streaming_equals_batch(self):
        s = SobolSampler(3)
        chunks = np.concatenate([s.sample(5), s.sample(7), s.sample(4)])
        batch = SobolSampler(3).sample(16)
        np.testing.assert_array_equal(chunks, batch)

    def test_reset(self):
        s = SobolSampler(2)
        a = s.sample(8)
        s.reset()
        s.sample(1)  # re-skip the zero point consumed at construction
        np.testing.assert_array_equal(s.sample(7), a[:7])

    def test_range(self):
        pts = SobolSampler(4).sample(256)
        assert pts.min() >= 0.0 and pts.max() < 1.0

    def test_uniformity_first_dim(self):
        """Mean of a balanced Sobol block approaches 1/2 closely."""
        pts = SobolSampler(4, skip=0).sample(256)
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.01)

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            SobolSampler(0)
        with pytest.raises(ValueError):
            SobolSampler(99)


class TestOmegaSampling:
    def test_range_box(self):
        om = sample_omega(512, m=4, omega_range=(-3.0, 3.0))
        assert om.shape == (512, 4)
        assert om.min() >= -3.0 and om.max() <= 3.0

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            sample_omega(4, engine="mystery")

    @given(n=st.integers(1, 64), m=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_shapes_property(self, n, m):
        om = sample_omega(n, m=m)
        assert om.shape == (n, m)
        assert np.isfinite(om).all()
