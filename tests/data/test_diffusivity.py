"""Eq. 10 diffusivity family tests."""

import numpy as np
import pytest

from repro.data import LogPermeabilityField, DEFAULT_A
from repro.fem import UniformGrid


class TestConstants:
    def test_paper_a_values(self):
        assert DEFAULT_A == (1.72, 4.05, 6.85, 9.82)

    def test_lambda_formula(self):
        f = LogPermeabilityField(2)
        expected = 1.0 / (1.0 + 0.25 * np.asarray(DEFAULT_A) ** 2)
        np.testing.assert_allclose(f.lambdas, expected)

    def test_lambdas_monotonically_decreasing(self):
        f = LogPermeabilityField(2)
        lam = f.lambdas
        assert np.all(np.diff(lam) < 0)


class TestEvaluation:
    def test_positivity(self):
        f = LogPermeabilityField(2)
        grid = UniformGrid(2, 17)
        rng = np.random.default_rng(0)
        for _ in range(5):
            omega = rng.uniform(-3, 3, 4)
            assert f.evaluate(omega, grid).min() > 0

    def test_zero_omega_gives_unity(self):
        f = LogPermeabilityField(2)
        grid = UniformGrid(2, 9)
        np.testing.assert_allclose(f.evaluate(np.zeros(4), grid), 1.0)

    def test_linearity_of_log_in_omega(self):
        f = LogPermeabilityField(2)
        grid = UniformGrid(2, 9)
        rng = np.random.default_rng(1)
        w1, w2 = rng.uniform(-1, 1, 4), rng.uniform(-1, 1, 4)
        lhs = f.log_nu(w1 + w2, grid)
        rhs = f.log_nu(w1, grid) + f.log_nu(w2, grid)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_separable_structure_2d(self):
        """log nu(x, y) for a single mode factorizes as xi(x) * eta(y)."""
        f = LogPermeabilityField(2, a=(1.72,))
        grid = UniformGrid(2, 9)
        omega = np.array([2.0])
        ln = f.log_nu(omega, grid)
        # Rank-1 check via SVD.
        s = np.linalg.svd(ln, compute_uv=False)
        assert s[1] / s[0] < 1e-12

    def test_mode_functional_form(self):
        """xi(t) = (a/2) cos(a t) + sin(a t) at t=0 gives a/2."""
        f = LogPermeabilityField(1, a=(4.0,))
        grid = UniformGrid(1, 5)
        omega = np.array([1.0])
        lam = f.lambdas[0]
        val = f.log_nu(omega, grid)[0]
        assert val == pytest.approx(lam * (4.0 / 2.0), rel=1e-12)

    def test_3d_tensor_product_extension(self):
        """3D log-field equals xi(x) eta(y) zeta(z) per mode."""
        f3 = LogPermeabilityField(3, a=(1.72,))
        grid = UniformGrid(3, 5)
        ln = f3.log_nu(np.array([1.0]), grid)
        f1 = LogPermeabilityField(1, a=(1.72,))
        g1 = UniformGrid(1, 5)
        m = f1.log_nu(np.array([1.0]), g1) / f1.lambdas[0]
        expected = f1.lambdas[0] * np.einsum("i,j,k->ijk", m, m, m)
        np.testing.assert_allclose(ln, expected, atol=1e-12)

    def test_batch_matches_single(self):
        f = LogPermeabilityField(2)
        grid = UniformGrid(2, 9)
        rng = np.random.default_rng(2)
        omegas = rng.uniform(-3, 3, (4, 4))
        batch = f.evaluate_batch(omegas, grid, dtype=np.float64)
        for i in range(4):
            np.testing.assert_allclose(batch[i, 0], f.evaluate(omegas[i], grid),
                                       rtol=1e-12)

    def test_log_transform_batch(self):
        f = LogPermeabilityField(2)
        grid = UniformGrid(2, 9)
        omegas = np.array([[1.0, 0.0, 0.0, 0.0]])
        raw = f.evaluate_batch(omegas, grid, dtype=np.float64, log=False)
        logf = f.evaluate_batch(omegas, grid, dtype=np.float64, log=True)
        np.testing.assert_allclose(np.exp(logf), raw, rtol=1e-12)

    def test_validation(self):
        f = LogPermeabilityField(2)
        with pytest.raises(ValueError):
            f.log_nu(np.zeros(4), UniformGrid(3, 5))
        with pytest.raises(ValueError):
            f.log_nu(np.zeros(3), UniformGrid(2, 5))
        with pytest.raises(ValueError):
            LogPermeabilityField(5)
