"""Symmetry augmentation tests, including FEM equivariance."""

import numpy as np
import pytest

from repro.data.augmentation import (augment_batch, reflect_field,
                                     symmetry_axes)
from repro.fem import UniformGrid, FEMSolver, canonical_bc


class TestAlgebra:
    def test_symmetry_axes(self):
        assert symmetry_axes(2) == (1,)
        assert symmetry_axes(3) == (1, 2)

    def test_reflect_involution(self):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((6, 6))
        np.testing.assert_array_equal(
            reflect_field(reflect_field(f, (1,)), (1,)), f)

    def test_reflect_empty_axes_copies(self):
        f = np.ones((3, 3))
        out = reflect_field(f, ())
        assert out is not f
        np.testing.assert_array_equal(out, f)

    def test_reflect_batched_offset(self):
        rng = np.random.default_rng(1)
        f = rng.standard_normal((2, 1, 4, 4))
        out = reflect_field(f, (1,), spatial_offset=2)
        np.testing.assert_array_equal(out, f[:, :, :, ::-1])

    def test_augment_batch_deterministic_given_rng(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        x = np.random.default_rng(0).standard_normal((4, 1, 6, 6))
        np.testing.assert_array_equal(augment_batch(x, rng_a),
                                      augment_batch(x, rng_b))

    def test_augment_preserves_values_multiset(self):
        rng = np.random.default_rng(2)
        x = np.random.default_rng(3).standard_normal((4, 1, 6, 6))
        out = augment_batch(x, rng)
        np.testing.assert_allclose(np.sort(out.ravel()), np.sort(x.ravel()))


class TestPhysicsEquivariance:
    def test_fem_solution_equivariant_under_y_reflection(self):
        """solve(flip_y nu) == flip_y solve(nu) — the property that makes
        reflection augmentation sound for this BVP."""
        grid = UniformGrid(2, 17)
        rng = np.random.default_rng(7)
        nu = np.exp(0.4 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        solver = FEMSolver(grid)
        u = solver.solve(nu, bc)
        u_flipped_input = solver.solve(nu[:, ::-1].copy(), bc)
        np.testing.assert_allclose(u_flipped_input, u[:, ::-1], atol=1e-9)

    def test_x_reflection_is_not_a_symmetry(self):
        """Flipping the Dirichlet axis changes the problem (u=1 moves to
        the other face), so it must NOT be used for augmentation."""
        grid = UniformGrid(2, 17)
        rng = np.random.default_rng(8)
        nu = np.exp(0.4 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        solver = FEMSolver(grid)
        u = solver.solve(nu, bc)
        u_flip = solver.solve(nu[::-1].copy(), bc)
        assert np.abs(u_flip - u[::-1]).max() > 0.05

    def test_3d_equivariance_both_axes(self):
        grid = UniformGrid(3, 9)
        rng = np.random.default_rng(9)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        solver = FEMSolver(grid)
        u = solver.solve(nu, bc)
        u_yz = solver.solve(nu[:, ::-1, ::-1].copy(), bc)
        np.testing.assert_allclose(u_yz, u[:, ::-1, ::-1], atol=1e-8)
