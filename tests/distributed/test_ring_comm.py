"""Ring all-reduce and simulated communicator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import ring_allreduce, SimulatedCommunicator


class TestRingAllReduce:
    @pytest.mark.parametrize("p,n", [(1, 10), (2, 10), (3, 7), (4, 16),
                                     (5, 101), (8, 64)])
    def test_sum_correct(self, p, n):
        rng = np.random.default_rng(p * 100 + n)
        bufs = [rng.standard_normal(n) for _ in range(p)]
        out, _ = ring_allreduce(bufs)
        ref = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, ref, atol=1e-12)

    def test_average(self):
        bufs = [np.full(6, float(i)) for i in range(4)]
        out, _ = ring_allreduce(bufs, average=True)
        np.testing.assert_allclose(out[0], 1.5)

    def test_inputs_not_modified(self):
        bufs = [np.ones(8), np.ones(8) * 2]
        copies = [b.copy() for b in bufs]
        ring_allreduce(bufs)
        for b, c in zip(bufs, copies):
            np.testing.assert_array_equal(b, c)

    def test_steps_count(self):
        bufs = [np.ones(32) for _ in range(4)]
        _, stats = ring_allreduce(bufs)
        assert stats.steps == 2 * (4 - 1)

    def test_bytes_near_theoretical(self):
        p, n = 8, 4096
        bufs = [np.ones(n) for _ in range(p)]
        _, stats = ring_allreduce(bufs)
        # Within the rounding slack of uneven chunking.
        assert stats.bytes_sent_per_rank <= stats.theoretical_bytes_per_rank * 1.05
        assert stats.bytes_sent_per_rank >= stats.theoretical_bytes_per_rank * 0.95

    def test_message_smaller_than_world(self):
        # n < p: some chunks empty; result must still be exact.
        bufs = [np.array([float(i)]) for i in range(5)]
        out, _ = ring_allreduce(bufs)
        np.testing.assert_allclose(out[3], [10.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce([])
        with pytest.raises(ValueError):
            ring_allreduce([np.ones(3), np.ones(4)])
        with pytest.raises(ValueError):
            ring_allreduce([np.ones((2, 2))])

    @given(p=st.integers(1, 7), n=st.integers(1, 50), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_property_equals_numpy_sum(self, p, n, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.standard_normal(n) for _ in range(p)]
        out, stats = ring_allreduce(bufs)
        ref = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, ref, atol=1e-10)
        assert stats.steps == 2 * (p - 1)


class TestCommunicator:
    def test_allreduce_mean(self):
        comm = SimulatedCommunicator(3)
        out = comm.allreduce([np.ones(4) * i for i in range(3)], average=True)
        np.testing.assert_allclose(out[0], 1.0)
        assert comm.log.allreduce_calls == 1
        assert comm.log.allreduce_bytes > 0

    def test_broadcast(self):
        comm = SimulatedCommunicator(4)
        out = comm.broadcast(np.arange(3), root=0)
        assert len(out) == 4
        for o in out:
            np.testing.assert_array_equal(o, [0, 1, 2])
        # Copies, not views.
        out[0][0] = 99
        assert out[1][0] == 0

    def test_broadcast_invalid_root(self):
        with pytest.raises(ValueError):
            SimulatedCommunicator(2).broadcast(np.ones(1), root=5)

    def test_allgather(self):
        comm = SimulatedCommunicator(2)
        out = comm.allgather([np.array([1.0]), np.array([2.0])])
        assert len(out) == 2
        np.testing.assert_array_equal(out[0][1], [2.0])

    def test_barrier_counted(self):
        comm = SimulatedCommunicator(2)
        comm.barrier()
        assert comm.log.barrier_calls == 1

    def test_virtual_clock_charged(self):
        comm = SimulatedCommunicator(
            4, time_model=lambda nbytes, p: nbytes * 1e-9 * p)
        comm.allreduce([np.ones(1000) for _ in range(4)])
        assert comm.log.virtual_comm_seconds > 0

    def test_wrong_buffer_count(self):
        comm = SimulatedCommunicator(3)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2)])

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            SimulatedCommunicator(0)
