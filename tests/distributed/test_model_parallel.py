"""Model-parallel halo-exchange extension (paper future work, Sec. 5)."""

import numpy as np
import pytest

from repro.distributed.model_parallel import (HaloStats, ModelParallelConvStack,
                                              halo_exchange, join_slabs,
                                              model_parallel_conv, split_slabs)
from repro.nn import ConvNd, LeakyReLU


@pytest.fixture
def rng():
    return np.random.default_rng(88)


class TestSlabAlgebra:
    def test_split_join_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 8, 5)).astype(np.float32)
        slabs = split_slabs(x, 4)
        assert all(s.shape == (2, 3, 2, 5) for s in slabs)
        np.testing.assert_array_equal(join_slabs(slabs), x)

    def test_indivisible_raises(self, rng):
        x = rng.standard_normal((1, 1, 9, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            split_slabs(x, 2)

    def test_halo_values(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 1, 8, 1)
        slabs = split_slabs(x, 2)
        padded = halo_exchange(slabs, halo=1)
        # Rank 0: [0(zero), 0..3, 4(from rank 1)]
        np.testing.assert_allclose(padded[0][0, 0, :, 0],
                                   [0, 0, 1, 2, 3, 4])
        # Rank 1: [3(from rank 0), 4..7, 0(zero)]
        np.testing.assert_allclose(padded[1][0, 0, :, 0],
                                   [3, 4, 5, 6, 7, 0])

    def test_halo_zero_copies(self, rng):
        x = rng.standard_normal((1, 1, 4, 2)).astype(np.float32)
        slabs = split_slabs(x, 2)
        out = halo_exchange(slabs, halo=0)
        np.testing.assert_array_equal(out[0], slabs[0])
        assert out[0] is not slabs[0]

    def test_halo_negative_raises(self, rng):
        with pytest.raises(ValueError):
            halo_exchange([np.zeros((1, 1, 2, 2))], halo=-1)

    def test_halo_stats_charged(self, rng):
        x = rng.standard_normal((1, 2, 8, 3)).astype(np.float32)
        slabs = split_slabs(x, 4)
        stats = HaloStats()
        halo_exchange(slabs, halo=1, stats=stats)
        assert stats.exchanges == 1
        # 3 interior boundaries x 2 directions x (1x2x1x3 floats x 4B)
        assert stats.bytes_sent == 6 * 2 * 3 * 4


class TestModelParallelConv:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_exact_vs_serial_2d(self, rng, p):
        layer = ConvNd(2, 2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 8, 6)).astype(np.float32)
        slabs = model_parallel_conv(layer, split_slabs(x, p))
        from repro.autograd import Tensor, no_grad

        with no_grad():
            ref = layer(Tensor(x)).data
        np.testing.assert_allclose(join_slabs(slabs), ref, atol=1e-6)

    def test_exact_vs_serial_3d(self, rng):
        layer = ConvNd(3, 1, 2, kernel_size=3, padding=1, rng=rng)
        x = rng.standard_normal((1, 1, 8, 4, 4)).astype(np.float32)
        slabs = model_parallel_conv(layer, split_slabs(x, 2))
        from repro.autograd import Tensor, no_grad

        with no_grad():
            ref = layer(Tensor(x)).data
        np.testing.assert_allclose(join_slabs(slabs), ref, atol=1e-6)

    def test_stride_rejected(self, rng):
        layer = ConvNd(2, 1, 1, kernel_size=2, stride=2, rng=rng)
        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            model_parallel_conv(layer, split_slabs(x, 2))

    def test_kernel_padding_mismatch_rejected(self, rng):
        layer = ConvNd(2, 1, 1, kernel_size=3, padding=0, rng=rng)
        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            model_parallel_conv(layer, split_slabs(x, 2))


class TestConvStack:
    def test_multilayer_exactness(self, rng):
        layers = [
            (ConvNd(2, 1, 4, kernel_size=3, padding=1, rng=rng), LeakyReLU(0.1)),
            (ConvNd(2, 4, 4, kernel_size=3, padding=1, rng=rng), LeakyReLU(0.1)),
            (ConvNd(2, 4, 1, kernel_size=1, rng=rng), None),
        ]
        stack = ModelParallelConvStack(layers, world_size=4)
        x = rng.standard_normal((2, 1, 16, 12)).astype(np.float32)
        out = stack.forward(x)
        ref = stack.serial_forward(x)
        np.testing.assert_allclose(out, ref, atol=1e-5)
        # Two 3x3 layers exchange halos; the 1x1 layer does not.
        assert stack.stats.exchanges == 2

    def test_traffic_scales_with_layers(self, rng):
        def stack_of(n):
            layers = [(ConvNd(2, 1 if i == 0 else 2, 2, kernel_size=3,
                              padding=1, rng=np.random.default_rng(i)), None)
                      for i in range(n)]
            return ModelParallelConvStack(layers, world_size=2)

        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        s2, s4 = stack_of(2), stack_of(4)
        s2.forward(x)
        s4.forward(x)
        assert s4.stats.bytes_sent > s2.stats.bytes_sent

    def test_world_size_one_no_traffic(self, rng):
        layers = [(ConvNd(2, 1, 2, kernel_size=3, padding=1, rng=rng), None)]
        stack = ModelParallelConvStack(layers, world_size=1)
        x = rng.standard_normal((1, 1, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(stack.forward(x),
                                   stack.serial_forward(x), atol=1e-6)
        assert stack.stats.bytes_sent == 0

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            ModelParallelConvStack([], world_size=0)
