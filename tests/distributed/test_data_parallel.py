"""Data-parallel trainer: Eq. 15 worker-count independence, replica sync,
gradient flattening."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.distributed import (DataParallelTrainer, DPConfig,
                               flatten_gradients, unflatten_to_gradients)
from repro.nn import Parameter


@pytest.fixture(scope="module")
def problem():
    return PoissonProblem2D(resolution=8)


@pytest.fixture(scope="module")
def dataset(problem):
    return problem.make_dataset(8)


def _factory(use_batchnorm=False):
    def make():
        return MGDiffNet(ndim=2, base_filters=4, depth=1,
                         use_batchnorm=use_batchnorm, rng=31)
    return make


class TestFlattening:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        params = [Parameter(rng.standard_normal((3, 4)).astype(np.float32)),
                  Parameter(rng.standard_normal(5).astype(np.float32))]
        for p in params:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
        flat = flatten_gradients(params)
        assert flat.shape == (17,)
        grads = [p.grad.copy() for p in params]
        unflatten_to_gradients(flat, params)
        for p, g in zip(params, grads):
            np.testing.assert_allclose(p.grad, g, atol=1e-7)

    def test_missing_grad_is_zero(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        flat = flatten_gradients([p])
        np.testing.assert_array_equal(flat, 0.0)

    def test_size_mismatch_raises(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        with pytest.raises(ValueError):
            unflatten_to_gradients(np.zeros(5), [p])


class TestWorkerInvariance:
    def test_eq15_p1_vs_p4(self, problem, dataset):
        """Training with 4 workers equals training with 1 worker."""
        t1 = DataParallelTrainer(_factory(), problem, dataset,
                                 DPConfig(world_size=1, batch_size=4, lr=1e-3))
        t4 = DataParallelTrainer(_factory(), problem, dataset,
                                 DPConfig(world_size=4, batch_size=4, lr=1e-3))
        r1 = t1.train_epochs(8, 2)
        r4 = t4.train_epochs(8, 2)
        np.testing.assert_allclose(r1.losses, r4.losses, rtol=1e-5)
        s1, s4 = t1.model.state_dict(), t4.model.state_dict()
        for k in s1:
            np.testing.assert_allclose(s1[k], s4[k], atol=1e-5)

    def test_eq15_p2(self, problem, dataset):
        t1 = DataParallelTrainer(_factory(), problem, dataset,
                                 DPConfig(world_size=1, batch_size=4, lr=1e-3))
        t2 = DataParallelTrainer(_factory(), problem, dataset,
                                 DPConfig(world_size=2, batch_size=4, lr=1e-3))
        r1 = t1.train_epochs(8, 1)
        r2 = t2.train_epochs(8, 1)
        np.testing.assert_allclose(r1.losses, r2.losses, rtol=1e-5)

    def test_replicas_stay_synchronized(self, problem, dataset):
        t = DataParallelTrainer(_factory(), problem, dataset,
                                DPConfig(world_size=3, batch_size=6, lr=1e-3,
                                         check_sync=True))
        t.train_epochs(8, 1)  # check_sync raises on divergence

    def test_loss_decreases(self, problem, dataset):
        t = DataParallelTrainer(_factory(), problem, dataset,
                                DPConfig(world_size=2, batch_size=4, lr=3e-3))
        r = t.train_epochs(8, 6)
        assert r.losses[-1] < r.losses[0]


class TestMechanics:
    def test_dataset_padding(self, problem):
        ds = problem.make_dataset(5)  # 5 not divisible by lcm(4, 2)=4
        t = DataParallelTrainer(_factory(), problem, ds,
                                DPConfig(world_size=2, batch_size=4))
        assert len(t.dataset) % 4 == 0

    def test_batch_world_divisibility_enforced(self, problem, dataset):
        with pytest.raises(ValueError):
            DataParallelTrainer(_factory(), problem, dataset,
                                DPConfig(world_size=3, batch_size=4))

    def test_virtual_clock_components(self, problem, dataset):
        t = DataParallelTrainer(
            _factory(), problem, dataset,
            DPConfig(world_size=2, batch_size=4),
            comm_time_model=lambda nbytes, p: 1e-3,
            compute_time_per_sample=0.5)
        r = t.train_epochs(8, 1)
        # 8 samples / batch 4 = 2 steps; local bs = 2 -> 1.0 s compute/step.
        assert r.virtual_compute_seconds == pytest.approx(2 * 2 * 0.5)
        assert r.virtual_comm_seconds == pytest.approx(2e-3)
        assert r.steps == 2

    def test_bn_stats_synced_across_replicas(self, problem, dataset):
        t = DataParallelTrainer(_factory(use_batchnorm=True), problem, dataset,
                                DPConfig(world_size=2, batch_size=4,
                                         sync_batchnorm_stats=True))
        t.train_epochs(8, 2)
        b0 = dict(t.replicas[0].named_buffers())
        b1 = dict(t.replicas[1].named_buffers())
        for k in b0:
            np.testing.assert_allclose(np.asarray(b0[k]), np.asarray(b1[k]),
                                       rtol=1e-6)

    def test_unknown_optimizer(self, problem, dataset):
        with pytest.raises(ValueError):
            DataParallelTrainer(_factory(), problem, dataset,
                                DPConfig(world_size=1, batch_size=2,
                                         optimizer="lbfgs"))

    def test_pool_metrics_recorded_per_epoch(self, problem, dataset):
        t = DataParallelTrainer(_factory(), problem, dataset,
                                DPConfig(world_size=2, batch_size=4))
        r = t.train_epochs(8, 3)
        assert len(r.pool_bytes_recycled) == 3
        assert all(b >= 0 for b in r.pool_bytes_recycled)
        # Warm epochs recycle conv scratch through the pool: after the
        # first epoch primed the free lists, traffic must be absorbed.
        assert r.pool_bytes_recycled[-1] > 0
        from repro.backend import get_pool

        assert r.pool_high_water_bytes == get_pool().stats.high_water_bytes
