"""Performance model: allreduce cost, epoch time regimes, scaling laws."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.perf import (AZURE_NDV2, BRIDGES2_CPU, ClusterSpec,
                        ring_allreduce_time, step_time, epoch_time,
                        strong_scaling_study, compute_time_at_resolution,
                        measure_epoch_time, measure_sample_time)


class TestClusterSpecs:
    def test_table6_values(self):
        assert AZURE_NDV2.devices_per_node == 8
        assert AZURE_NDV2.bandwidth_gbps == 100.0
        assert BRIDGES2_CPU.devices_per_node == 1
        assert BRIDGES2_CPU.bandwidth_gbps == 200.0

    def test_unit_conversions(self):
        s = ClusterSpec("t", 1, 80.0, 2.0)
        assert s.bandwidth_bytes_per_s == pytest.approx(1e10)
        assert s.latency_s == pytest.approx(2e-6)

    def test_nodes_for(self):
        assert AZURE_NDV2.nodes_for(512) == 64
        assert AZURE_NDV2.nodes_for(4) == 1
        assert BRIDGES2_CPU.nodes_for(128) == 128


class TestAllReduceTime:
    def test_single_worker_free(self):
        assert ring_allreduce_time(10 ** 8, 1, BRIDGES2_CPU) == 0.0

    def test_bandwidth_bound_regime_flat_in_p(self):
        """For Nw >> p the ring time approaches 2 Nw / BW, ~independent of
        p (the paper's scalability claim)."""
        nbytes = 4 * 10 ** 8
        t8 = ring_allreduce_time(nbytes, 8, BRIDGES2_CPU)
        t128 = ring_allreduce_time(nbytes, 128, BRIDGES2_CPU)
        assert t128 / t8 < 1.3
        asymptote = 2 * nbytes / BRIDGES2_CPU.bandwidth_bytes_per_s
        assert t128 == pytest.approx(asymptote, rel=0.2)

    def test_latency_bound_regime_grows_with_p(self):
        t4 = ring_allreduce_time(64, 4, BRIDGES2_CPU)
        t64 = ring_allreduce_time(64, 64, BRIDGES2_CPU)
        assert t64 > t4 * 5

    def test_intra_node_cheaper(self):
        """p within one NDv2 node rides NVLink, beating inter-node."""
        n = 4 * 10 ** 7
        t_intra = ring_allreduce_time(n, 8, AZURE_NDV2)
        t_inter = ring_allreduce_time(n, 8, BRIDGES2_CPU)
        assert t_intra < t_inter


class TestEpochTime:
    def test_exactly_one_batch_mode(self):
        with pytest.raises(ValueError):
            epoch_time(2, 100, 1.0, 10, BRIDGES2_CPU)
        with pytest.raises(ValueError):
            epoch_time(2, 100, 1.0, 10, BRIDGES2_CPU, local_batch=2,
                       global_batch=8)

    def test_fixed_local_batch_steps_shrink(self):
        t1 = epoch_time(1, 64, 1.0, 10, BRIDGES2_CPU, local_batch=2)
        t4 = epoch_time(4, 64, 1.0, 10, BRIDGES2_CPU, local_batch=2)
        assert t1 == pytest.approx(32 * 2.0)
        assert t4 < t1 / 3.5

    def test_fixed_global_batch(self):
        t = epoch_time(4, 64, 1.0, 10, BRIDGES2_CPU, global_batch=8)
        # 8 steps x (2 samples x 1 s + tiny comm)
        assert t == pytest.approx(8 * 2.0, rel=0.01)

    def test_global_batch_divisibility(self):
        with pytest.raises(ValueError):
            epoch_time(3, 64, 1.0, 10, BRIDGES2_CPU, global_batch=8)

    def test_step_time_components(self):
        t = step_time(2, 4, 0.5, 1000, BRIDGES2_CPU)
        assert t > 4 * 0.5


class TestStrongScaling:
    def test_near_linear_then_saturates(self):
        """The Fig. 9 shape: ~linear speedup until communication bites."""
        ps = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        pts = strong_scaling_study(ps, n_samples=1024, t_sample=0.35,
                                   n_params=3_000_000, spec=AZURE_NDV2,
                                   local_batch=2)
        speedups = [p.speedup for p in pts]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 300          # paper: 480x at 512
        assert pts[1].efficiency > 0.95    # near-perfect at small p

    def test_efficiency_bounded(self):
        pts = strong_scaling_study([1, 4, 16], n_samples=256, t_sample=0.1,
                                   n_params=10 ** 6, spec=BRIDGES2_CPU,
                                   local_batch=2)
        assert all(p.efficiency <= 1.0 + 1e-9 for p in pts)

    def test_high_latency_spec_saturates_early(self):
        slow = ClusterSpec("slow", 1, 1.0, 500.0)
        pts = strong_scaling_study([1, 16, 256], n_samples=512,
                                   t_sample=0.01, n_params=10 ** 7,
                                   spec=slow, local_batch=2)
        assert pts[-1].efficiency < 0.5


class TestExtrapolation:
    def test_compute_time_scaling(self):
        t = compute_time_at_resolution(1.0, 16, 256, ndim=3)
        assert t == pytest.approx(16.0 ** 3)

    def test_identity(self):
        assert compute_time_at_resolution(2.5, 64, 64, 2) == 2.5


class TestMeasurement:
    @pytest.fixture(scope="class")
    def setup(self):
        return (MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0),
                PoissonProblem2D(8))

    def test_epoch_time_point(self, setup):
        model, problem = setup
        pt = measure_epoch_time(model, problem, 8, n_samples=4, batch_size=2)
        assert pt.epoch_seconds > 0
        assert pt.dofs == 64
        assert pt.resolution == 8

    def test_sample_time_positive(self, setup):
        model, problem = setup
        t = measure_sample_time(model, problem, 8, batch_size=2, repeats=1)
        assert 0 < t < 60
