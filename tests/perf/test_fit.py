"""Power-law fit tests, including the Fig. 2 extrapolation check."""

import numpy as np
import pytest

from repro.perf.fit import fit_power_law, PowerLawFit
from repro.perf.measure import EpochTimePoint


class TestFit:
    def test_exact_power_law_recovered(self):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = 3.0 * x ** 1.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=1e-10)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-10)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = PowerLawFit(coefficient=2.0, exponent=2.0, r_squared=1.0)
        assert fit.predict(3.0) == pytest.approx(18.0)
        np.testing.assert_allclose(fit.predict(np.array([1.0, 2.0])),
                                   [2.0, 8.0])

    def test_noisy_data_r2_below_one(self):
        rng = np.random.default_rng(0)
        x = np.linspace(1, 100, 20)
        y = 5 * x ** 1.2 * np.exp(rng.standard_normal(20) * 0.1)
        fit = fit_power_law(x, y)
        assert 0.9 < fit.r_squared < 1.0
        assert fit.exponent == pytest.approx(1.2, abs=0.15)

    def test_epoch_time_points_accepted(self):
        pts = [EpochTimePoint(resolution=r, dofs=r * r,
                              epoch_seconds=0.001 * (r * r) ** 1.1)
               for r in (8, 16, 32, 64)]
        fit = fit_power_law(pts, None)
        assert fit.exponent == pytest.approx(1.1, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_measured_epoch_times_near_linear_in_dofs(self):
        """The assumption behind the Fig. 9/10 extrapolation: at the
        larger sizes the cost exponent in DoF approaches 1 (voxel-
        proportional FLOPs).  Verified on real measurements."""
        from repro import MGDiffNet, PoissonProblem2D
        from repro.perf import measure_epoch_time

        model = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=0)
        pts = []
        for r in (16, 32, 64):
            problem = PoissonProblem2D(r)
            pts.append(measure_epoch_time(model, problem, r, n_samples=4,
                                          batch_size=4))
        fit = fit_power_law(pts, None)
        # Below 1 would mean sublinear cost in voxels (impossible
        # asymptotically); far above 2 would break the extrapolation.
        assert 0.4 < fit.exponent < 2.0
