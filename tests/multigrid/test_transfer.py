"""Field resampling between training resolutions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multigrid import resample_linear, restrict_field, prolong_field


@pytest.fixture
def rng():
    return np.random.default_rng(66)


class TestResample:
    def test_identity_when_same_size(self, rng):
        f = rng.standard_normal((8, 8))
        np.testing.assert_array_equal(resample_linear(f, 8), f)

    def test_endpoints_preserved(self, rng):
        f = rng.standard_normal(9)
        out = resample_linear(f, 5)
        assert out[0] == pytest.approx(f[0])
        assert out[-1] == pytest.approx(f[-1])

    def test_exact_on_linear_fields(self):
        x = np.linspace(0, 1, 16)
        f = np.add.outer(2 * x, 3 * x)
        up = resample_linear(f, 32)
        xx = np.linspace(0, 1, 32)
        np.testing.assert_allclose(up, np.add.outer(2 * xx, 3 * xx), atol=1e-12)

    def test_constant_preserved_any_size(self, rng):
        f = np.full((7, 7), 4.2)
        for n in (3, 5, 13, 20):
            np.testing.assert_allclose(resample_linear(f, n), 4.2)

    def test_batched_spatial_axes(self, rng):
        f = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = resample_linear(f, 4, spatial_axes=(2, 3))
        assert out.shape == (2, 3, 4, 4)
        assert out.dtype == np.float32

    def test_3d(self, rng):
        f = rng.standard_normal((8, 8, 8))
        assert resample_linear(f, 16).shape == (16, 16, 16)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            resample_linear(np.zeros(1), 4)


class TestRestrictProlong:
    def test_restrict_halves(self, rng):
        f = rng.standard_normal((16, 16))
        assert restrict_field(f).shape == (8, 8)

    def test_prolong_doubles(self, rng):
        f = rng.standard_normal((8, 8))
        assert prolong_field(f).shape == (16, 16)

    def test_batched(self, rng):
        f = rng.standard_normal((4, 1, 16, 16))
        assert restrict_field(f, spatial_axes=(2, 3)).shape == (4, 1, 8, 8)

    def test_anisotropic_raises(self, rng):
        with pytest.raises(ValueError):
            restrict_field(rng.standard_normal((16, 8)))

    def test_restrict_then_prolong_close_on_smooth(self):
        x = np.linspace(0, 1, 32)
        f = np.sin(np.pi * np.add.outer(x, x))
        roundtrip = prolong_field(restrict_field(f))
        assert np.abs(roundtrip - f).max() < 0.05

    @given(n=st.sampled_from([8, 16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_value_range_never_expands(self, n):
        """Linear interpolation cannot create new extrema."""
        rng = np.random.default_rng(n)
        f = rng.standard_normal((n, n))
        out = restrict_field(f)
        assert out.min() >= f.min() - 1e-12
        assert out.max() <= f.max() + 1e-12
