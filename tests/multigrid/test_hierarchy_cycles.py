"""Hierarchy and cycle-schedule tests (paper Fig. 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multigrid import (GridHierarchy, CycleStep, cycle_levels,
                             build_schedule, STRATEGIES)


class TestHierarchy:
    def test_resolutions(self):
        h = GridHierarchy(64, 3)
        assert h.resolutions == [64, 32, 16]
        assert h.resolution(1) == 64
        assert h.coarsest_resolution == 16

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            GridHierarchy(50, 3)  # 50 % 4 != 0

    def test_min_resolution_guard(self):
        with pytest.raises(ValueError):
            GridHierarchy(16, 3, min_resolution=8)  # coarsest 4 < 8

    def test_level_bounds(self):
        h = GridHierarchy(32, 2)
        with pytest.raises(ValueError):
            h.resolution(0)
        with pytest.raises(ValueError):
            h.resolution(3)

    def test_iter(self):
        assert list(GridHierarchy(32, 3)) == [1, 2, 3]

    def test_single_level(self):
        h = GridHierarchy(16, 1)
        assert h.resolutions == [16]


class TestCycleSequences:
    """Exact visit orders for the shapes in paper Fig. 3."""

    def test_v_3_levels(self):
        assert cycle_levels("v", 3) == [1, 2, 3, 2, 1]

    def test_v_4_levels(self):
        assert cycle_levels("v", 4) == [1, 2, 3, 4, 3, 2, 1]

    def test_half_v(self):
        assert cycle_levels("half_v", 3) == [3, 2, 1]
        assert cycle_levels("half_v", 4) == [4, 3, 2, 1]

    def test_w_3_levels(self):
        assert cycle_levels("w", 3) == [1, 2, 3, 2, 3, 2, 1]

    def test_w_2_levels(self):
        assert cycle_levels("w", 2) == [1, 2, 2, 1] or \
            cycle_levels("w", 2) == [1, 2, 1]

    def test_f_4_levels_dips_to_coarsest(self):
        seq = cycle_levels("f", 4)
        assert seq[0] == 1 and seq[-1] == 1
        assert seq.count(4) >= 2  # extra coarsest visits vs V

    def test_strategy_aliases(self):
        assert cycle_levels("V Cycle", 3) == cycle_levels("v", 3)
        assert cycle_levels("Half-V", 3) == cycle_levels("half_v", 3)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            cycle_levels("zigzag", 3)

    def test_single_level_degenerates(self):
        for s in STRATEGIES:
            assert cycle_levels(s, 1) == [1]

    @given(strategy=st.sampled_from(STRATEGIES), levels=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_adjacent_visits_differ_by_one(self, strategy, levels):
        """All cycles move one level at a time (restriction/prolongation
        act between adjacent grids)."""
        seq = cycle_levels(strategy, levels)
        for a, b in zip(seq, seq[1:]):
            assert abs(a - b) == 1

    @given(strategy=st.sampled_from(STRATEGIES), levels=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_visits_every_level_and_ends_finest(self, strategy, levels):
        seq = cycle_levels(strategy, levels)
        assert set(seq) == set(range(1, levels + 1))
        assert seq[-1] == 1  # training finishes at the finest resolution
        assert max(seq) == levels


class TestSchedule:
    def test_last_visit_is_prolongation(self):
        for strategy in STRATEGIES:
            sched = build_schedule(strategy, 4)
            last = {}
            for step in sched:
                last[step.level] = step.phase
            assert all(phase == "prolongation" for phase in last.values())

    def test_v_cycle_phases(self):
        sched = build_schedule("v", 3)
        phases = [(s.level, s.phase) for s in sched]
        assert phases == [
            (1, "restriction"), (2, "restriction"), (3, "prolongation"),
            (2, "prolongation"), (1, "prolongation")]

    def test_half_v_all_prolongation(self):
        sched = build_schedule("half_v", 4)
        assert all(s.phase == "prolongation" for s in sched)

    def test_w_cycle_intermediate_restrictions(self):
        sched = build_schedule("w", 3)
        # Early visits to levels 2 and 3 must be restriction phases.
        assert sched[1] == CycleStep(2, "restriction")
        assert sched[2] == CycleStep(3, "restriction")

    def test_invalid_phase_raises(self):
        with pytest.raises(ValueError):
            CycleStep(1, "smoothing")
