"""Energy-loss exactness — the keystone tests of the reproduction.

The conv-stencil energy must match the assembled bilinear form exactly:
its autograd gradient equals ``K u - b`` and its value ``1/2 u^T K u - b^T u``.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.fem import (UniformGrid, EnergyLoss, FEMSolver, assemble_load,
                       assemble_stiffness, canonical_bc)


@pytest.fixture
def rng():
    return np.random.default_rng(100)


def _setup(ndim, res, rng, forcing=False):
    grid = UniformGrid(ndim, res)
    nu = np.exp(0.3 * rng.standard_normal(grid.shape))
    f = rng.standard_normal(grid.shape) if forcing else None
    u = rng.standard_normal(grid.shape)
    return grid, nu, f, u


class TestExactness:
    @pytest.mark.parametrize("ndim,res", [(2, 9), (2, 12), (3, 5), (3, 6)])
    def test_gradient_equals_Ku_minus_b(self, rng, ndim, res):
        grid, nu, f, u_np = _setup(ndim, res, rng, forcing=True)
        loss = EnergyLoss(grid, forcing=f, reduction="sum")
        u = Tensor(u_np[None, None], requires_grad=True, dtype=np.float64)
        loss(u, nu[None, None]).backward()
        k = assemble_stiffness(grid, nu)
        b = assemble_load(grid, f)
        ref = (k @ u_np.ravel() - b).reshape(grid.shape)
        np.testing.assert_allclose(u.grad[0, 0], ref, atol=1e-11)

    @pytest.mark.parametrize("ndim,res", [(2, 9), (3, 5)])
    def test_value_equals_matrix_energy(self, rng, ndim, res):
        grid, nu, f, u_np = _setup(ndim, res, rng, forcing=True)
        loss = EnergyLoss(grid, forcing=f, reduction="sum")
        u = Tensor(u_np[None, None], dtype=np.float64)
        j = float(loss(u, nu[None, None]).data)
        j_mat = FEMSolver(grid).energy(u_np, nu, f)
        assert j == pytest.approx(j_mat, abs=1e-10)

    def test_no_forcing_value(self, rng):
        grid, nu, _, u_np = _setup(2, 8, rng)
        loss = EnergyLoss(grid, reduction="sum")
        u = Tensor(u_np[None, None], dtype=np.float64)
        k = assemble_stiffness(grid, nu)
        expected = 0.5 * u_np.ravel() @ (k @ u_np.ravel())
        assert float(loss(u, nu[None, None]).data) == pytest.approx(expected)

    def test_energy_nonnegative_without_forcing(self, rng):
        grid, nu, _, u_np = _setup(2, 8, rng)
        loss = EnergyLoss(grid, reduction="sum")
        u = Tensor(u_np[None, None], dtype=np.float64)
        assert float(loss(u, nu[None, None]).data) >= 0.0

    def test_constant_field_zero_energy(self, rng):
        grid = UniformGrid(2, 8)
        nu = np.exp(rng.standard_normal(grid.shape))
        loss = EnergyLoss(grid, reduction="sum")
        u = Tensor(np.full((1, 1, 8, 8), 2.5), dtype=np.float64)
        assert float(loss(u, nu[None, None]).data) == pytest.approx(0.0, abs=1e-12)


class TestBatching:
    def test_mean_reduction(self, rng):
        grid = UniformGrid(2, 6)
        nus = np.exp(0.2 * rng.standard_normal((3, 1) + grid.shape))
        us = rng.standard_normal((3, 1) + grid.shape)
        loss = EnergyLoss(grid, reduction="mean")
        per = loss.per_sample(Tensor(us, dtype=np.float64), nus).data
        total = float(loss(Tensor(us, dtype=np.float64), nus).data)
        assert total == pytest.approx(per.mean())

    def test_per_sample_matches_individual(self, rng):
        grid = UniformGrid(2, 6)
        nus = np.exp(0.2 * rng.standard_normal((2, 1) + grid.shape))
        us = rng.standard_normal((2, 1) + grid.shape)
        loss = EnergyLoss(grid, reduction="sum")
        per = loss.per_sample(Tensor(us, dtype=np.float64), nus).data
        for i in range(2):
            ji = float(loss(Tensor(us[i:i + 1], dtype=np.float64),
                            nus[i:i + 1]).data)
            assert per[i] == pytest.approx(ji, rel=1e-12)

    def test_shape_validation(self, rng):
        grid = UniformGrid(2, 6)
        loss = EnergyLoss(grid)
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((1, 1, 5, 5))), np.zeros((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((1, 2, 6, 6))), np.zeros((1, 2, 6, 6)))
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((1, 1, 6, 6))), np.zeros((2, 1, 6, 6)))

    def test_bad_reduction_raises(self):
        with pytest.raises(ValueError):
            EnergyLoss(UniformGrid(2, 4), reduction="max")

    def test_float32_path(self, rng):
        grid = UniformGrid(2, 6)
        nu = np.exp(0.2 * rng.standard_normal(grid.shape)).astype(np.float32)
        u = rng.standard_normal(grid.shape).astype(np.float32)
        loss = EnergyLoss(grid, reduction="sum")
        j32 = float(loss(Tensor(u[None, None]), nu[None, None]).data)
        j64 = FEMSolver(grid).energy(u.astype(np.float64), nu.astype(np.float64))
        assert j32 == pytest.approx(j64, rel=1e-4)


class TestVariationalPrinciple:
    def test_direct_minimization_recovers_fem_solution(self, rng):
        """Optimizing nodal values under J (with exact BC masking, no
        network) must converge to the FEM solution — certifying that
        'minimize the loss' == 'solve the PDE'."""
        from repro.optim import Adam
        from repro.nn import Parameter

        grid = UniformGrid(2, 9)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        u_ref = FEMSolver(grid).solve(nu, bc)

        loss = EnergyLoss(grid, reduction="sum")
        chi_int = bc.interior_indicator()[None, None]
        u_b = bc.lift()[None, None]
        theta = Parameter(np.full((1, 1) + grid.shape, 0.5, dtype=np.float64))
        opt = Adam([theta], lr=0.05)
        nu_b = nu[None, None]
        for _ in range(400):
            u = theta * Tensor(chi_int) + Tensor(u_b)
            j = loss(u, nu_b)
            opt.zero_grad()
            j.backward()
            opt.step()
        u_final = (theta.data * chi_int + u_b)[0, 0]
        assert np.abs(u_final - u_ref).max() < 5e-3

    def test_fem_solution_is_stationary_point(self, rng):
        """grad J(u_fem) vanishes on the interior."""
        grid = UniformGrid(2, 9)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        u_ref = FEMSolver(grid).solve(nu, bc)
        loss = EnergyLoss(grid, reduction="sum")
        u = Tensor(u_ref[None, None], requires_grad=True, dtype=np.float64)
        loss(u, nu[None, None]).backward()
        interior_grad = u.grad[0, 0][~bc.mask]
        assert np.abs(interior_grad).max() < 1e-8
