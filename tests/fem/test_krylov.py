"""From-scratch CG solver tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import (UniformGrid, GeometricMultigrid, canonical_bc,
                       assemble_stiffness, conjugate_gradient,
                       jacobi_preconditioner, gmg_preconditioner)


def _interior_system(res=17, seed=0):
    grid = UniformGrid(2, res)
    rng = np.random.default_rng(seed)
    nu = np.exp(0.3 * rng.standard_normal(grid.shape))
    bc = canonical_bc(grid)
    k = assemble_stiffness(grid, nu)
    interior = ~bc.mask.ravel()
    k_ii = k[interior][:, interior].tocsr()
    b = (k @ bc.lift().ravel())[interior] * -1.0
    return grid, nu, bc, k_ii, b


class TestPlainCG:
    def test_solves_spd_system(self):
        _, _, _, a, b = _interior_system()
        x, rep = conjugate_gradient(a, b, tol=1e-12)
        assert rep.converged
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_matches_direct_solve(self):
        from scipy.sparse.linalg import spsolve

        _, _, _, a, b = _interior_system()
        x, _ = conjugate_gradient(a, b, tol=1e-13)
        np.testing.assert_allclose(x, spsolve(a.tocsc(), b), atol=1e-7)

    def test_callable_operator(self):
        _, _, _, a, b = _interior_system()
        x, rep = conjugate_gradient(lambda v: a @ v, b, tol=1e-10)
        assert rep.converged

    def test_warm_start_fewer_iterations(self):
        _, _, _, a, b = _interior_system()
        x, rep_cold = conjugate_gradient(a, b, tol=1e-10)
        _, rep_warm = conjugate_gradient(a, b, x0=x, tol=1e-10)
        assert rep_warm.iterations <= 1

    def test_maxiter_respected(self):
        _, _, _, a, b = _interior_system()
        _, rep = conjugate_gradient(a, b, tol=1e-16, maxiter=3)
        assert not rep.converged
        assert rep.iterations == 3

    def test_non_spd_detected(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(RuntimeError):
            conjugate_gradient(a, np.array([0.0, 1.0]))

    def test_residual_history_decreases_overall(self):
        _, _, _, a, b = _interior_system()
        _, rep = conjugate_gradient(a, b, tol=1e-10)
        assert rep.residual_history[-1] < rep.residual_history[0] * 1e-8


class TestPreconditioners:
    def test_jacobi_reduces_iterations(self):
        _, _, _, a, b = _interior_system(res=33)
        # Scale rows/cols to worsen conditioning so Jacobi visibly helps.
        scale = sp.diags(np.linspace(1.0, 40.0, a.shape[0]) ** 0.5)
        a_bad = (scale @ a @ scale).tocsr()
        _, plain = conjugate_gradient(a_bad, b, tol=1e-10)
        _, jac = conjugate_gradient(a_bad, b, tol=1e-10,
                                    preconditioner=jacobi_preconditioner(a_bad))
        assert jac.converged
        assert jac.iterations < plain.iterations

    def test_jacobi_validates_diagonal(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            jacobi_preconditioner(a)

    def test_gmg_preconditioner_near_resolution_independent(self):
        """MG-preconditioned CG iteration counts stay ~constant in h."""
        iters = []
        for res in (17, 33, 65):
            grid, nu, bc, k_ii, b = _interior_system(res=res)
            gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
            _, rep = conjugate_gradient(
                k_ii, b, tol=1e-10,
                preconditioner=gmg_preconditioner(gmg))
            assert rep.converged
            iters.append(rep.iterations)
        assert max(iters) <= 12
        assert max(iters) - min(iters) <= 3

    def test_gmg_preconditioner_beats_plain_cg(self):
        grid, nu, bc, k_ii, b = _interior_system(res=65)
        gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
        _, plain = conjugate_gradient(k_ii, b, tol=1e-10)
        _, mgcg = conjugate_gradient(k_ii, b, tol=1e-10,
                                     preconditioner=gmg_preconditioner(gmg))
        assert mgcg.iterations < plain.iterations / 4
