"""Gauss quadrature and Q1 basis correctness."""

import numpy as np
import pytest

from repro.fem import GaussRule, gauss_legendre_1d, local_nodes, shape_values, shape_gradients


class TestGaussLegendre:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_weights_sum_to_two(self, n):
        _, w = gauss_legendre_1d(n)
        assert w.sum() == pytest.approx(2.0)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_polynomial_exactness(self, n):
        """n-point Gauss integrates degree 2n-1 exactly on [-1, 1]."""
        pts, w = gauss_legendre_1d(n)
        for deg in range(2 * n):
            exact = (1 - (-1) ** (deg + 1)) / (deg + 1)
            assert (w * pts ** deg).sum() == pytest.approx(exact, abs=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_symmetry(self, n):
        pts, w = gauss_legendre_1d(n)
        np.testing.assert_allclose(np.sort(pts), -np.sort(-pts)[::-1] * 1.0)
        np.testing.assert_allclose(sorted(w), sorted(w[::-1]))


class TestGaussRule:
    @pytest.mark.parametrize("ndim,order", [(1, 2), (2, 2), (3, 2), (2, 3)])
    def test_tensor_product_counts(self, ndim, order):
        rule = GaussRule.create(ndim, order)
        assert rule.n_points == order ** ndim
        assert rule.points.shape == (order ** ndim, ndim)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_measure(self, ndim):
        rule = GaussRule.create(ndim, 2)
        assert rule.integrate_constant() == pytest.approx(2.0 ** ndim)

    def test_integrates_multilinear_exactly(self):
        rule = GaussRule.create(2, 2)
        # integral of x*y over [-1,1]^2 is 0; of (1+x)(1+y) is 4.
        f = (1 + rule.points[:, 0]) * (1 + rule.points[:, 1])
        assert (rule.weights * f).sum() == pytest.approx(4.0)


class TestBasis:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_partition_of_unity(self, ndim):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1, 1, (10, ndim))
        vals = shape_values(pts)
        np.testing.assert_allclose(vals.sum(axis=1), 1.0, atol=1e-13)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_gradients_sum_to_zero(self, ndim):
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1, 1, (10, ndim))
        grads = shape_gradients(pts)
        np.testing.assert_allclose(grads.sum(axis=1), 0.0, atol=1e-13)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_kronecker_delta_at_nodes(self, ndim):
        nodes = local_nodes(ndim)
        ref_coords = 2.0 * nodes - 1.0
        vals = shape_values(ref_coords)
        np.testing.assert_allclose(vals, np.eye(len(nodes)), atol=1e-13)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(-0.9, 0.9, (5, 2))
        eps = 1e-6
        grads = shape_gradients(pts)
        for k in range(2):
            shift = np.zeros_like(pts)
            shift[:, k] = eps
            fd = (shape_values(pts + shift) - shape_values(pts - shift)) / (2 * eps)
            np.testing.assert_allclose(grads[:, :, k], fd, atol=1e-8)

    def test_interpolates_multilinear_exactly(self):
        """Q1 reproduces a + b*x + c*y + d*x*y."""
        rng = np.random.default_rng(3)
        a, b, c, d = rng.standard_normal(4)

        def f(x, y):
            return a + b * x + c * y + d * x * y

        nodes = 2.0 * local_nodes(2) - 1.0
        nodal = f(nodes[:, 0], nodes[:, 1])
        pts = rng.uniform(-1, 1, (20, 2))
        interp = shape_values(pts) @ nodal
        np.testing.assert_allclose(interp, f(pts[:, 0], pts[:, 1]), atol=1e-12)
