"""Sparse assembly: operator algebra properties."""

import numpy as np
import pytest

from repro.fem import (UniformGrid, GaussRule, assemble_stiffness,
                       assemble_load, assemble_mass, interpolate_to_gauss,
                       canonical_bc)


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def _nu(grid, rng):
    return np.exp(0.3 * rng.standard_normal(grid.shape))


class TestStiffness:
    @pytest.mark.parametrize("ndim,res", [(2, 7), (3, 4)])
    def test_symmetry(self, rng, ndim, res):
        grid = UniformGrid(ndim, res)
        k = assemble_stiffness(grid, _nu(grid, rng))
        assert abs(k - k.T).max() < 1e-12

    @pytest.mark.parametrize("ndim,res", [(2, 7), (3, 4)])
    def test_constants_in_nullspace(self, rng, ndim, res):
        """K @ 1 == 0: pure Neumann operator annihilates constants."""
        grid = UniformGrid(ndim, res)
        k = assemble_stiffness(grid, _nu(grid, rng))
        np.testing.assert_allclose(k @ np.ones(grid.num_nodes), 0.0, atol=1e-12)

    def test_positive_semidefinite(self, rng):
        grid = UniformGrid(2, 6)
        k = assemble_stiffness(grid, _nu(grid, rng)).toarray()
        eigs = np.linalg.eigvalsh(k)
        assert eigs.min() > -1e-10

    def test_interior_block_positive_definite(self, rng):
        grid = UniformGrid(2, 6)
        k = assemble_stiffness(grid, _nu(grid, rng))
        interior = ~canonical_bc(grid).mask.ravel()
        kii = k[interior][:, interior].toarray()
        assert np.linalg.eigvalsh(kii).min() > 0

    def test_laplacian_stencil_2d(self):
        """nu=1 on a uniform grid gives the classic FEM 9-point stencil
        with row diagonal 8/3 (for h-independent 2D scaling)."""
        grid = UniformGrid(2, 5)
        k = assemble_stiffness(grid, np.ones(grid.shape)).toarray()
        center = grid.ravel_index((np.array([2]), np.array([2])))[0]
        assert k[center, center] == pytest.approx(8.0 / 3.0)

    def test_scaling_with_nu(self, rng):
        """K is linear in nu: K(2 nu) == 2 K(nu)."""
        grid = UniformGrid(2, 5)
        nu = _nu(grid, rng)
        k1 = assemble_stiffness(grid, nu)
        k2 = assemble_stiffness(grid, 2.0 * nu)
        assert abs(k2 - 2.0 * k1).max() < 1e-12


class TestMassAndLoad:
    @pytest.mark.parametrize("ndim,res", [(2, 6), (3, 4)])
    def test_mass_total_is_volume(self, ndim, res):
        grid = UniformGrid(ndim, res)
        m = assemble_mass(grid)
        assert m.sum() == pytest.approx(1.0)  # unit hypercube volume

    def test_load_of_one_integrates_to_volume(self):
        grid = UniformGrid(2, 8)
        b = assemble_load(grid, np.ones(grid.shape))
        assert b.sum() == pytest.approx(1.0)

    def test_load_none_is_zero(self):
        grid = UniformGrid(2, 4)
        assert np.all(assemble_load(grid, None) == 0)

    def test_load_linear_in_f(self, rng):
        grid = UniformGrid(2, 6)
        f = rng.standard_normal(grid.shape)
        np.testing.assert_allclose(assemble_load(grid, 3.0 * f),
                                   3.0 * assemble_load(grid, f), atol=1e-12)


class TestGaussInterpolation:
    def test_constant_field(self):
        grid = UniformGrid(2, 5)
        rule = GaussRule.create(2, 2)
        out = interpolate_to_gauss(grid, np.full(grid.shape, 3.0), rule)
        np.testing.assert_allclose(out, 3.0)
        assert out.shape == (4, 4, 4)

    def test_linear_field_exact(self):
        grid = UniformGrid(2, 5)
        rule = GaussRule.create(2, 2)
        X, Y = grid.coordinates()
        field = 2 * X + 3 * Y
        out = interpolate_to_gauss(grid, field, rule)
        # Gauss point physical coordinates:
        h = grid.h
        for g, (xi, eta) in enumerate(rule.points):
            ex = np.add.outer(
                (np.arange(4) + (xi + 1) / 2) * h * 2,
                (np.arange(4) + (eta + 1) / 2) * h * 3)
            np.testing.assert_allclose(out[g], ex, atol=1e-12)

    def test_shape_mismatch_raises(self):
        grid = UniformGrid(2, 5)
        rule = GaussRule.create(2, 2)
        with pytest.raises(ValueError):
            interpolate_to_gauss(grid, np.zeros((4, 4)), rule)
