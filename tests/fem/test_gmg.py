"""Geometric multigrid solver tests (the Sec. 2.3 substrate)."""

import numpy as np
import pytest

from repro.fem import (UniformGrid, GeometricMultigrid, FEMSolver,
                       canonical_bc, prolong_nested, restrict_nested)


@pytest.fixture
def rng():
    return np.random.default_rng(55)


def _variable_nu(grid):
    coords = grid.coordinates()
    return np.exp(0.5 * np.sin(3 * coords[0]) * np.cos(2 * coords[1]))


class TestNestedTransfer:
    def test_prolong_exact_on_linear(self):
        x = np.linspace(0, 1, 5)
        fine = prolong_nested(x)
        np.testing.assert_allclose(fine, np.linspace(0, 1, 9), atol=1e-14)

    def test_value_restriction_preserves_constants(self):
        c = np.full((9, 9), 3.0)
        np.testing.assert_allclose(restrict_nested(c, mode="value"), 3.0)

    def test_dual_restriction_is_adjoint(self, rng):
        """<R r, c> == <r, P c> for the dual-mode restriction."""
        r = rng.standard_normal((9, 9))
        c = rng.standard_normal((5, 5))
        lhs = float((restrict_nested(r, mode="dual") * c).sum())
        rhs = float((r * prolong_nested(c)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_even_size_raises(self):
        with pytest.raises(ValueError):
            restrict_nested(np.zeros((8, 8)))

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            restrict_nested(np.zeros((5, 5)), mode="nope")


class TestGMGSolver:
    @pytest.mark.parametrize("cycle", ["v", "w", "f"])
    def test_matches_direct_2d(self, cycle):
        grid = UniformGrid(2, 33)
        bc = canonical_bc(grid)
        nu = _variable_nu(grid)
        ref = FEMSolver(grid).solve(nu, bc, method="direct")
        gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
        u = gmg.solve(tol=1e-10, cycle=cycle)
        assert gmg.last_report.converged
        assert np.abs(u - ref).max() < 1e-8

    def test_matches_direct_3d(self):
        grid = UniformGrid(3, 9)
        bc = canonical_bc(grid)
        nu = _variable_nu(grid)
        ref = FEMSolver(grid).solve(nu, bc, method="direct")
        gmg = GeometricMultigrid(grid, nu, bc, coarse_size=130)
        u = gmg.solve(tol=1e-10)
        assert np.abs(u - ref).max() < 1e-8

    def test_iteration_count_resolution_independent(self):
        """Textbook multigrid: cycles to converge ~constant in h."""
        iters = []
        for res in (17, 33, 65):
            grid = UniformGrid(2, res)
            bc = canonical_bc(grid)
            gmg = GeometricMultigrid(grid, _variable_nu(grid), bc,
                                     coarse_size=128)
            gmg.solve(tol=1e-9)
            iters.append(gmg.last_report.iterations)
        assert max(iters) - min(iters) <= 4
        assert max(iters) <= 20

    def test_residual_history_monotone(self):
        grid = UniformGrid(2, 33)
        bc = canonical_bc(grid)
        gmg = GeometricMultigrid(grid, _variable_nu(grid), bc, coarse_size=128)
        gmg.solve(tol=1e-9)
        h = gmg.last_report.residual_history
        assert all(b < a for a, b in zip(h, h[1:]))

    def test_w_cycle_converges_at_least_as_fast(self):
        grid = UniformGrid(2, 33)
        bc = canonical_bc(grid)
        gmg = GeometricMultigrid(grid, _variable_nu(grid), bc, coarse_size=128)
        gmg.solve(tol=1e-9, cycle="v")
        v_iters = gmg.last_report.iterations
        gmg.solve(tol=1e-9, cycle="w")
        w_iters = gmg.last_report.iterations
        assert w_iters <= v_iters + 1

    def test_level_count(self):
        grid = UniformGrid(2, 33)
        gmg = GeometricMultigrid(grid, np.ones(grid.shape),
                                 canonical_bc(grid), coarse_size=30)
        # 33 -> 17 -> 9 -> 5 (25 nodes < 30 stops there)
        assert [l.grid.resolution for l in gmg.levels] == [33, 17, 9, 5]

    def test_max_levels_respected(self):
        grid = UniformGrid(2, 33)
        gmg = GeometricMultigrid(grid, np.ones(grid.shape),
                                 canonical_bc(grid), max_levels=2)
        assert gmg.num_levels == 2

    def test_dirichlet_values_exact(self):
        grid = UniformGrid(2, 17)
        bc = canonical_bc(grid)
        gmg = GeometricMultigrid(grid, _variable_nu(grid), bc)
        u = gmg.solve(tol=1e-8)
        np.testing.assert_allclose(u[0], 1.0, atol=1e-14)
        np.testing.assert_allclose(u[-1], 0.0, atol=1e-14)

    def test_warm_start(self):
        grid = UniformGrid(2, 17)
        bc = canonical_bc(grid)
        nu = _variable_nu(grid)
        gmg = GeometricMultigrid(grid, nu, bc)
        u0 = gmg.solve(tol=1e-6)
        gmg.solve(tol=1e-10, x0=u0)
        warm_iters = gmg.last_report.iterations
        gmg.solve(tol=1e-10)
        cold_iters = gmg.last_report.iterations
        assert warm_iters <= cold_iters
