"""UniformGrid tests."""

import numpy as np
import pytest

from repro.fem import UniformGrid


class TestBasics:
    def test_counts(self):
        g = UniformGrid(2, 5)
        assert g.num_nodes == 25
        assert g.num_elements == 16
        assert g.shape == (5, 5)
        assert g.element_shape == (4, 4)

    def test_spacing(self):
        assert UniformGrid(3, 11).h == pytest.approx(0.1)

    def test_coordinates_range(self):
        g = UniformGrid(2, 4)
        X, Y = g.coordinates()
        assert X.min() == 0.0 and X.max() == 1.0
        assert X.shape == g.shape

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformGrid(0, 5)
        with pytest.raises(ValueError):
            UniformGrid(2, 1)


class TestMasks:
    def test_face_mask_counts(self):
        g = UniformGrid(2, 5)
        assert g.face_mask(0, 0).sum() == 5
        assert g.face_mask(1, 1).sum() == 5

    def test_face_mask_location(self):
        g = UniformGrid(2, 4)
        m = g.face_mask(0, 0)
        assert m[0].all() and not m[1:].any()

    def test_boundary_mask_3d(self):
        g = UniformGrid(3, 4)
        m = g.boundary_mask()
        assert m.sum() == 4 ** 3 - 2 ** 3  # all minus interior

    def test_ravel_index(self):
        g = UniformGrid(2, 4)
        idx = g.ravel_index((np.array([1]), np.array([2])))
        assert idx[0] == 1 * 4 + 2


class TestHierarchy:
    def test_coarsen_refine_roundtrip(self):
        g = UniformGrid(2, 9)
        assert g.coarsen().resolution == 5
        assert g.coarsen().refine().resolution == 9

    def test_cannot_coarsen_even_elements(self):
        assert not UniformGrid(2, 4).can_coarsen()  # 3 elements, odd
        assert UniformGrid(2, 5).can_coarsen()

    def test_coarsen_invalid_raises(self):
        with pytest.raises(ValueError):
            UniformGrid(2, 4).coarsen()
