"""Non-homogeneous Neumann BC extension tests."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.fem import (UniformGrid, FEMSolver, DirichletBC, EnergyLoss,
                       assemble_stiffness)
from repro.fem.neumann import (NeumannBC, assemble_neumann_load,
                               neumann_energy)


def _left_dirichlet(grid, value=1.0):
    mask = grid.face_mask(0, 0)
    values = np.zeros(grid.shape)
    values[mask] = value
    return DirichletBC(mask=mask, values=values)


class TestAssembly:
    def test_constant_flux_total(self):
        """int_{face} h dS == h * face area (unit square face, area 1)."""
        grid = UniformGrid(2, 9)
        b = assemble_neumann_load(grid, [NeumannBC(axis=0, side=1, flux=2.5)])
        assert b.sum() == pytest.approx(2.5)

    def test_load_supported_on_face_only(self):
        grid = UniformGrid(2, 7)
        b = assemble_neumann_load(grid, [NeumannBC(axis=0, side=1, flux=1.0)])
        full = b.reshape(grid.shape)
        assert np.all(full[:-1] == 0)
        assert np.all(full[-1] > 0)

    def test_nodal_flux_array(self):
        grid = UniformGrid(2, 9)
        h = np.linspace(0, 1, 9)
        b = assemble_neumann_load(grid, [NeumannBC(axis=1, side=0, flux=h)])
        # total = int_0^1 x dx = 1/2
        assert b.sum() == pytest.approx(0.5, abs=1e-12)

    def test_flux_shape_mismatch(self):
        grid = UniformGrid(2, 9)
        with pytest.raises(ValueError):
            NeumannBC(axis=0, side=1, flux=np.zeros(5)).face_values(grid)

    def test_two_faces_superpose(self):
        grid = UniformGrid(2, 7)
        b1 = assemble_neumann_load(grid, [NeumannBC(0, 1, 1.0)])
        b2 = assemble_neumann_load(grid, [NeumannBC(1, 1, 2.0)])
        both = assemble_neumann_load(grid, [NeumannBC(0, 1, 1.0),
                                            NeumannBC(1, 1, 2.0)])
        np.testing.assert_allclose(both, b1 + b2, atol=1e-14)

    def test_3d_face_area(self):
        grid = UniformGrid(3, 5)
        b = assemble_neumann_load(grid, [NeumannBC(axis=2, side=1, flux=3.0)])
        assert b.sum() == pytest.approx(3.0)


class TestManufacturedSolutions:
    def test_linear_solution_2d(self):
        """-u'' = 0, u(0,.)=1, flux g at x=1 -> u = 1 + g x exactly."""
        g = 0.75
        grid = UniformGrid(2, 17)
        solver = FEMSolver(grid)
        u = solver.solve(np.ones(grid.shape), _left_dirichlet(grid),
                         neumann=[NeumannBC(axis=0, side=1, flux=g)])
        x = grid.coordinates()[0]
        np.testing.assert_allclose(u, 1.0 + g * x, atol=1e-9)

    def test_linear_solution_3d(self):
        g = -0.4
        grid = UniformGrid(3, 9)
        solver = FEMSolver(grid)
        u = solver.solve(np.ones(grid.shape), _left_dirichlet(grid),
                         neumann=[NeumannBC(axis=0, side=1, flux=g)])
        x = grid.coordinates()[0]
        np.testing.assert_allclose(u, 1.0 + g * x, atol=1e-8)

    def test_variable_nu_flux_balance(self):
        """With -div(nu u')=0 and flux g at x=1: nu u' == g everywhere
        (1D-like); check the solve satisfies the outlet flux."""
        grid = UniformGrid(2, 33)
        x = grid.coordinates()[0]
        nu = 1.0 + x  # varies along the flow direction only
        g = 0.3
        u = FEMSolver(grid).solve(nu, _left_dirichlet(grid),
                                  neumann=[NeumannBC(0, 1, g)])
        # u = 1 + g * ln(1+x)/ln? solve: nu u' = g -> u' = g/(1+x)
        expected = 1.0 + g * np.log1p(x)
        assert np.abs(u - expected).max() < 2e-3


class TestEnergyConsistency:
    def test_energy_gradient_includes_neumann(self):
        """Autograd gradient of the full energy == K u - b_f - b_N."""
        rng = np.random.default_rng(0)
        grid = UniformGrid(2, 9)
        nu = np.exp(0.2 * rng.standard_normal(grid.shape))
        u_np = rng.standard_normal(grid.shape)
        bcs = [NeumannBC(axis=0, side=1, flux=1.3),
               NeumannBC(axis=1, side=0, flux=-0.7)]

        loss = EnergyLoss(grid, reduction="sum", neumann=bcs)
        u = Tensor(u_np[None, None], requires_grad=True, dtype=np.float64)
        loss(u, nu[None, None]).backward()

        k = assemble_stiffness(grid, nu)
        b_n = assemble_neumann_load(grid, bcs)
        ref = (k @ u_np.ravel() - b_n).reshape(grid.shape)
        np.testing.assert_allclose(u.grad[0, 0], ref, atol=1e-11)

    def test_energy_value_matches_matrix_form(self):
        rng = np.random.default_rng(1)
        grid = UniformGrid(2, 8)
        nu = np.exp(0.2 * rng.standard_normal(grid.shape))
        u_np = rng.standard_normal(grid.shape)
        bcs = [NeumannBC(axis=0, side=1, flux=0.9)]
        loss = EnergyLoss(grid, reduction="sum", neumann=bcs)
        j = float(loss(Tensor(u_np[None, None], dtype=np.float64),
                       nu[None, None]).data)
        j_ref = FEMSolver(grid).energy(u_np, nu, neumann=bcs)
        assert j == pytest.approx(j_ref, abs=1e-10)

    def test_neumann_energy_linear_in_u(self):
        grid = UniformGrid(2, 7)
        bcs = [NeumannBC(axis=0, side=1, flux=2.0)]
        rng = np.random.default_rng(2)
        u1 = rng.standard_normal((1, 1) + grid.shape)
        e1 = float(neumann_energy(Tensor(u1, dtype=np.float64), grid, bcs).data[0])
        e2 = float(neumann_energy(Tensor(3.0 * u1, dtype=np.float64), grid,
                                  bcs).data[0])
        assert e2 == pytest.approx(3.0 * e1, rel=1e-12)

    def test_direct_minimization_with_flux(self):
        """Minimizing the energy with the Neumann term recovers the
        flux-driven FEM solution."""
        from repro.nn import Parameter
        from repro.optim import Adam

        g = 0.5
        grid = UniformGrid(2, 9)
        nu = np.ones(grid.shape)
        dbc = _left_dirichlet(grid)
        nbc = [NeumannBC(axis=0, side=1, flux=g)]
        ref = FEMSolver(grid).solve(nu, dbc, neumann=nbc)

        loss = EnergyLoss(grid, reduction="sum", neumann=nbc)
        chi_int = dbc.interior_indicator()[None, None]
        u_b = dbc.lift()[None, None]
        theta = Parameter(np.full((1, 1) + grid.shape, 1.0, dtype=np.float64))
        opt = Adam([theta], lr=0.05)
        for _ in range(400):
            u = theta * Tensor(chi_int) + Tensor(u_b)
            j = loss(u, nu[None, None])
            opt.zero_grad()
            j.backward()
            opt.step()
        u_final = (theta.data * chi_int + u_b)[0, 0]
        assert np.abs(u_final - ref).max() < 5e-3
