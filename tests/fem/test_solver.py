"""FEM solver tests: BCs, manufactured solutions, convergence order."""

import numpy as np
import pytest

from repro.fem import UniformGrid, FEMSolver, DirichletBC, canonical_bc


class TestDirichletBC:
    def test_canonical_masks(self):
        grid = UniformGrid(2, 5)
        bc = canonical_bc(grid)
        assert bc.mask[0].all() and bc.mask[-1].all()
        assert not bc.mask[1:-1].any()
        assert np.all(bc.values[0] == 1.0)
        assert np.all(bc.values[-1] == 0.0)

    def test_indicator_partition(self):
        grid = UniformGrid(3, 4)
        bc = canonical_bc(grid)
        total = bc.interior_indicator() + bc.boundary_indicator()
        np.testing.assert_allclose(total, 1.0)

    def test_lift(self):
        grid = UniformGrid(2, 4)
        bc = canonical_bc(grid)
        lifted = bc.lift()
        assert np.all(lifted[0] == 1.0)
        assert np.all(lifted[1:] == 0.0)

    def test_validation(self):
        mask = np.zeros((3, 3), dtype=bool)
        with pytest.raises(ValueError):
            DirichletBC(mask=mask, values=np.zeros((4, 4)))
        with pytest.raises(TypeError):
            DirichletBC(mask=np.zeros((3, 3)), values=np.zeros((3, 3)))


class TestCanonicalSolves:
    @pytest.mark.parametrize("ndim,res", [(2, 17), (3, 9)])
    def test_constant_nu_linear_profile(self, ndim, res):
        """nu = const: u = 1 - x exactly (it lies in the FE space)."""
        grid = UniformGrid(ndim, res)
        u = FEMSolver(grid).solve(np.ones(grid.shape), canonical_bc(grid))
        x = grid.coordinates()[0]
        np.testing.assert_allclose(u, 1.0 - x, atol=1e-9)

    def test_solution_bounds(self):
        """Maximum principle: solution stays within Dirichlet data range."""
        grid = UniformGrid(2, 17)
        rng = np.random.default_rng(0)
        nu = np.exp(0.5 * rng.standard_normal(grid.shape))
        u = FEMSolver(grid).solve(nu, canonical_bc(grid))
        assert u.min() >= -1e-8 and u.max() <= 1.0 + 1e-8

    def test_cg_matches_direct(self):
        grid = UniformGrid(2, 17)
        X, Y = grid.coordinates()
        nu = np.exp(np.sin(3 * X) * np.cos(2 * Y))
        solver = FEMSolver(grid)
        bc = canonical_bc(grid)
        u_d = solver.solve(nu, bc, method="direct")
        u_cg = solver.solve(nu, bc, method="cg", tol=1e-12)
        np.testing.assert_allclose(u_cg, u_d, atol=1e-8)
        assert solver.last_report.method == "cg"
        assert solver.last_report.iterations > 0

    def test_unknown_method_raises(self):
        grid = UniformGrid(2, 5)
        with pytest.raises(ValueError):
            FEMSolver(grid).solve(np.ones(grid.shape), canonical_bc(grid),
                                  method="magic")


class TestManufacturedSolution:
    def _solve_manufactured(self, res: int) -> float:
        """-u'' = f on the strip with u = sin(pi x) forcing; Dirichlet 0 at
        x faces; f = pi^2 sin(pi x); exact u = sin(pi x) (y-independent,
        zero-flux on y faces is satisfied)."""
        grid = UniformGrid(2, res)
        X, _ = grid.coordinates()
        f = np.pi ** 2 * np.sin(np.pi * X)
        mask = grid.face_mask(0, 0) | grid.face_mask(0, 1)
        bc = DirichletBC(mask=mask, values=np.zeros(grid.shape))
        u = FEMSolver(grid).solve(np.ones(grid.shape), bc, f_nodal=f)
        return float(np.abs(u - np.sin(np.pi * X)).max())

    def test_second_order_convergence(self):
        errs = [self._solve_manufactured(r) for r in (9, 17, 33)]
        rate1 = np.log2(errs[0] / errs[1])
        rate2 = np.log2(errs[1] / errs[2])
        assert rate1 == pytest.approx(2.0, abs=0.3)
        assert rate2 == pytest.approx(2.0, abs=0.3)

    def test_energy_method_matches_solution(self):
        """J(u_fem) <= J(any admissible u): sampled perturbation check."""
        grid = UniformGrid(2, 9)
        rng = np.random.default_rng(4)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        solver = FEMSolver(grid)
        u_star = solver.solve(nu, bc)
        j_star = solver.energy(u_star, nu)
        for _ in range(5):
            pert = rng.standard_normal(grid.shape) * 0.05
            pert[bc.mask] = 0.0  # stay admissible
            assert solver.energy(u_star + pert, nu) >= j_star - 1e-12
