"""Matrix-free stencil operator and FMG driver tests."""

import numpy as np
import pytest

from repro.fem import (UniformGrid, FEMSolver, assemble_stiffness,
                       canonical_bc)
from repro.fem.stencil import StencilOperator
from repro.multigrid.fmg import full_multigrid_solve


@pytest.fixture
def rng():
    return np.random.default_rng(202)


class TestStencilOperator:
    @pytest.mark.parametrize("ndim,res", [(2, 9), (3, 5)])
    def test_matches_assembled_matrix(self, rng, ndim, res):
        grid = UniformGrid(ndim, res)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        op = StencilOperator(grid, nu)
        k = assemble_stiffness(grid, nu)
        for _ in range(3):
            v = rng.standard_normal(grid.num_nodes)
            np.testing.assert_allclose(op.matvec(v), k @ v, atol=1e-11)

    def test_linearity(self, rng):
        grid = UniformGrid(2, 8)
        nu = np.exp(0.2 * rng.standard_normal(grid.shape))
        op = StencilOperator(grid, nu)
        v, w = (rng.standard_normal(grid.num_nodes) for _ in range(2))
        np.testing.assert_allclose(op.matvec(2 * v + 3 * w),
                                   2 * op.matvec(v) + 3 * op.matvec(w),
                                   atol=1e-10)

    def test_symmetry(self, rng):
        grid = UniformGrid(2, 7)
        nu = np.exp(0.2 * rng.standard_normal(grid.shape))
        op = StencilOperator(grid, nu)
        v, w = (rng.standard_normal(grid.num_nodes) for _ in range(2))
        assert float(w @ op.matvec(v)) == pytest.approx(
            float(v @ op.matvec(w)), rel=1e-10)

    def test_matrix_free_solve_matches_assembled(self, rng):
        grid = UniformGrid(2, 17)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        ref = FEMSolver(grid).solve(nu, bc, method="direct")
        op = StencilOperator(grid, nu)
        u = op.solve_interior(bc, tol=1e-12)
        np.testing.assert_allclose(u, ref, atol=1e-7)
        assert op.last_report.converged

    def test_shape_validation(self, rng):
        grid = UniformGrid(2, 8)
        with pytest.raises(ValueError):
            StencilOperator(grid, np.ones((4, 4)))


class TestFMG:
    def _problem(self, res=33):
        grid = UniformGrid(2, res)
        x, y = grid.coordinates()
        nu = np.exp(0.5 * np.sin(3 * x) * np.cos(2 * y))
        return grid, nu, canonical_bc(grid)

    def test_matches_direct(self):
        grid, nu, bc = self._problem()
        ref = FEMSolver(grid).solve(nu, bc, method="direct")
        u, res = full_multigrid_solve(grid, nu, bc, levels=3, tol=1e-10)
        assert np.abs(u - ref).max() < 1e-7
        assert res.final_residual < 1e-10

    def test_fine_levels_need_few_cycles(self):
        """The FMG promise: coarse init makes fine solves cheap."""
        grid, nu, bc = self._problem(res=65)
        _, res = full_multigrid_solve(grid, nu, bc, levels=4, tol=1e-9)
        # Finest level converges in no more cycles than a cold start (~10).
        assert res.cycles_per_level[-1] <= 10
        assert res.resolutions == [9, 17, 33, 65]

    def test_fmg_beats_cold_start_on_fine_cycles(self):
        from repro.fem import GeometricMultigrid

        grid, nu, bc = self._problem(res=65)
        _, res = full_multigrid_solve(grid, nu, bc, levels=3, tol=1e-9)
        gmg = GeometricMultigrid(grid, nu, bc)
        gmg.solve(tol=1e-9)
        assert res.cycles_per_level[-1] <= gmg.last_report.iterations

    def test_non_nesting_raises(self):
        grid = UniformGrid(2, 12)
        with pytest.raises(ValueError):
            full_multigrid_solve(grid, np.ones(grid.shape),
                                 canonical_bc(grid), levels=3)

    def test_with_forcing(self):
        grid, nu, bc = self._problem()
        x = grid.coordinates()[0]
        f = np.sin(np.pi * x)
        ref = FEMSolver(grid).solve(nu, bc, f_nodal=f, method="direct")
        u, _ = full_multigrid_solve(grid, nu, bc, f_nodal=f, levels=3,
                                    tol=1e-10)
        assert np.abs(u - ref).max() < 1e-7
