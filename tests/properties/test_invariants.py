"""Cross-cutting property-based tests (hypothesis) on the core invariants
of the system.  These are the relations the correctness of the whole
reproduction rests on, checked over randomized configurations rather than
hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.fem import (UniformGrid, EnergyLoss, FEMSolver, canonical_bc,
                       assemble_stiffness)

SMALL_RES = st.sampled_from([5, 6, 8, 9])
SEEDS = st.integers(0, 10 ** 6)


def _random_fields(res, seed, ndim=2):
    rng = np.random.default_rng(seed)
    grid = UniformGrid(ndim, res)
    nu = np.exp(0.3 * rng.standard_normal(grid.shape))
    u = rng.standard_normal(grid.shape)
    return grid, nu, u


class TestEnergyFunctionalProperties:
    @given(res=SMALL_RES, seed=SEEDS, alpha=st.floats(-3.0, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_quadratic_scaling(self, res, seed, alpha):
        """f = 0: J(alpha u) == alpha^2 J(u)."""
        grid, nu, u = _random_fields(res, seed)
        loss = EnergyLoss(grid, reduction="sum")
        j1 = float(loss(Tensor(u[None, None], dtype=np.float64),
                        nu[None, None]).data)
        j2 = float(loss(Tensor((alpha * u)[None, None], dtype=np.float64),
                        nu[None, None]).data)
        assert j2 == pytest.approx(alpha ** 2 * j1, rel=1e-9, abs=1e-12)

    @given(res=SMALL_RES, seed=SEEDS, c=st.floats(-5.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_translation_invariance(self, res, seed, c):
        """Adding a constant changes nothing: J(u + c) == J(u) for f=0."""
        grid, nu, u = _random_fields(res, seed)
        loss = EnergyLoss(grid, reduction="sum")
        j1 = float(loss(Tensor(u[None, None], dtype=np.float64),
                        nu[None, None]).data)
        j2 = float(loss(Tensor((u + c)[None, None], dtype=np.float64),
                        nu[None, None]).data)
        assert j2 == pytest.approx(j1, rel=1e-8, abs=1e-10)

    @given(res=SMALL_RES, seed=SEEDS, scale=st.floats(0.1, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_nu(self, res, seed, scale):
        """J is linear in the coefficient field: J(u; s nu) == s J(u; nu)."""
        grid, nu, u = _random_fields(res, seed)
        loss = EnergyLoss(grid, reduction="sum")
        ut = Tensor(u[None, None], dtype=np.float64)
        j1 = float(loss(ut, nu[None, None]).data)
        j2 = float(loss(ut, (scale * nu)[None, None]).data)
        assert j2 == pytest.approx(scale * j1, rel=1e-9)

    @given(res=SMALL_RES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_gradient_matches_operator(self, res, seed):
        """The keystone identity over random data: grad J == K u."""
        grid, nu, u_np = _random_fields(res, seed)
        loss = EnergyLoss(grid, reduction="sum")
        u = Tensor(u_np[None, None], requires_grad=True, dtype=np.float64)
        loss(u, nu[None, None]).backward()
        k = assemble_stiffness(grid, nu)
        np.testing.assert_allclose(
            u.grad[0, 0].ravel(), k @ u_np.ravel(), atol=1e-10)


class TestFEMSolutionProperties:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_maximum_principle(self, seed):
        """Solutions stay inside the Dirichlet data range [0, 1] for any
        positive diffusivity (no interior extrema)."""
        rng = np.random.default_rng(seed)
        grid = UniformGrid(2, 13)
        nu = np.exp(0.6 * rng.standard_normal(grid.shape))
        u = FEMSolver(grid).solve(nu, canonical_bc(grid))
        assert u.min() >= -1e-8
        assert u.max() <= 1.0 + 1e-8

    @given(seed=SEEDS, scale=st.floats(0.2, 5.0))
    @settings(max_examples=10, deadline=None)
    def test_solution_invariant_to_nu_scaling(self, seed, scale):
        """-div(nu grad u) = 0 is invariant under nu -> s nu."""
        rng = np.random.default_rng(seed)
        grid = UniformGrid(2, 9)
        nu = np.exp(0.4 * rng.standard_normal(grid.shape))
        solver = FEMSolver(grid)
        bc = canonical_bc(grid)
        u1 = solver.solve(nu, bc)
        u2 = solver.solve(scale * nu, bc)
        np.testing.assert_allclose(u1, u2, atol=1e-8)

    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_flux_conservation(self, seed):
        """Total flux through x=0 equals total through x=1 (steady
        state, no interior sources): via energy identity
        J(u*) = 1/2 int nu |grad u*|^2 equals 1/2 * inflow flux."""
        rng = np.random.default_rng(seed)
        grid = UniformGrid(2, 13)
        nu = np.exp(0.4 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        solver = FEMSolver(grid)
        u = solver.solve(nu, bc)
        k = assemble_stiffness(grid, nu)
        r = (k @ u.ravel()).reshape(grid.shape)
        # Residual vanishes on interior; boundary residuals are fluxes.
        influx = r[0].sum()     # at u=1 face
        outflux = r[-1].sum()   # at u=0 face
        assert influx == pytest.approx(-outflux, rel=1e-8)


class TestModelOutputProperties:
    @given(seed=st.integers(0, 1000), res=st.sampled_from([8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_bcs_exact_for_any_weights(self, seed, res):
        """Random untrained networks still satisfy the Dirichlet data —
        exactness is structural, not learned."""
        from repro import MGDiffNet, PoissonProblem2D

        problem = PoissonProblem2D(res)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=seed)
        rng = np.random.default_rng(seed)
        omega = rng.uniform(-3, 3, 4)
        u = model.predict(problem, omega)
        np.testing.assert_array_equal(u[0], 1.0)
        np.testing.assert_array_equal(u[-1], 0.0)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_prediction_in_unit_range(self, seed):
        from repro import MGDiffNet, PoissonProblem2D

        problem = PoissonProblem2D(8)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=seed)
        omega = np.random.default_rng(seed).uniform(-3, 3, 4)
        u = model.predict(problem, omega)
        assert u.min() >= 0.0 and u.max() <= 1.0
