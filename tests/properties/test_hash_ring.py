"""Consistent-hash ring invariants (hypothesis-driven).

The fleet's routing correctness rests on four properties of
:class:`repro.serve.HashRing`:

* **balance** — with v virtual nodes per shard the key load spreads
  within a bounded factor of the mean (empirically max/mean < 1.3 at
  v=128; gated loosely at 1.8 / 0.4 so the test pins the mechanism,
  not the noise);
* **minimal disruption** — adding a shard moves only keys *onto* the
  new shard (~K/(N+1) of them); removing one moves only the keys it
  owned.  No third shard's assignment ever changes;
* **replica distinctness** — ``lookup(key, n)`` never places two
  replicas on one shard and returns exactly ``min(n, len(nodes))``;
* **process determinism** — ring points come from SHA-1, not Python's
  seeded ``hash()``, so two interpreters with different
  ``PYTHONHASHSEED`` (two "hosts" of the simulated fleet) compute
  identical routes.  Construction order must not matter either.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import HashRing

VNODES = 128


def _nodes(trial: int, n: int) -> list[str]:
    return [f"node-{trial}-{i}" for i in range(n)]


def _keys(trial: int, count: int) -> list[str]:
    return [f"key-{trial}-{j}" for j in range(count)]


class TestLookupContract:
    @given(n_nodes=st.integers(1, 10), n=st.integers(1, 6),
           key=st.text(min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_replicas_distinct_and_sized(self, n_nodes, n, key):
        ring = HashRing(_nodes(0, n_nodes), vnodes=16)
        replicas = ring.lookup(key, n=n)
        assert len(replicas) == min(n, n_nodes)
        assert len(set(replicas)) == len(replicas)
        assert all(r in ring for r in replicas)

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError):
            HashRing().lookup("k")

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).lookup("k", n=0)

    @given(trial=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_construction_order_irrelevant(self, trial):
        nodes = _nodes(trial, 5)
        shuffled = list(nodes)
        random.Random(trial).shuffle(shuffled)
        a, b = HashRing(nodes, vnodes=32), HashRing(shuffled, vnodes=32)
        for key in _keys(trial, 50):
            assert a.lookup(key, n=3) == b.lookup(key, n=3)

    @given(trial=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_lookup_is_pure(self, trial):
        """Repeated lookups never mutate the ring (replica sets are
        deterministic within one process too)."""
        ring = HashRing(_nodes(trial, 4), vnodes=32)
        keys = _keys(trial, 25)
        first = [ring.lookup(k, n=2) for k in keys]
        assert [ring.lookup(k, n=2) for k in keys] == first


class TestBalance:
    @given(trial=st.integers(0, 10_000), n_nodes=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_primary_load_bounded(self, trial, n_nodes):
        ring = HashRing(_nodes(trial, n_nodes), vnodes=VNODES)
        keys = _keys(trial, 250 * n_nodes)
        loads = Counter(ring.lookup(key)[0] for key in keys)
        mean = len(keys) / n_nodes
        assert max(loads.values()) <= 1.8 * mean
        assert min(loads.get(node, 0)
                   for node in ring.nodes) >= 0.4 * mean


class TestMinimalDisruption:
    @given(trial=st.integers(0, 10_000), n_nodes=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_add_moves_only_onto_new_node(self, trial, n_nodes):
        ring = HashRing(_nodes(trial, n_nodes), vnodes=VNODES)
        keys = _keys(trial, 200 * n_nodes)
        before = {key: ring.lookup(key)[0] for key in keys}
        new = f"node-{trial}-new"
        ring.add(new)
        moved = 0
        for key in keys:
            owner = ring.lookup(key)[0]
            if owner != before[key]:
                moved += 1
                # The consistent-hashing contract: a changed assignment
                # can only point at the addition.
                assert owner == new
        expected = len(keys) / (n_nodes + 1)
        assert moved <= 2.0 * expected + 5

    @given(trial=st.integers(0, 10_000), n_nodes=st.integers(3, 8))
    @settings(max_examples=25, deadline=None)
    def test_remove_moves_only_orphaned_keys(self, trial, n_nodes):
        nodes = _nodes(trial, n_nodes)
        ring = HashRing(nodes, vnodes=VNODES)
        keys = _keys(trial, 200 * n_nodes)
        before = {key: ring.lookup(key)[0] for key in keys}
        victim = nodes[trial % n_nodes]
        ring.remove(victim)
        for key in keys:
            if before[key] != victim:
                assert ring.lookup(key)[0] == before[key]
            else:
                assert ring.lookup(key)[0] != victim

    def test_add_remove_round_trips(self):
        ring = HashRing(_nodes(7, 4), vnodes=VNODES)
        keys = _keys(7, 400)
        before = [ring.lookup(key, n=2) for key in keys]
        ring.add("transient")
        ring.remove("transient")
        assert [ring.lookup(key, n=2) for key in keys] == before


_SUBPROCESS_SNIPPET = """
import json, sys
from repro.serve import HashRing
ring = HashRing([f"shard-{i:02d}" for i in range(5)], vnodes=64)
routes = {key: ring.lookup((key, "deadbeef"), n=3)
           for key in [f"model-{j}" for j in range(40)]}
print(json.dumps(routes, sort_keys=True))
"""


class TestProcessDeterminism:
    def _routes_with_hashseed(self, seed: str) -> dict:
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET], env=env,
            capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        return json.loads(out.stdout)

    def test_routes_identical_across_hash_seeds(self):
        """Two interpreters with different PYTHONHASHSEED — two 'hosts'
        of a simulated fleet — must agree on every replica set."""
        a = self._routes_with_hashseed("0")
        b = self._routes_with_hashseed("4242")
        assert a == b
        # And both agree with this process.
        ring = HashRing([f"shard-{i:02d}" for i in range(5)], vnodes=64)
        for key, replicas in a.items():
            assert ring.lookup((key, "deadbeef"), n=3) == replicas
