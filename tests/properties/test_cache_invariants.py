"""Randomized-op invariant tests for the serving cache and buffer pool.

Unit tests pin single behaviors; these machines drive :class:`LRUCache`
(memory + budgeted disk-spill tiers) and :class:`BufferPool` through
~1k random operations per seed and re-check the structural invariants
after *every* op — the byte bounds, accounting identities and aliasing
rules the concurrent server leans on.  Failures print the seed and op
index, so any counterexample replays deterministically.
"""

import numpy as np
import pytest

from repro.backend import BufferPool
from repro.serve import LRUCache

SEEDS = [0, 1, 2, 3, 4]
N_OPS = 1000

MEM_BUDGET = 4 * 1024
SPILL_BUDGET = 12 * 1024


def _value(rng: np.random.Generator) -> np.ndarray:
    # Sizes straddle both budgets: most entries fit, some are too big
    # for memory, a few too big even for the spill tier.
    side = int(rng.choice([2, 4, 8, 16, 24, 40, 64]))
    return rng.standard_normal((side, side)).astype(np.float32)


def _check_cache(cache: LRUCache, ctx: str) -> None:
    """Structural invariants that must hold after every operation."""
    with cache._lock:
        entry_bytes = sum(v.nbytes for v in cache._entries.values())
        assert cache.stats.bytes_cached == entry_bytes, ctx
        assert cache.stats.entries == len(cache._entries), ctx
        assert cache.stats.bytes_cached <= cache.max_bytes, \
            f"{ctx}: memory budget exceeded"
        for v in cache._entries.values():
            assert not v.flags.writeable, f"{ctx}: mutable cached entry"
    if cache.spill_dir is not None:
        disk = sum(p.stat().st_size
                   for p in cache.spill_dir.glob("*.npz"))
        assert cache.stats.spill_bytes == disk, \
            f"{ctx}: spill accounting drifted from the directory"
        if cache.spill_max_bytes is not None:
            assert disk <= cache.spill_max_bytes, \
                f"{ctx}: spill budget exceeded"


@pytest.mark.parametrize("seed", SEEDS)
def test_lru_cache_invariants_under_random_ops(seed, tmp_path):
    rng = np.random.default_rng(seed)
    keys = [(f"v{v}", i) for v in (1, 2) for i in range(8)]
    make = lambda: LRUCache(max_bytes=MEM_BUDGET, spill_dir=tmp_path,
                            spill_max_bytes=SPILL_BUDGET)
    cache = make()
    # Every value ever put per key.  The memory tier serves the *last*
    # put, but the disk tier is first-write-wins (a re-put of an
    # existing file only refreshes recency — by design: keys are
    # content-addressed up to ω quantization, so all values of one key
    # agree within tolerance), so a get may legitimately surface any
    # previously put value — just never a perturbed or foreign one.
    model: dict[tuple, list[np.ndarray]] = {}

    for step in range(N_OPS):
        ctx = f"seed={seed} step={step}"
        op = rng.choice(["put", "get", "clear", "prune", "restart"],
                        p=[0.42, 0.42, 0.06, 0.05, 0.05])
        key = keys[int(rng.integers(len(keys)))]
        if op == "put":
            value = _value(rng)
            stored = cache.put(key, value)
            if stored is not None:
                assert not stored.flags.writeable, ctx
                np.testing.assert_array_equal(stored, value, err_msg=ctx)
            model.setdefault(key, []).append(value.copy())
        elif op == "get":
            got = cache.get(key)
            # Either tier may have evicted (or prune/restart dropped it),
            # but a served value must be bit-exact against some put for
            # this key — in particular the spill round-trip through npz
            # must not perturb a single bit.
            if got is not None:
                assert key in model, f"{ctx}: value appeared from nowhere"
                assert any(v.dtype == got.dtype and np.array_equal(got, v)
                           for v in model[key]), \
                    f"{ctx}: served value matches no put for this key"
                assert not got.flags.writeable, ctx
        elif op == "clear":
            cache.clear()
        elif op == "prune":
            # Keep one version alive; pruned keys may survive in memory
            # (prune is a disk-tier operation) but never serve stale data.
            live = f"v{int(rng.integers(1, 3))}"
            cache.prune_spill([live])
        else:  # restart: a fresh instance over the same directory
            cache = make()
        _check_cache(cache, ctx)


@pytest.mark.parametrize("seed", SEEDS)
def test_spill_round_trip_bit_exact_across_restart(seed, tmp_path):
    """Direct spill round-trip: what one instance writes, a cold one
    must reload bit-identically (float32 and float64 payloads)."""
    rng = np.random.default_rng(seed)
    writer = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path,
                      spill_max_bytes=1 << 20)
    values = {}
    for i in range(16):
        dtype = np.float64 if i % 2 else np.float32
        value = rng.standard_normal((9, 7)).astype(dtype)
        values[("v1", i)] = value
        writer.put(("v1", i), value)
    reader = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path,
                      spill_max_bytes=1 << 20)
    for key, value in values.items():
        got = reader.get(key)
        assert got is not None and got.dtype == value.dtype
        np.testing.assert_array_equal(got, value)
    assert reader.stats.spill_hits == len(values)


POOL_BUDGET = 64 * 1024
POOL_SHAPES = [(8,), (16, 16), (32, 32), (7, 9), (64, 64)]


def _check_pool(pool: BufferPool, high_water_before: int, ctx: str) -> None:
    with pool._lock:
        free_bytes = sum(a.nbytes for bucket in pool._free.values()
                         for a in bucket)
        assert pool.stats.bytes_pooled == free_bytes, ctx
        assert pool.stats.bytes_pooled <= pool.max_bytes, \
            f"{ctx}: pool budget exceeded"
        assert pool.stats.high_water_bytes >= high_water_before, \
            f"{ctx}: high-water mark went backwards"
        assert pool.stats.high_water_bytes >= pool.stats.bytes_pooled, ctx


@pytest.mark.parametrize("seed", SEEDS)
def test_buffer_pool_invariants_under_random_ops(seed):
    rng = np.random.default_rng(seed)
    pool = BufferPool(max_bytes=POOL_BUDGET)
    leased: dict[int, np.ndarray] = {}      # id -> live buffer we hold

    for step in range(N_OPS):
        ctx = f"seed={seed} step={step}"
        high_water = pool.stats.high_water_bytes
        op = rng.choice(["acquire", "release", "zeros", "clear"],
                        p=[0.45, 0.40, 0.10, 0.05])
        if op in ("acquire", "zeros"):
            shape = POOL_SHAPES[int(rng.integers(len(POOL_SHAPES)))]
            dtype = np.float32 if rng.integers(2) else np.float64
            arr = (pool.zeros(shape, dtype) if op == "zeros"
                   else pool.acquire(shape, dtype))
            assert arr.shape == tuple(shape) and arr.dtype == dtype, ctx
            if op == "zeros":
                assert not arr.any(), ctx
            # No double-lease: the pool must never hand out memory that
            # is still leased.  Holding every leased array keeps its id
            # stable, so an id collision here is a real aliasing bug.
            assert id(arr) not in leased, f"{ctx}: double-leased buffer"
            arr.fill(step)          # dirty it: the next lessee must cope
            leased[id(arr)] = arr
        elif op == "release" and leased:
            key = list(leased)[int(rng.integers(len(leased)))]
            pool.release(leased.pop(key))
        elif op == "clear":
            pool.clear()
        _check_pool(pool, high_water, ctx)

    # Conservation: every acquire was either a recycled hit or a miss.
    assert pool.stats.hits + pool.stats.misses > 0
    assert pool.stats.bytes_recycled >= 0


@pytest.mark.parametrize("seed", SEEDS)
def test_pool_never_hands_out_released_views(seed):
    """Releasing a view must evict it, not pool aliased memory."""
    rng = np.random.default_rng(seed)
    pool = BufferPool(max_bytes=POOL_BUDGET)
    base = pool.acquire((32, 32))
    evictions = pool.stats.evictions
    pool.release(base[:16])          # a view: not poolable
    assert pool.stats.evictions == evictions + 1
    fresh = pool.acquire((16, 32))
    assert fresh.base is None
    assert not np.shares_memory(fresh, base)
