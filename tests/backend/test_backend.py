"""Unit tests for the array-backend layer: registry round-trips, the op
dispatcher, the dtype policy and the pooled buffer allocator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend, BackendOpError, BufferPool, NumpyBackend,
    available_backends, dtype_scope, get_backend, get_default_dtype,
    get_pool, ops, register_backend, set_backend, set_default_dtype,
    use_backend,
)


class TestRegistry:
    def test_numpy_round_trip(self):
        backend = set_backend("numpy")
        assert backend.name == "numpy"
        assert get_backend() is backend
        assert "numpy" in available_backends()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("does-not-exist")

    def test_register_and_activate_custom(self):
        class StubBackend(NumpyBackend):
            name = "stub"

        stub = StubBackend()
        register_backend("stub", stub)
        try:
            with use_backend("stub") as active:
                assert active is stub
                assert get_backend() is stub
            assert get_backend().name == "numpy"
        finally:
            set_backend("numpy")

    def test_factory_registration_memoizes(self):
        created = []

        def factory():
            b = NumpyBackend()
            created.append(b)
            return b

        register_backend("factory-made", factory)
        try:
            with use_backend("factory-made") as first:
                pass
            with use_backend("factory-made") as second:
                pass
            assert first is second
            assert len(created) == 1
        finally:
            set_backend("numpy")


class TestOpDispatch:
    def test_dispatcher_resolves_active_backend(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(ops.matmul(a, b), a @ b)
        np.testing.assert_allclose(
            ops.tensordot(a, b, axes=([1], [0])), np.tensordot(a, b, axes=1))

    def test_missing_op_raises_backend_error(self):
        backend = get_backend()
        with pytest.raises(BackendOpError, match="does not implement"):
            backend.op("definitely_not_an_op")

    def test_subclass_override_is_local(self):
        class Child(NumpyBackend):
            name = "child"

        sentinel = object()
        Child.register_op("tensordot", lambda *a, **k: sentinel)
        child = Child()
        assert child.op("tensordot")(None, None) is sentinel
        # Parent table untouched.
        assert NumpyBackend().op("tensordot") is not child.op("tensordot")

    def test_attribute_access_resolves_ops(self):
        backend = get_backend()
        assert backend.exp is backend.op("exp")
        with pytest.raises(AttributeError):
            backend.nonexistent_op

    def test_scatter_add(self):
        out = np.zeros(4)
        ops.scatter_add(out, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_allclose(out, [3.0, 0.0, 5.0, 0.0])


class TestDtypePolicy:
    def test_default_is_float32(self):
        assert get_default_dtype() is np.float32

    def test_set_and_restore(self):
        set_default_dtype("float64")
        try:
            assert get_default_dtype() is np.float64
            from repro.autograd import Tensor
            assert Tensor([1.0, 2.0]).dtype == np.float64
        finally:
            set_default_dtype(np.float32)

    def test_scope_restores_on_exit(self):
        with dtype_scope(np.float64):
            assert get_default_dtype() is np.float64
            with dtype_scope("float32"):
                assert get_default_dtype() is np.float32
            assert get_default_dtype() is np.float64
        assert get_default_dtype() is np.float32

    def test_rejects_non_float(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_dtype(np.int64)

    def test_autograd_reexports_policy(self):
        from repro.autograd import get_default_dtype as ag_get
        assert ag_get() is get_default_dtype()


class TestBufferPool:
    def test_acquire_release_reuses_memory(self):
        pool = BufferPool()
        a = pool.acquire((16, 16), np.float64)
        ptr = a.ctypes.data
        pool.release(a)
        b = pool.acquire((16, 16), np.float64)
        assert b.ctypes.data == ptr
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_shape_and_dtype_key_separation(self):
        pool = BufferPool()
        a = pool.acquire((8,), np.float32)
        pool.release(a)
        b = pool.acquire((8,), np.float64)
        assert b.dtype == np.float64
        assert pool.stats.hits == 0  # different dtype bucket

    def test_zeros_is_zero_filled_even_on_reuse(self):
        pool = BufferPool()
        a = pool.acquire((4,), np.float32)
        a[:] = 7.0
        pool.release(a)
        z = pool.zeros((4,), np.float32)
        np.testing.assert_array_equal(z, 0.0)

    def test_views_are_never_pooled(self):
        pool = BufferPool()
        base = pool.acquire((10,), np.float32)
        pool.release(base[2:6])
        assert pool.stats.evictions == 1
        assert pool.stats.bytes_pooled == 0

    def test_capacity_bound(self):
        pool = BufferPool(max_bytes=64)
        small = pool.acquire((4,), np.float32)   # 16 bytes
        big = pool.acquire((100,), np.float64)   # 800 bytes > cap
        pool.release(small)
        pool.release(big)
        assert pool.stats.bytes_pooled == 16
        assert pool.stats.evictions == 1

    def test_disabled_pool_always_allocates(self):
        pool = BufferPool(enabled=False)
        a = pool.acquire((4,), np.float32)
        pool.release(a)
        b = pool.acquire((4,), np.float32)
        assert b.ctypes.data != a.ctypes.data or a is not b
        assert pool.stats.hits == 0

    def test_clear_drops_buffers(self):
        pool = BufferPool()
        pool.release(pool.acquire((32,), np.float32))
        assert pool.stats.bytes_pooled > 0
        pool.clear()
        assert pool.stats.bytes_pooled == 0

    def test_backend_owns_a_pool(self):
        assert isinstance(get_pool(), BufferPool)
        assert get_pool() is get_backend().pool


class TestRingAllreduceUsesPool:
    def test_ring_allreduce_pool_reuse(self):
        from repro.distributed.ring import ring_allreduce

        pool = get_pool()
        bufs = [np.full(1000, float(r)) for r in range(4)]
        ring_allreduce(bufs)
        hits_before = pool.stats.hits
        reduced, _ = ring_allreduce(bufs)
        # Second identical call reuses the four pooled work buffers.
        assert pool.stats.hits >= hits_before + 4
        np.testing.assert_allclose(reduced[0], np.full(1000, 6.0))


class TestBackendThroughStack:
    """Smoke: a training step works identically via the backend seam."""

    def test_conv_module_matches_direct_numpy(self):
        from repro.autograd import Tensor
        from repro.nn.conv import Conv2d

        rng = np.random.default_rng(0)
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=7)
        x = rng.standard_normal((2, 3, 12, 12)).astype(np.float32)
        with use_backend("numpy"):
            y = layer(Tensor(x))
        assert y.shape == (2, 8, 12, 12)
        assert np.isfinite(y.data).all()
