"""ThreadedBackend: semantic parity with the NumPy reference backend."""

import numpy as np
import pytest

from repro.backend import (
    ThreadedBackend, available_backends, ops as B, use_backend,
)
from repro.backend.threaded import _MIN_BYTES

RNG = np.random.default_rng(5)


def _big(*shape):
    """Operand comfortably above the threading threshold."""
    a = RNG.standard_normal(shape)
    assert a.nbytes >= _MIN_BYTES // 2
    return a


class TestRegistration:
    def test_registered_by_name(self):
        assert "threaded" in available_backends()

    def test_inherits_numpy_ops(self):
        backend = ThreadedBackend()
        assert backend.has_op("conv is not an op") is False
        assert backend.has_op("exp") and backend.has_op("pad")

    def test_dispatcher_switches(self):
        with use_backend("threaded"):
            x = RNG.standard_normal((4, 4))
            np.testing.assert_allclose(B.exp(x), np.exp(x))


class TestTensordotParity:
    def test_batched_contraction_splits(self):
        a, b = _big(16, 64, 300), RNG.standard_normal((300, 32))
        with use_backend("threaded"):
            got = B.tensordot(a, b, axes=([2], [0]))
        np.testing.assert_allclose(got, np.tensordot(a, b, axes=([2], [0])),
                                   atol=1e-10)

    def test_integer_axes_form(self):
        a, b = _big(16, 64, 300), RNG.standard_normal((300, 32))
        with use_backend("threaded"):
            np.testing.assert_allclose(B.tensordot(a, b, axes=1),
                                       np.tensordot(a, b, axes=1), atol=1e-10)

    def test_negative_axes(self):
        a, b = _big(16, 64, 300), RNG.standard_normal((300, 32))
        with use_backend("threaded"):
            np.testing.assert_allclose(
                B.tensordot(a, b, axes=([-1], [0])),
                np.tensordot(a, b, axes=([-1], [0])), atol=1e-10)

    def test_contraction_over_axis0_falls_back(self):
        a, c = _big(16, 64, 300), RNG.standard_normal((16, 64))
        with use_backend("threaded"):
            np.testing.assert_allclose(
                B.tensordot(a, c, axes=([0, 1], [0, 1])),
                np.tensordot(a, c, axes=([0, 1], [0, 1])), atol=1e-10)

    def test_small_operands_fall_back(self):
        a, b = RNG.standard_normal((3, 4, 5)), RNG.standard_normal((5, 2))
        with use_backend("threaded"):
            np.testing.assert_allclose(
                B.tensordot(a, b, axes=([2], [0])),
                np.tensordot(a, b, axes=([2], [0])))


class TestMatmulParity:
    def test_stacked_matmul_splits(self):
        a, b = _big(32, 80, 80), _big(32, 80, 80)
        with use_backend("threaded"):
            np.testing.assert_allclose(B.matmul(a, b), np.matmul(a, b),
                                       atol=1e-10)

    def test_broadcast_rhs(self):
        a, b = _big(32, 80, 80), RNG.standard_normal((80, 80))
        with use_backend("threaded"):
            np.testing.assert_allclose(B.matmul(a, b), np.matmul(a, b),
                                       atol=1e-10)

    def test_rhs_with_extra_batch_dims_falls_back(self):
        # b.ndim > a.ndim: the result's leading axes come from b, so
        # splitting a's axis 0 would be wrong — must fall back.
        a, b = _big(4, 256, 256), _big(4, 4, 256, 256)
        with use_backend("threaded"):
            np.testing.assert_allclose(B.matmul(a, b), np.matmul(a, b),
                                       atol=1e-10)
        a2, b2 = _big(4, 256, 256), RNG.standard_normal((1, 4, 256, 256))
        with use_backend("threaded"):
            got = B.matmul(a2, b2)
        assert got.shape == np.matmul(a2, b2).shape == (1, 4, 256, 256)

    def test_rhs_with_fewer_batch_dims_splits_correctly(self):
        a, b = _big(6, 5, 128, 128), _big(5, 128, 128)
        with use_backend("threaded"):
            np.testing.assert_allclose(B.matmul(a, b), np.matmul(a, b),
                                       atol=1e-10)

    def test_2d_matmul_falls_back(self):
        a, b = RNG.standard_normal((64, 64)), RNG.standard_normal((64, 64))
        with use_backend("threaded"):
            np.testing.assert_allclose(B.matmul(a, b), np.matmul(a, b))


class TestEinsumParity:
    @pytest.mark.parametrize("spec,shapes", [
        ("bij,bjk->bik", [(32, 80, 80), (32, 80, 80)]),
        ("bij,jk->bik", [(32, 80, 80), (80, 80)]),
        ("bchw,c->bhw", [(16, 8, 64, 64), (8,)]),
    ])
    def test_batch_split(self, spec, shapes):
        operands = [RNG.standard_normal(s) for s in shapes]
        with use_backend("threaded"):
            np.testing.assert_allclose(B.einsum(spec, *operands),
                                       np.einsum(spec, *operands),
                                       atol=1e-10)

    @pytest.mark.parametrize("spec,shapes", [
        ("ij,jk", [(64, 64), (64, 64)]),        # implicit output
        ("...ij,jk->...ik", [(4, 64, 64), (64, 64)]),  # ellipsis
        ("ii->i", [(64, 64)]),                  # repeated subscript
        ("ij,jk->k", [(64, 64), (64, 64)]),     # below size threshold
    ])
    def test_unsplittable_forms_fall_back(self, spec, shapes):
        operands = [RNG.standard_normal(s) for s in shapes]
        with use_backend("threaded"):
            np.testing.assert_allclose(B.einsum(spec, *operands),
                                       np.einsum(spec, *operands))


class TestEndToEnd:
    def test_inference_parity_with_numpy_backend(self):
        from repro import MGDiffNet, PoissonProblem2D
        from repro.core.inference import predict_batch

        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
        omegas = RNG.uniform(-3, 3, size=(4, 4))
        ref = predict_batch(model, problem, omegas)
        with use_backend("threaded"):
            got = predict_batch(model, problem, omegas)
        np.testing.assert_allclose(got, ref, atol=1e-6)
