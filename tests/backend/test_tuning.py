"""MeasurementCache: the shared measure-and-persist seam.

The conv autotuner and the JIT kernel index both sit on this class, so
its contracts are pinned once here: host partitioning, setdefault
persistence, restart survival, read-merge-write saves and the
invalidation hook.
"""

import json

import pytest

from repro.backend.tuning import MeasurementCache, host_fingerprint


@pytest.fixture
def cache(tmp_path):
    return MeasurementCache(tmp_path / "table.json")


class TestHostFingerprint:
    def test_stable_and_short(self):
        assert host_fingerprint() == host_fingerprint()
        assert len(host_fingerprint()) == 12


class TestMeasurementCache:
    def test_setdefault_inserts_and_persists(self, cache, tmp_path):
        rec = cache.setdefault("k", {"winner": "im2col"})
        assert rec == {"winner": "im2col"}
        data = json.loads((tmp_path / "table.json").read_text())
        assert data["hosts"][host_fingerprint()]["k"] == {"winner": "im2col"}

    def test_setdefault_keeps_existing(self, cache):
        cache.setdefault("k", {"winner": "a"})
        assert cache.setdefault("k", {"winner": "b"}) == {"winner": "a"}

    def test_survives_restart(self, cache):
        cache.setdefault("k", {"winner": "a"})
        cache.clear(memory_only=True)          # simulated process restart
        assert cache.get("k") == {"winner": "a"}

    def test_clear_removes_file(self, cache, tmp_path):
        cache.setdefault("k", {"winner": "a"})
        cache.clear()
        assert not (tmp_path / "table.json").exists()
        assert cache.get("k") is None

    def test_save_merges_foreign_hosts(self, cache, tmp_path):
        # Another machine's records must survive this host's save.
        (tmp_path / "table.json").write_text(json.dumps(
            {"version": 1, "hosts": {"deadbeef0000": {"x": {"w": 1}}}}))
        cache.setdefault("k", {"winner": "a"})
        data = json.loads((tmp_path / "table.json").read_text())
        assert data["hosts"]["deadbeef0000"] == {"x": {"w": 1}}
        assert data["hosts"][host_fingerprint()]["k"] == {"winner": "a"}

    def test_corrupt_file_treated_as_empty(self, cache, tmp_path):
        (tmp_path / "table.json").write_text("{oops")
        assert cache.get("k") is None
        cache.setdefault("k", {"winner": "a"})
        assert cache.get("k") == {"winner": "a"}

    def test_set_path_switches_tables(self, cache, tmp_path):
        cache.setdefault("k", {"winner": "a"})
        cache.set_path(tmp_path / "other.json")
        assert cache.get("k") is None
        cache.setdefault("k", {"winner": "b"})
        cache.set_path(tmp_path / "table.json")
        assert cache.get("k") == {"winner": "a"}

    def test_env_var_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TUNING", str(tmp_path / "env.json"))
        c = MeasurementCache(tmp_path / "default.json",
                             env_var="REPRO_TEST_TUNING")
        c.setdefault("k", {"winner": "a"})
        assert (tmp_path / "env.json").exists()
        assert not (tmp_path / "default.json").exists()

    def test_on_invalidate_fires(self, tmp_path):
        calls = []
        c = MeasurementCache(tmp_path / "t.json",
                             on_invalidate=lambda: calls.append(1))
        c.set_path(tmp_path / "u.json")
        c.clear()
        assert len(calls) == 2

    def test_snapshot_is_a_copy(self, cache):
        cache.setdefault("k", {"winner": "a"})
        snap = cache.snapshot()
        snap["k"]["winner"] = "mutated"
        snap["extra"] = {}
        assert cache.get("k") is not None
        assert cache.get("extra") is None
