"""Lazy op-graph backend: equivalence, fusion, interop, JIT cache.

The lazy backend must be *invisible* numerically: every computation gives
the same answer as eager NumPy (bitwise where the op order is unchanged,
<= 1e-6 always).  Pinned here:

* **Equivalence** — elementwise/reduce chains, autograd training steps,
  gradcheck, the GMG V-cycle and tiled inference all match eager.
* **Fusion** — the damped-Jacobi update chain collapses into a single
  cluster; identical graphs produce identical kernel signatures, also
  across processes (the determinism the on-disk kernel cache relies on).
* **Interop** — LazyArray mixes with raw ndarrays through the ufunc
  protocol (``ndarray += lazy``, ``np.matmul``), and mutation is a
  barrier.
* **JIT cache round-trip** — with a C compiler, a second process reuses
  compiled kernels from ``REPRO_JIT_CACHE`` without invoking the
  compiler again (asserted by counting compiler invocations); without
  one, the interpreter serves every cluster.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    is_lazy, lazy_stats, realize, reset_lazy_stats, set_backend, use_backend,
)
from repro.backend.lazy import jit_enabled

SRC = str(Path("src").resolve())


@pytest.fixture(autouse=True)
def _eager_after():
    yield
    set_backend("numpy")


def _chain(x, omega, inv_d, r, interior):
    return x + omega * inv_d * r * interior


class TestEquivalence:
    def test_elementwise_chain_bitwise(self):
        rng = np.random.default_rng(0)
        x, r = rng.standard_normal(512), rng.standard_normal(512)
        inv_d = rng.uniform(0.5, 2.0, 512)
        mask = (np.arange(512) % 3 != 0).astype(np.float64)
        eager = _chain(x, 2 / 3, inv_d, r, mask)
        with use_backend("lazy"):
            from repro.backend import ops as B
            lazy = realize(_chain(B.asarray(x), 2 / 3, B.asarray(inv_d) * 1.0,
                                  B.asarray(r), B.asarray(mask)))
        np.testing.assert_array_equal(eager, np.asarray(lazy))

    def test_reduce_chain(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((64, 64))
        eager = np.exp(-np.abs(a)).sum()
        with use_backend("lazy"):
            from repro.backend import ops as B
            lazy = float(B.exp(-B.abs(B.asarray(a))).sum())
        assert abs(eager - lazy) <= 1e-9 * abs(eager)

    def test_integer_sum_promotes_like_eager(self):
        # Regression: the recorded sum dtype once mirrored the input
        # dtype, so an int8 sum was computed promoted and then astyped
        # back down — silent overflow (500 -> -12).
        with use_backend("lazy"):
            from repro.backend import ops as B
            for dt in (np.int8, np.int16, np.uint8, np.bool_):
                vals = np.array([100, 100, 100, 100, 100]).astype(dt)
                eager = vals.sum()
                lazy = np.asarray(realize(B.asarray(vals).sum()))
                assert lazy.dtype == eager.dtype
                assert lazy == eager
            f32 = np.ones(7, dtype=np.float32)
            assert np.asarray(
                realize(B.asarray(f32).sum())).dtype == np.float32

    def test_reduce_axis_empty_tuple_is_identity(self):
        # Regression: axis=() was collapsed to a full reduction by an
        # `axis or None`; eager NumPy treats it as the identity.
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        with use_backend("lazy"):
            from repro.backend import ops as B
            out = np.asarray(realize(B.asarray(a).sum(axis=())))
        np.testing.assert_array_equal(out, np.sum(a, axis=()))

    def test_reduce_max_min_propagate_nan(self):
        # Regression: the C reduce kernels skipped NaN ('v > acc'), so
        # fused max/min silently masked NaN whenever a compiler existed.
        n = 1 << 14
        rng = np.random.default_rng(3)
        base = rng.standard_normal(n)
        base[n // 2] = np.nan
        with use_backend("lazy"):
            from repro.backend import ops as B
            reset_lazy_stats()
            hi = np.asarray(realize(B.abs(B.asarray(base)).max()))
            lo = np.asarray(realize(B.abs(B.asarray(base)).min()))
            stats = lazy_stats()
        assert np.isnan(hi) and np.isnan(lo)
        if jit_enabled():
            # NaN must survive the compiled path, not just the
            # interpreter fallback.
            assert stats["jit_runs"] == 2

    def test_autograd_training_step(self):
        from repro.autograd import Tensor

        def step():
            rng = np.random.default_rng(7)
            x = Tensor(rng.standard_normal((16, 8)), requires_grad=True)
            w = Tensor(rng.standard_normal((8, 4)), requires_grad=True)
            y = (x @ w).tanh()
            loss = (y * y).mean()
            loss.backward()
            return loss.numpy(), x.grad.copy(), w.grad.copy()

        set_backend("numpy")
        le, xe, we = step()
        set_backend("lazy")
        ll, xl, wl = step()
        np.testing.assert_array_equal(le, ll)
        np.testing.assert_array_equal(xe, np.asarray(xl))
        np.testing.assert_array_equal(we, np.asarray(wl))

    def test_gradcheck_under_lazy(self):
        from repro.autograd import Tensor, gradcheck

        set_backend("lazy")
        rng = np.random.default_rng(3)
        a = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        gradcheck(lambda a, b: ((a * b).tanh() + a.exp()).sum(), (a, b))

    def test_gmg_vcycle_identical(self):
        from repro.fem import GeometricMultigrid, UniformGrid, canonical_bc

        grid = UniformGrid(2, 17)
        rng = np.random.default_rng(5)
        nu = np.exp(0.3 * rng.standard_normal(grid.shape))
        bc = canonical_bc(grid)
        f = np.ones(grid.shape)

        def solve():
            gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
            u = gmg.solve(f, tol=1e-9)
            return np.asarray(realize(u)), gmg.last_report.iterations

        set_backend("numpy")
        ue, ite = solve()
        set_backend("lazy")
        ul, itl = solve()
        assert ite == itl
        np.testing.assert_array_equal(ue, ul)

    def test_tiled_predict_matches_eager(self):
        from repro import MGDiffNet, PoissonProblem2D
        from repro.core.inference import predict_batch
        from repro.serve.tiling import tiled_predict

        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=2)
        problem = PoissonProblem2D(16)
        om = np.linspace(0.2, 0.8, 8).reshape(2, 4)

        set_backend("numpy")
        eager = predict_batch(model, problem, om)
        set_backend("lazy")
        lazy_full = predict_batch(model, problem, om)
        lazy_tiled = tiled_predict(model, problem, om, tile=8)
        np.testing.assert_array_equal(eager, lazy_full)
        np.testing.assert_allclose(eager, lazy_tiled, atol=1e-6)
        assert not is_lazy(lazy_full)     # serve boundary realizes


class TestFusion:
    def test_smoother_chain_fuses_to_one_cluster(self):
        set_backend("lazy")
        from repro.backend import ops as B

        rng = np.random.default_rng(0)
        n = 8192
        x = B.asarray(rng.standard_normal(n))
        r = B.asarray(rng.standard_normal(n))
        diag = B.asarray(rng.uniform(1.0, 2.0, n))
        interior = B.asarray((np.arange(n) % 5 != 0).astype(np.float64))
        reset_lazy_stats()
        inv_d = B.where(diag != 0, 1.0 / diag, 0.0)
        y = realize(x + (2.0 / 3.0) * inv_d * r * interior)
        stats = lazy_stats()
        assert stats["clusters"] == 1
        assert stats["fused_ops"] >= 4
        assert y.shape == (n,)

    def test_same_graph_same_signature(self):
        set_backend("lazy")
        from repro.backend import ops as B

        def run(seed):
            rng = np.random.default_rng(seed)
            a = B.asarray(rng.standard_normal(256))
            b = B.asarray(rng.standard_normal(256))
            reset_lazy_stats()
            realize(B.exp(a) * b + 1.5)
            return lazy_stats()["recent_signatures"][-1]

        # Same structure, different values and different constants would
        # differ — the constant is a runtime argument, so it must not.
        assert run(0) == run(1)

    def test_signature_deterministic_across_processes(self):
        code = (
            "import sys, numpy as np\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.backend import ops as B, set_backend, realize, "
            "lazy_stats\n"
            "set_backend('lazy')\n"
            "rng = np.random.default_rng(0)\n"
            "a = B.asarray(rng.standard_normal(256))\n"
            "d = B.asarray(rng.uniform(1, 2, 256))\n"
            "realize(a + 0.66 * B.where(d != 0, 1.0 / d, 0.0) * a)\n"
            "print(lazy_stats()['recent_signatures'][-1])\n")
        sigs = set()
        for _ in range(2):
            r = subprocess.run([sys.executable, "-c", code],
                               capture_output=True, text=True, timeout=120)
            assert r.returncode == 0, r.stderr
            sigs.add(r.stdout.strip())
        assert len(sigs) == 1


class TestInterop:
    def test_inplace_add_into_ndarray(self):
        set_backend("lazy")
        from repro.backend import ops as B

        out = np.zeros(64)
        lazy = B.asarray(np.ones(64)) * 2.0
        out[:32] += np.asarray(realize(lazy))[:32]
        out[32:] += 1.0
        np.testing.assert_array_equal(out[:32], 2.0)
        # The ufunc-protocol path: ndarray += LazyArray directly.
        out2 = np.zeros(64)
        out2 += lazy
        np.testing.assert_array_equal(np.asarray(out2), 2.0)

    def test_matmul_mixes_with_ndarray(self):
        set_backend("lazy")
        from repro.backend import ops as B

        a = np.eye(4)
        lazy = B.asarray(np.arange(16.0).reshape(4, 4)) + 0.0
        np.testing.assert_array_equal(np.asarray(np.matmul(a, lazy)),
                                      np.arange(16.0).reshape(4, 4))

    def test_setitem_is_a_barrier(self):
        set_backend("lazy")
        from repro.backend import ops as B

        x = B.asarray(np.zeros(8)) + 1.0
        x[2:4] = 5.0
        got = np.asarray(realize(x))
        np.testing.assert_array_equal(got, [1, 1, 5, 5, 1, 1, 1, 1])


class TestInterpreterFallback:
    def test_interpreter_serves_without_jit(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_DISABLE", "1")
        set_backend("lazy")
        from repro.backend import ops as B

        rng = np.random.default_rng(0)
        a = B.asarray(rng.standard_normal(8192))
        reset_lazy_stats()
        y = realize(B.tanh(a) * 2.0 + 1.0)
        stats = lazy_stats()
        assert stats["interpreted_runs"] == 1
        assert stats["jit_runs"] == 0
        np.testing.assert_array_equal(
            np.asarray(y), np.tanh(np.asarray(realize(a))) * 2.0 + 1.0)


_JIT_CHILD = (
    "import sys, json, numpy as np\n"
    "sys.path.insert(0, {src!r})\n"
    "from repro.backend import ops as B, set_backend, realize, lazy_stats\n"
    "set_backend('lazy')\n"
    "rng = np.random.default_rng(0)\n"
    "n = 1 << 14\n"
    "x = B.asarray(rng.standard_normal(n))\n"
    "d = B.asarray(rng.uniform(1, 2, n))\n"
    "m = B.asarray((np.arange(n) % 5 != 0).astype(np.float64))\n"
    "y = realize(x + 0.66 * B.where(d != 0, 1.0 / d, 0.0) * x * m)\n"
    "s = lazy_stats()\n"
    "print(json.dumps({{k: s[k] for k in ('compiles', 'kernel_loads',"
    " 'kernel_hits', 'jit_runs', 'interpreted_runs')}}))\n")


@pytest.mark.skipif(not jit_enabled(), reason="no C compiler on host")
class TestJitCache:
    def _run_child(self, cache_dir):
        env = dict(os.environ, REPRO_JIT_CACHE=str(cache_dir))
        env.pop("REPRO_JIT_DISABLE", None)
        r = subprocess.run([sys.executable, "-c",
                            _JIT_CHILD.format(src=SRC)],
                           capture_output=True, text=True, timeout=300,
                           env=env)
        assert r.returncode == 0, r.stderr
        return json.loads(r.stdout.strip())

    def test_second_process_reuses_kernels(self, tmp_path):
        first = self._run_child(tmp_path)
        assert first["compiles"] >= 1
        assert first["jit_runs"] >= 1
        second = self._run_child(tmp_path)
        # The round-trip contract: no compiler invocation, kernels come
        # off disk.
        assert second["compiles"] == 0
        assert second["kernel_loads"] >= 1
        assert second["jit_runs"] >= 1

    def test_jit_and_interpreter_agree(self):
        set_backend("lazy")
        from repro.backend import ops as B

        rng = np.random.default_rng(0)
        n = 1 << 14
        xs = rng.standard_normal(n)
        ds = rng.uniform(1, 2, n)

        def run():
            x, d = B.asarray(xs), B.asarray(ds)
            reset_lazy_stats()
            y = realize(x + 0.66 * B.where(d != 0, 1.0 / d, 0.0) * x)
            return np.asarray(y), lazy_stats()

        jit_y, jit_stats = run()
        os.environ["REPRO_JIT_DISABLE"] = "1"
        try:
            int_y, int_stats = run()
        finally:
            del os.environ["REPRO_JIT_DISABLE"]
        assert jit_stats["jit_runs"] == 1
        assert int_stats["interpreted_runs"] == 1
        np.testing.assert_allclose(jit_y, int_y, atol=1e-12, rtol=1e-12)


class TestFleetStormUnderLazy:
    def test_storm_conserves_and_matches_eager(self):
        import threading

        from repro import MGDiffNet, PoissonProblem2D
        from repro.core.inference import predict_batch
        from repro.serve import FleetConfig, ServerConfig, ShardedFleet

        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
        problem = PoissonProblem2D(16)
        fleet = ShardedFleet(FleetConfig(
            shards=2, replicas=2,
            server=ServerConfig(max_batch=4, max_wait_ms=0.5, workers=1,
                                cache_bytes=0, backend="lazy",
                                executor="thread")))
        try:
            fleet.register_model("m", model, problem)
            futures, lock = [], threading.Lock()

            def client(cid):
                rng = np.random.default_rng(100 + cid)
                for _ in range(8):
                    om = rng.uniform(-3, 3, 4)
                    f = fleet.submit("m", om, priority=int(rng.integers(4)))
                    with lock:
                        futures.append((om, f))

            threads = [threading.Thread(target=client, args=(c,))
                       for c in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive()
            for om, f in futures:
                got = f.result(timeout=60)
                assert not is_lazy(got)
                want = predict_batch(model, problem, om)[0]
                np.testing.assert_allclose(got, want, atol=1e-6)
            stats = fleet.stats
            assert stats.lost == 0
            assert stats.served == len(futures)
        finally:
            fleet.close()
