"""Measured conv autotuning: determinism, persistence, fallbacks."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.backend.conv_plan as cp
from repro.backend import (
    autotune_cache_path, autotune_table, clear_autotune_table,
    clear_plan_cache, host_fingerprint, plan_conv, set_autotune_cache_path,
    set_conv_plan_mode,
)

SIG = dict(x_shape=(2, 8, 16, 16), w_shape=(8, 8, 3, 3),
           stride=(1, 1), padding=(1, 1), dtype=np.float32)


@pytest.fixture
def autotune_env(tmp_path):
    """Isolated autotune table + mode, restored afterwards."""
    set_autotune_cache_path(tmp_path / "tune.json")
    set_conv_plan_mode("autotune")
    clear_plan_cache()
    yield tmp_path / "tune.json"
    set_conv_plan_mode("auto")
    set_autotune_cache_path(None)
    clear_plan_cache()


def _plan():
    return plan_conv(SIG["x_shape"], SIG["w_shape"], SIG["stride"],
                     SIG["padding"], SIG["dtype"])


class TestMeasurement:
    def test_measured_decision_and_reason(self, autotune_env):
        plan = _plan()
        assert plan.path in ("im2col", "tensordot")
        assert plan.backward_path in ("im2col", "tensordot")
        assert "autotuned" in plan.reason

    def test_table_persisted_under_host_fingerprint(self, autotune_env):
        _plan()
        data = json.loads(autotune_env.read_text())
        assert host_fingerprint() in data["hosts"]
        (rec,) = data["hosts"][host_fingerprint()].values()
        assert rec["measured"] is True
        assert set(rec["times"]) == {"fwd_tensordot", "fwd_im2col",
                                     "bwd_tensordot", "bwd_im2col"}

    def test_second_plan_does_not_remeasure(self, autotune_env,
                                            monkeypatch):
        first = _plan()
        clear_plan_cache()
        monkeypatch.setattr(cp, "_time_engines", _boom)
        second = _plan()
        assert (second.path, second.backward_path) == \
            (first.path, first.backward_path)

    def test_winner_matches_recorded_times(self, autotune_env):
        plan = _plan()
        (rec,) = autotune_table().values()
        t = rec["times"]
        fwd = "im2col" if t["fwd_im2col"] < t["fwd_tensordot"] \
            else "tensordot"
        bwd = "im2col" if t["bwd_im2col"] < t["bwd_tensordot"] \
            else "tensordot"
        assert (plan.path, plan.backward_path) == (fwd, bwd)


def _boom(sig):
    raise AssertionError("signature was re-measured")


class TestPersistence:
    def test_table_survives_simulated_restart(self, autotune_env,
                                              monkeypatch):
        first = _plan()
        # Drop every in-memory trace; the persisted file must answer.
        clear_autotune_table(memory_only=True)
        monkeypatch.setattr(cp, "_time_engines", _boom)
        again = _plan()
        assert again.path == first.path
        assert again.backward_path == first.backward_path

    def test_table_survives_real_process_restart(self, tmp_path):
        table = tmp_path / "tune.json"
        snippet = (
            "import numpy as np\n"
            "from repro.backend import set_conv_plan_mode, plan_conv\n"
            "import repro.backend.conv_plan as cp\n"
            "set_conv_plan_mode('autotune')\n"
            "if %r:\n"
            "    cp._time_engines = lambda sig: (_ for _ in ())"
            ".throw(SystemExit('re-measured after restart'))\n"
            "p = plan_conv((2, 8, 16, 16), (8, 8, 3, 3), (1, 1), (1, 1),"
            " np.float32)\n"
            "print(p.path, p.backward_path)\n")
        env = {"REPRO_AUTOTUNE_CACHE": str(table), "PYTHONPATH": "src"}
        first = _run_snippet(snippet % False, env)
        assert table.exists()
        second = _run_snippet(snippet % True, env)
        assert first == second

    def test_set_path_switches_tables(self, autotune_env, tmp_path):
        _plan()
        assert len(autotune_table()) == 1
        set_autotune_cache_path(tmp_path / "other.json")
        assert autotune_table() == {}
        assert autotune_cache_path() == tmp_path / "other.json"

    def test_corrupt_table_ignored(self, autotune_env):
        autotune_env.write_text("{not json")
        plan = _plan()
        assert plan.path in ("im2col", "tensordot")
        # The rewrite repairs the file.
        json.loads(autotune_env.read_text())


def _run_snippet(code: str, env: dict) -> str:
    import os

    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env={**os.environ, **env}, cwd=Path(__file__).parents[2],
        timeout=300)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


class TestFallbacks:
    def test_1x1_kernel_not_measured(self, autotune_env, monkeypatch):
        monkeypatch.setattr(cp, "_time_engines", _boom)
        plan = plan_conv((2, 8, 16, 16), (4, 8, 1, 1), (1, 1), (0, 0),
                         np.float32)
        assert plan.path == "tensordot"
        assert "fallback" in plan.reason
        # Recorded anyway so restarts skip it too.
        assert len(autotune_table()) == 1

    def test_huge_signature_not_measured(self, autotune_env, monkeypatch):
        monkeypatch.setattr(cp, "_time_engines", _boom)
        plan = plan_conv((64, 64, 512, 512), (64, 64, 3, 3), (1, 1),
                         (1, 1), np.float32)
        assert plan.path in ("im2col", "tensordot")
        assert "fallback" in plan.reason

    def test_forced_modes_keep_single_path(self, autotune_env):
        set_conv_plan_mode("im2col")
        plan = _plan()
        assert plan.path == "im2col" and plan.backward_path is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            set_conv_plan_mode("fastest")


class TestParity:
    """Whatever the autotuner picks must stay numerically correct."""

    def test_forward_backward_parity_across_paths(self, autotune_env):
        from repro.autograd import Tensor, conv_nd
        from repro.autograd.gradcheck import gradcheck

        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True,
                   dtype=np.float64)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)) * 0.1,
                   requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda a, b: conv_nd(a, b, stride=1, padding=1),
                         (x, w))
