"""Guard: hot-path array math must go through the backend dispatcher.

Walks the AST of every module in the refactored layers (``autograd``,
``nn``, ``fem``, ``multigrid``, ``distributed``) and fails if any of them
touches a NumPy attribute outside the allowlist.  Constructors, dtype
checks and index bookkeeping are exempt — they are shape metadata, not
array math — but contractions, elementwise transcendentals, reductions
and shape-shuffling must dispatch through ``repro.backend.ops`` so an
alternative backend can intercept them.

This is the enforcement half of the backend seam: without it, a stray
``np.tensordot`` silently bypasses every future accelerated backend.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

GUARDED_PACKAGES = ("autograd", "nn", "fem", "multigrid", "distributed")

# NumPy attributes that are legitimate to call directly: array/dtype
# constructors, dtype predicates, index bookkeeping and the RNG namespace.
ALLOWED = {
    # constructors / conversion
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "asarray", "ascontiguousarray", "array",
    "arange", "linspace",
    # dtypes and dtype predicates
    "dtype", "float16", "float32", "float64", "int32", "int64", "bool_",
    "issubdtype", "floating", "integer", "ndarray", "generic", "isscalar",
    # scalar/index bookkeeping (shape metadata, not array math)
    "newaxis", "pi", "inf", "nan", "lcm", "indices", "meshgrid",
    "ravel_multi_index", "atleast_2d", "ndindex", "errstate",
    # namespaces that are setup-time, not hot-path
    "random", "polynomial", "testing",
}


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to the numpy package (``np``, ``numpy``)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "numpy" or a.name.startswith("numpy."):
                    aliases.add((a.asname or a.name).split(".")[0])
    return aliases


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    aliases = _numpy_aliases(tree)
    try:
        where = path.relative_to(SRC.parent)
    except ValueError:
        where = path
    bad = []
    for node in ast.walk(tree):
        # `from numpy import X` (or `from numpy.lib... import X`) binds a
        # bare name that would dodge attribute inspection — flag the
        # import itself unless every imported name is allowed.
        if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "numpy" or node.module.startswith("numpy.")):
            for a in node.names:
                if a.name not in ALLOWED:
                    bad.append(
                        f"{where}:{node.lineno}: from {node.module} "
                        f"import {a.name}")
            continue
        if not isinstance(node, ast.Attribute):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        if node.value.id not in aliases:
            continue
        if node.attr not in ALLOWED:
            bad.append(f"{where}:{node.lineno}: {node.value.id}.{node.attr}")
    return bad


def _guarded_files() -> list[Path]:
    files = []
    for pkg in GUARDED_PACKAGES:
        files.extend(sorted((SRC / pkg).glob("*.py")))
    assert files, "guarded source tree not found"
    return files


@pytest.mark.parametrize("path", _guarded_files(), ids=lambda p: p.stem)
def test_no_direct_numpy_math(path: Path) -> None:
    bad = _violations(path)
    assert not bad, (
        "direct NumPy math bypasses the backend dispatcher "
        "(route through `from repro.backend import ops as B`):\n  "
        + "\n  ".join(bad))


def test_guard_catches_violations(tmp_path: Path) -> None:
    """The guard itself must flag hot-path math (meta-test)."""
    mod = tmp_path / "bad.py"
    mod.write_text(
        "import numpy as np\n"
        "def f(a, b):\n"
        "    return np.tensordot(a, b, axes=1) + np.exp(a).sum()\n")
    bad = _violations(mod)
    assert len(bad) == 2
    assert any("tensordot" in v for v in bad)
    assert any("exp" in v for v in bad)


def test_guard_catches_bare_name_imports(tmp_path: Path) -> None:
    """``from numpy import tensordot`` must not dodge the guard."""
    mod = tmp_path / "sneaky.py"
    mod.write_text(
        "from numpy import tensordot, zeros\n"
        "from numpy.lib.stride_tricks import sliding_window_view\n"
        "def f(a, b):\n"
        "    return tensordot(sliding_window_view(a, 2, 0), b, axes=1)\n")
    bad = _violations(mod)
    # tensordot and sliding_window_view flagged; zeros is an allowed
    # constructor.
    assert len(bad) == 2
    assert any("import tensordot" in v for v in bad)
    assert any("import sliding_window_view" in v for v in bad)
