"""Output-scatter conv-transpose plan vs the composed reference path.

The scatter engine must be numerically interchangeable with the original
composition (zero-stuff, pad, flip, stride-1 conv) for every supported
(stride, padding, output_padding) combination, in forward and in every
gradient — that is what lets it be the default.  Also pinned: the plan
memoizes, the 'tap' path is chosen above the patch ceiling, and both
paths survive gradcheck.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, conv_transpose_nd, gradcheck
from repro.backend.conv_plan import (
    ConvTransposePlan, IM2COL_MAX_PATCH_BYTES, clear_plan_cache,
    get_conv_transpose_mode, plan_conv_transpose, set_conv_transpose_mode,
)


@pytest.fixture(autouse=True)
def _scatter_after():
    yield
    set_conv_transpose_mode("scatter")


def _both_modes(x, w, b, st, p, op):
    results = {}
    for mode in ("scatter", "compose"):
        set_conv_transpose_mode(mode)
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(b.copy(), requires_grad=True) if b is not None else None
        y = conv_transpose_nd(xt, wt, bt, stride=st, padding=p,
                              output_padding=op)
        (y * y).sum().backward()
        results[mode] = (y.numpy(), xt.grad.copy(), wt.grad.copy(),
                         bt.grad.copy() if bt is not None else None)
    return results


CASES = [
    # (nd, N, Cin, Cout, S, k, stride, padding, output_padding, bias)
    (1, 2, 3, 4, 9, 3, 2, 1, 1, True),
    (1, 1, 2, 2, 7, 4, 3, 2, 0, False),
    (2, 2, 3, 2, 6, 3, 2, 1, 1, True),
    (2, 1, 2, 3, 5, 2, 2, 0, 0, True),
    (2, 2, 2, 2, 5, 3, 1, 1, 0, False),
    (3, 1, 2, 2, 4, 2, 2, 0, 1, True),
    (3, 2, 1, 2, 3, 3, 1, 1, 0, True),
]


class TestScatterParity:
    @pytest.mark.parametrize("nd,N,ci,co,S,k,st,p,op,bias", CASES)
    def test_matches_composed_path(self, nd, N, ci, co, S, k, st, p, op,
                                   bias):
        rng = np.random.default_rng(nd * 100 + st * 10 + p)
        x = rng.standard_normal((N, ci) + (S,) * nd)
        w = rng.standard_normal((ci, co) + (k,) * nd)
        b = rng.standard_normal(co) if bias else None
        res = _both_modes(x, w, b, st, p, op)
        for name, s_val, c_val in zip(("y", "dx", "dw", "db"),
                                      res["scatter"], res["compose"]):
            if s_val is None:
                continue
            assert s_val.shape == c_val.shape, name
            np.testing.assert_allclose(s_val, c_val, atol=1e-10, rtol=1e-10,
                                       err_msg=name)

    def test_tap_path_matches_gemm_path(self, monkeypatch):
        # Force the thin per-tap engine by shrinking the patch ceiling.
        import repro.backend.conv_plan as cp

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        clear_plan_cache()
        gemm = _both_modes(x, w, None, 2, 1, 1)["scatter"]
        monkeypatch.setattr(cp, "IM2COL_MAX_PATCH_BYTES", 1)
        clear_plan_cache()
        plan = plan_conv_transpose(x.shape, w.shape, (2, 2), (1, 1), (1, 1),
                                   x.dtype)
        assert plan.path == "tap"
        tap = _both_modes(x, w, None, 2, 1, 1)["scatter"]
        clear_plan_cache()
        for g, t in zip(gemm[:3], tap[:3]):
            np.testing.assert_allclose(g, t, atol=1e-10, rtol=1e-10)


class TestScatterGradcheck:
    def test_gradcheck_strided_padded(self):
        set_conv_transpose_mode("scatter")
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        gradcheck(lambda x, w, b: conv_transpose_nd(
            x, w, b, stride=2, padding=1, output_padding=1), (x, w, b))

    def test_gradcheck_3d(self):
        set_conv_transpose_mode("scatter")
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((1, 2, 3, 3, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 2, 2, 2, 2)), requires_grad=True)
        gradcheck(lambda x, w: conv_transpose_nd(x, w, stride=2), (x, w))


class TestPlanning:
    def test_plan_memoized(self):
        clear_plan_cache()
        p1 = plan_conv_transpose((1, 2, 8, 8), (2, 3, 3, 3), (2, 2), (1, 1),
                                 (0, 0), np.float64)
        p2 = plan_conv_transpose((1, 2, 8, 8), (2, 3, 3, 3), (2, 2), (1, 1),
                                 (0, 0), np.float64)
        assert p1 is p2
        assert isinstance(p1, ConvTransposePlan)
        assert p1.path == "gemm"
        assert p1.reason

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            set_conv_transpose_mode("bogus")
        assert get_conv_transpose_mode() in ("scatter", "compose")

    def test_env_default_is_scatter(self):
        assert get_conv_transpose_mode() == "scatter"
