"""Planner tests: path selection heuristics, memoization, and numerical
parity between the tensordot and im2col execution engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.conv_plan import (
    IM2COL_MAX_PATCH_BYTES, ConvSignature, clear_plan_cache,
    get_conv_plan_mode, plan_cache_info, plan_conv, run_conv_forward,
    set_conv_plan_mode,
)


@pytest.fixture(autouse=True)
def _fresh_planner():
    clear_plan_cache()
    set_conv_plan_mode("auto")
    yield
    clear_plan_cache()
    set_conv_plan_mode("auto")


class TestPlanSelection:
    def test_small_kernel_large_channels_picks_im2col(self):
        # The U-Net trunk signature: 3^d kernel, wide channels.
        plan = plan_conv((2, 16, 16, 16), (32, 16, 3, 3), (1, 1), (1, 1),
                         np.float32)
        assert plan.path == "im2col"

    def test_3d_unet_signature_picks_im2col(self):
        plan = plan_conv((1, 8, 6, 6, 6), (16, 8, 3, 3, 3),
                         (1, 1, 1), (1, 1, 1), np.float32)
        assert plan.path == "im2col"

    def test_thin_gemm_rescue_allows_larger_patches(self):
        # Cin=2 per-offset GEMMs are (N*So, 2): pathologically thin, so
        # im2col wins even when the patch matrix exceeds cache.
        plan = plan_conv((4, 2, 128, 128), (8, 2, 3, 3), (1, 1), (1, 1),
                         np.float32)
        assert plan.path == "im2col"

    def test_non_resident_patch_with_wide_gemm_picks_tensordot(self):
        plan = plan_conv((4, 16, 64, 64), (8, 16, 3, 3), (1, 1), (1, 1),
                         np.float32)
        assert plan.path == "tensordot"
        assert "cache-resident" in plan.reason

    def test_pointwise_kernel_picks_tensordot(self):
        plan = plan_conv((2, 64, 16, 16), (32, 64, 1, 1), (1, 1), (0, 0),
                         np.float32)
        assert plan.path == "tensordot"

    def test_single_channel_small_work_picks_tensordot(self):
        # Cin=1 with a 2^d FEM stencil kernel: GEMM too thin for im2col.
        plan = plan_conv((4, 1, 33, 33), (8, 1, 2, 2), (1, 1), (0, 0),
                         np.float64)
        assert plan.path == "tensordot"

    def test_huge_patch_matrix_picks_tensordot(self):
        sig = ConvSignature((8, 64, 256, 256), (64, 64, 3, 3), (1, 1),
                            (1, 1), "<f8")
        assert sig.patch_bytes > IM2COL_MAX_PATCH_BYTES
        plan = plan_conv(sig.x_shape, sig.w_shape, sig.stride, sig.padding,
                         np.float64)
        assert plan.path == "tensordot"
        assert "patch matrix" in plan.reason

    def test_forced_modes(self):
        args = ((2, 1, 8, 8), (4, 1, 3, 3), (1, 1), (0, 0), np.float32)
        set_conv_plan_mode("im2col")
        assert plan_conv(*args).path == "im2col"
        set_conv_plan_mode("tensordot")
        assert plan_conv(*args).path == "tensordot"
        assert get_conv_plan_mode() == "tensordot"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            set_conv_plan_mode("winograd")


class TestMemoization:
    def test_plans_are_cached_per_signature(self):
        args = ((2, 8, 16, 16), (16, 8, 3, 3), (1, 1), (1, 1), np.float32)
        first = plan_conv(*args)
        second = plan_conv(*args)
        assert first is second
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_distinct_signatures_get_distinct_plans(self):
        plan_conv((2, 8, 16, 16), (16, 8, 3, 3), (1, 1), (1, 1), np.float32)
        plan_conv((2, 8, 16, 16), (16, 8, 3, 3), (2, 2), (1, 1), np.float32)
        assert plan_cache_info()["size"] == 2

    def test_mode_change_invalidates_lookup(self):
        args = ((2, 8, 16, 16), (16, 8, 3, 3), (1, 1), (1, 1), np.float32)
        auto_plan = plan_conv(*args)
        set_conv_plan_mode("tensordot")
        forced = plan_conv(*args)
        assert forced.path == "tensordot"
        assert forced is not auto_plan


class TestEngineParity:
    """Both engines must produce identical outputs on identical inputs."""

    CASES = [
        # (x_shape, w_shape, stride, padding)
        ((2, 3, 9, 9), (5, 3, 3, 3), (1, 1), (0, 0)),
        ((2, 3, 9, 9), (5, 3, 3, 3), (2, 2), (1, 1)),
        ((1, 4, 8, 8), (6, 4, 2, 2), (2, 2), (0, 0)),
        ((2, 2, 6, 6, 6), (4, 2, 3, 3, 3), (1, 1, 1), (1, 1, 1)),
        ((1, 3, 7, 7, 7), (2, 3, 2, 2, 2), (2, 2, 2), (0, 0, 0)),
        ((2, 4, 10, 8), (3, 4, 3, 2), (2, 1), (1, 0)),  # anisotropic
    ]

    @pytest.mark.parametrize("x_shape,w_shape,stride,padding", CASES)
    def test_forward_parity(self, x_shape, w_shape, stride, padding):
        rng = np.random.default_rng(42)
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        if any(padding):
            padw = ((0, 0), (0, 0)) + tuple((p, p) for p in padding)
            xp = np.pad(x, padw)
        else:
            xp = x
        out_spatial = tuple(
            (s - k) // st + 1
            for s, k, st in zip(xp.shape[2:], w_shape[2:], stride))

        set_conv_plan_mode("tensordot")
        ref = run_conv_forward(plan_conv(x_shape, w_shape, stride, padding,
                                         x.dtype), xp, w, stride, out_spatial)
        set_conv_plan_mode("im2col")
        fast = run_conv_forward(plan_conv(x_shape, w_shape, stride, padding,
                                          x.dtype), xp, w, stride, out_spatial)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-12)

    def test_im2col_uses_the_buffer_pool(self):
        from repro.backend import get_pool

        pool = get_pool()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 8, 12, 12)).astype(np.float32)
        w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        set_conv_plan_mode("im2col")
        plan = plan_conv(x.shape, w.shape, (1, 1), (0, 0), x.dtype)
        out_spatial = (10, 10)
        run_conv_forward(plan, x, w, (1, 1), out_spatial)
        hits_before = pool.stats.hits
        run_conv_forward(plan, x, w, (1, 1), out_spatial)
        assert pool.stats.hits > hits_before
