"""VTK writer/reader tests."""

import numpy as np
import pytest

from repro.utils.vtk import write_vti, read_vti


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRoundtrip:
    def test_2d_field(self, rng, tmp_path):
        u = rng.standard_normal((9, 9))
        path = write_vti(tmp_path / "u.vti", {"u": u})
        fields, spacing = read_vti(path)
        np.testing.assert_allclose(fields["u"], u, atol=1e-14)
        assert spacing == pytest.approx(1.0 / 8)

    def test_3d_field(self, rng, tmp_path):
        u = rng.standard_normal((5, 5, 5))
        path = write_vti(tmp_path / "u.vti", {"u": u})
        fields, _ = read_vti(path)
        np.testing.assert_allclose(fields["u"], u, atol=1e-14)

    def test_multiple_fields(self, rng, tmp_path):
        u = rng.standard_normal((6, 6))
        nu = np.exp(rng.standard_normal((6, 6)))
        path = write_vti(tmp_path / "both.vti", {"u": u, "nu": nu})
        fields, _ = read_vti(path)
        np.testing.assert_allclose(fields["u"], u, atol=1e-14)
        np.testing.assert_allclose(fields["nu"], nu, atol=1e-14)

    def test_orientation_preserved(self, tmp_path):
        """A field varying only along x must come back the same way —
        catches axis-order mistakes in the VTK x-fastest convention."""
        x = np.linspace(0, 1, 7)
        u = np.broadcast_to(x[:, None], (7, 7)).copy()
        fields, _ = read_vti(write_vti(tmp_path / "x.vti", {"u": u}))
        np.testing.assert_allclose(fields["u"], u, atol=1e-14)
        assert fields["u"][0, 0] != fields["u"][-1, 0]


class TestFileFormat:
    def test_compression_used(self, rng, tmp_path):
        """Constant fields compress far below raw size (zlib works)."""
        u = np.ones((64, 64))
        path = write_vti(tmp_path / "c.vti", {"u": u})
        assert path.stat().st_size < u.nbytes / 10

    def test_header_declares_zlib(self, rng, tmp_path):
        path = write_vti(tmp_path / "h.vti", {"u": np.zeros((4, 4))})
        text = path.read_text()
        assert "vtkZLibDataCompressor" in text
        assert "ImageData" in text

    def test_custom_spacing(self, tmp_path):
        path = write_vti(tmp_path / "s.vti", {"u": np.zeros((4, 4))},
                         spacing=0.25)
        _, spacing = read_vti(path)
        assert spacing == pytest.approx(0.25)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_vti(tmp_path / "e.vti", {})
        with pytest.raises(ValueError):
            write_vti(tmp_path / "e.vti",
                      {"a": np.zeros((3, 3)), "b": np.zeros((4, 4))})
        with pytest.raises(ValueError):
            write_vti(tmp_path / "e.vti", {"a": np.zeros(5)})

    def test_creates_parent_dirs(self, tmp_path):
        path = write_vti(tmp_path / "deep" / "dir" / "u.vti",
                         {"u": np.zeros((3, 3))})
        assert path.exists()


class TestIntegrationWithSolver:
    def test_export_fem_solution(self, tmp_path):
        from repro import PoissonProblem2D

        problem = PoissonProblem2D(9)
        u = problem.fem_solve(np.zeros(4))
        nu = problem.nu(np.zeros(4))
        path = write_vti(tmp_path / "solution.vti", {"u": u, "nu": nu},
                         spacing=problem.grid().h)
        fields, spacing = read_vti(path)
        np.testing.assert_allclose(fields["u"], u, atol=1e-14)
        assert spacing == pytest.approx(problem.grid().h)
