"""Utility tests: seeding, viz, logging."""

import logging

import numpy as np
import pytest

from repro.utils import (make_rng, spawn_rngs, seed_everything, get_logger,
                         Stopwatch, ascii_field, write_csv, format_table)


class TestSeeding:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_seeded_deterministic(self):
        assert make_rng(4).integers(1000) == make_rng(4).integers(1000)

    def test_spawn_independent(self):
        rng = np.random.default_rng(1)
        children = spawn_rngs(rng, 3)
        vals = [c.integers(10 ** 9) for c in children]
        assert len(set(vals)) == 3

    def test_seed_everything_sets_default(self):
        seed_everything(77)
        a = make_rng().integers(10 ** 9)
        seed_everything(77)
        b = make_rng().integers(10 ** 9)
        assert a == b


class TestStopwatchLogger:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first

    def test_stopwatch_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_logger_singleton_handler(self):
        l1 = get_logger("repro-test")
        l2 = get_logger("repro-test")
        assert l1 is l2
        assert len(l1.handlers) == 1
        assert isinstance(l1, logging.Logger)


class TestViz:
    def test_ascii_2d(self):
        field = np.linspace(0, 1, 64).reshape(8, 8)
        art = ascii_field(field, width=8, height=4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(l) == 8 for l in lines)

    def test_ascii_3d_takes_midslice(self):
        field = np.zeros((4, 8, 8))
        field[2] = 1.0
        art = ascii_field(field, width=4, height=4)
        assert isinstance(art, str)

    def test_ascii_constant_field_no_nan(self):
        art = ascii_field(np.full((4, 4), 2.0))
        assert "nan" not in art

    def test_ascii_invalid_ndim(self):
        with pytest.raises(ValueError):
            ascii_field(np.zeros(5))

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "out.csv", ["a", "b"],
                         [[1, 2], [3, 4]])
        text = path.read_text()
        assert "a,b" in text and "3,4" in text

    def test_format_table(self):
        out = format_table(["name", "value"], [["x", 1.23456], ["yy", 7]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "1.235" in out
