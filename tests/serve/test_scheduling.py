"""Deterministic scheduling semantics: priorities, deadlines, backpressure.

Every test here pins an ordering or rejection the async front-end's
latency story depends on, using events — never sleeps — to hold the
single worker in a known state while the queue is arranged.
"""

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.serve import (
    DeadlineExceeded, MicroBatcher, ModelRegistry, PredictRequest,
    PredictionServer, RequestQueue, ServerConfig, ServerOverloaded,
)

RNG = np.random.default_rng(23)


def _request(priority=0, tag=0.0, deadline_s=None, enqueued_at=None):
    expires = time.perf_counter() + deadline_s if deadline_s is not None \
        else None
    req = PredictRequest(model_name="m", omega=np.full(4, tag),
                         resolution=16, future=Future(), key=("k", tag),
                         priority=priority, deadline_s=deadline_s,
                         expires_at=expires)
    if enqueued_at is not None:
        # Forged timestamps make aging tests deterministic: the heap
        # rank is computed from enqueued_at at put() time.
        req.enqueued_at = enqueued_at
    return req


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    return model, problem, registry


class _BlockedWorker:
    """Hold the server's single worker inside a filler forward."""

    def __init__(self, server):
        self.server = server
        self.order: list[float] = []
        self.started = threading.Event()
        self.release = threading.Event()
        forward = server._forward

        def hooked(entry, omegas, resolution):
            if not self.started.is_set():
                self.started.set()
                assert self.release.wait(timeout=30)
            else:
                self.order.extend(float(w[0]) for w in omegas)
            return forward(entry, omegas, resolution)

        server._forward = hooked

    def block(self) -> Future:
        """Submit the filler and wait until the worker is inside it."""
        filler = self.server.submit("m", np.full(4, -1.0))
        assert self.started.wait(timeout=30)
        return filler


class TestRequestQueue:
    def test_higher_priority_dequeues_first(self):
        q = RequestQueue()
        q.put(_request(priority=0, tag=1))
        q.put(_request(priority=5, tag=2))
        q.put(_request(priority=1, tag=3))
        tags = [q.get().omega[0] for _ in range(3)]
        assert tags == [2, 3, 1]

    def test_fifo_within_a_priority_level(self):
        q = RequestQueue()
        for tag in (1, 2, 3):
            q.put(_request(priority=7, tag=tag))
        assert [q.get().omega[0] for _ in range(3)] == [1, 2, 3]

    def test_bounded_queue_raises_full(self):
        q = RequestQueue(maxsize=2)
        q.put(_request(), block=False)
        q.put(_request(), block=False)
        with pytest.raises(queue.Full):
            q.put(_request(), block=False)

    def test_collect_drains_priority_order(self):
        q = RequestQueue()
        q.put(_request(priority=0, tag=1))
        q.put(_request(priority=0, tag=2))
        q.put(_request(priority=9, tag=3))
        batch = MicroBatcher(max_batch=2, max_wait_ms=0).collect(q)
        assert [r.omega[0] for r in batch] == [3, 1]


class TestPriorityAging:
    """aging_s keys the heap by virtual start time
    ``enqueued_at - priority * aging_s``: fresh requests still order by
    priority, but a request that has waited ``Δpriority * aging_s``
    overtakes — the starvation bound the ROADMAP asked for."""

    def test_fresh_requests_still_order_by_priority(self):
        now = time.perf_counter()
        q = RequestQueue(aging_s=0.1)
        q.put(_request(priority=0, tag=1, enqueued_at=now))
        q.put(_request(priority=5, tag=2, enqueued_at=now))
        assert [q.get().omega[0] for _ in range(2)] == [2, 1]

    def test_aged_low_priority_overtakes_fresh_high(self):
        now = time.perf_counter()
        q = RequestQueue(aging_s=0.1)
        # The bulk request has waited 1 s — ten priority levels of age
        # credit at aging_s=0.1 — so it beats a fresh priority-5 one.
        q.put(_request(priority=0, tag=1, enqueued_at=now - 1.0))
        q.put(_request(priority=5, tag=2, enqueued_at=now))
        assert [q.get().omega[0] for _ in range(2)] == [1, 2]

    def test_age_below_the_bound_does_not_overtake(self):
        now = time.perf_counter()
        q = RequestQueue(aging_s=0.1)
        # 0.3 s of age is only three levels — not enough against Δ5.
        q.put(_request(priority=0, tag=1, enqueued_at=now - 0.3))
        q.put(_request(priority=5, tag=2, enqueued_at=now))
        assert [q.get().omega[0] for _ in range(2)] == [2, 1]

    def test_fifo_within_a_priority_level_preserved(self):
        now = time.perf_counter()
        q = RequestQueue(aging_s=0.5)
        for i, tag in enumerate((1, 2, 3)):
            q.put(_request(priority=3, tag=tag, enqueued_at=now + i * 1e-4))
        assert [q.get().omega[0] for _ in range(3)] == [1, 2, 3]

    def test_invalid_aging_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue(aging_s=0.0)
        with pytest.raises(ValueError):
            RequestQueue(aging_s=-1.0)

    def test_starvation_regression_end_to_end(self, served):
        """The deterministic regression: with the single worker blocked,
        an aged bulk request dequeues ahead of a sustained fresh
        high-priority lane — under strict priority (aging off) the same
        arrangement starves it to the back."""
        *_, registry = served

        def run(aging_s):
            server = PredictionServer(registry, ServerConfig(
                max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
                priority_aging_s=aging_s))
            hook = _BlockedWorker(server)
            with server:
                filler = hook.block()
                now = time.perf_counter()
                # A bulk request that has already waited 10 s...
                aged = _request(priority=0, tag=1.0, enqueued_at=now - 10.0)
                server._queue.put(aged)
                # ...behind a sustained stream of fresh interactive ones.
                fresh = [_request(priority=5, tag=100.0 + i, enqueued_at=now)
                         for i in range(3)]
                for req in fresh:
                    server._queue.put(req)
                hook.release.set()
                for req in [aged] + fresh:
                    req.future.result(timeout=30)
                filler.result(timeout=30)
            return hook.order

        # Aged bulk request escalates past the interactive lane...
        assert run(aging_s=1.0) == [1.0, 100.0, 101.0, 102.0]
        # ...but strict priority (the default) starves it to the back.
        assert run(aging_s=None) == [100.0, 101.0, 102.0, 1.0]

    def test_server_config_wires_aging_into_queue(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            priority_aging_s=0.25))
        assert server._queue.aging_s == 0.25
        assert PredictionServer(registry)._queue.aging_s is None


class TestCollectExpiry:
    def test_expired_request_routed_to_hook_not_batch(self):
        q = RequestQueue()
        dead = _request(tag=1, deadline_s=-1.0)     # already past due
        live = _request(tag=2)
        q.put(dead)
        q.put(live)
        expired = []
        batch = MicroBatcher(max_batch=8, max_wait_ms=0).collect(
            q, on_expired=expired.append)
        assert [r.omega[0] for r in batch] == [2]
        assert expired == [dead]

    def test_expired_requests_do_not_consume_batch_slots(self):
        q = RequestQueue()
        for tag in (1, 2, 3):
            q.put(_request(tag=tag, deadline_s=-1.0))
        q.put(_request(tag=4))
        expired = []
        batch = MicroBatcher(max_batch=1, max_wait_ms=0).collect(
            q, on_expired=expired.append)
        assert [r.omega[0] for r in batch] == [4]
        assert len(expired) == 3

    def test_without_hook_expiry_is_ignored(self):
        # Legacy callers (no on_expired) keep the old drain-everything
        # contract.
        q = RequestQueue()
        q.put(_request(tag=1, deadline_s=-1.0))
        batch = MicroBatcher(max_batch=4, max_wait_ms=0).collect(q)
        assert len(batch) == 1


class TestPriorityEndToEnd:
    def test_high_priority_jumps_saturated_queue(self, served):
        """With the single worker pinned, queued high-priority requests
        must all run before queued low-priority ones, FIFO per lane."""
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        hook = _BlockedWorker(server)
        with server:
            hook.block()
            lows = [server.submit("m", np.full(4, 10.0 + i), priority=0)
                    for i in range(3)]
            highs = [server.submit("m", np.full(4, 100.0 + i), priority=5)
                     for i in range(3)]
            hook.release.set()
            for f in lows + highs:
                f.result(timeout=30)
        assert hook.order == [100.0, 101.0, 102.0, 10.0, 11.0, 12.0]

    def test_equal_priorities_keep_fifo(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        hook = _BlockedWorker(server)
        with server:
            hook.block()
            futures = [server.submit("m", np.full(4, 10.0 + i))
                       for i in range(4)]
            hook.release.set()
            for f in futures:
                f.result(timeout=30)
        assert hook.order == [10.0, 11.0, 12.0, 13.0]


class TestDeadlines:
    def test_expired_deadline_fails_keyed_without_forward(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        hook = _BlockedWorker(server)
        with server:
            hook.block()
            doomed = server.submit("m", np.full(4, 42.0), deadline_s=0.01)
            ok = server.submit("m", np.full(4, 7.0), deadline_s=60.0)
            time.sleep(0.05)            # let the queued deadline lapse
            hook.release.set()
            with pytest.raises(DeadlineExceeded) as info:
                doomed.result(timeout=30)
            ok.result(timeout=30)
        # Keyed error: names the model and carries the budget it missed.
        assert info.value.model_name == "m"
        assert info.value.deadline_s == pytest.approx(0.01)
        assert info.value.waited_s >= 0.01
        # The digest matches the spill file-name digest exactly, so a
        # logged rejection correlates with its cache entry on disk.
        from repro.serve.cache import key_digest

        assert info.value.key_digest == key_digest(
            server._key(registry.get("m"), np.full(4, 42.0), 16))
        # The expired request never entered a fused forward.
        assert 42.0 not in hook.order
        assert 7.0 in hook.order
        assert server.stats.expired == 1
        assert server.stats.errors == 0
        assert not server._inflight

    def test_deadline_exceeded_is_a_timeout_error(self, served):
        *_, registry = served
        server = PredictionServer(registry)
        with pytest.raises(TimeoutError):
            server.predict("m", np.zeros(4), deadline_s=-1.0)

    def test_sync_frontend_honors_spent_budget(self, served):
        """A dead-on-arrival deadline expires on the sync path too —
        semantics must not depend on whether workers are running."""
        *_, registry = served
        server = PredictionServer(registry)
        future = server.submit("m", np.zeros(4), deadline_s=0.0)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=1)
        assert server.stats.expired == 1
        assert not server._inflight

    def test_default_deadline_from_config(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            default_deadline_s=-1.0))
        with pytest.raises(DeadlineExceeded):
            server.predict("m", np.zeros(4))
        # An explicit submit deadline overrides the config default.
        u = server.predict("m", np.zeros(4), deadline_s=60.0)
        assert u.shape == (16, 16)

    def test_cache_hit_beats_deadline(self, served):
        """A hit resolves instantly, so even a dead deadline is met."""
        *_, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        server.predict("m", omega)
        u = server.predict("m", omega, deadline_s=0.0)
        assert u.shape == (16, 16)
        assert server.stats.cache_hits == 1


class TestBackpressure:
    def test_overflow_rejects_keyed_and_counts(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
            max_pending=2))
        hook = _BlockedWorker(server)
        with server:
            hook.block()                 # worker busy, queue empty
            queued = [server.submit("m", np.full(4, 10.0 + i))
                      for i in range(2)]
            with pytest.raises(ServerOverloaded) as info:
                server.submit("m", np.full(4, 99.0))
            hook.release.set()
            for f in queued:
                f.result(timeout=30)
        assert info.value.max_pending == 2
        assert info.value.pending == 2
        assert info.value.model_name == "m"
        assert server.stats.rejected == 1
        assert server.stats.errors == 0
        # The rejected request left no state behind: not in flight, and
        # 99 never reached a forward.
        assert 99.0 not in hook.order
        assert not server._inflight

    def test_rejected_request_can_be_resubmitted(self, served):
        model, problem, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
            max_pending=1))
        hook = _BlockedWorker(server)
        omega = RNG.uniform(-3, 3, 4)
        with server:
            hook.block()
            queued = server.submit("m", np.full(4, 10.0))
            with pytest.raises(ServerOverloaded):
                server.submit("m", omega)
            hook.release.set()
            queued.result(timeout=30)    # queue drained, slot free again
            # The retry must compute fresh, not attach to a future the
            # rejection abandoned.
            u = server.predict("m", omega, timeout=30)
        from repro.core.inference import predict_batch

        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-6)
        assert server.stats.rejected == 1

    def test_cache_hit_bypasses_full_queue(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, max_pending=1))
        omega = RNG.uniform(-3, 3, 4)
        server.predict("m", omega)       # fill the cache pre-start
        hook = _BlockedWorker(server)
        with server:
            hook.block()
            server.submit("m", np.full(4, 10.0))     # queue now full
            hit = server.submit("m", omega)          # resolves instantly
            assert hit.done()
            hook.release.set()
        assert server.stats.rejected == 0

    def test_dedup_twin_bypasses_full_queue(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
            max_pending=1))
        hook = _BlockedWorker(server)
        omega = RNG.uniform(-3, 3, 4)
        with server:
            hook.block()
            first = server.submit("m", omega)        # queue now full
            twin = server.submit("m", omega)         # attaches, no slot
            assert twin is first
            hook.release.set()
            first.result(timeout=30)
        assert server.stats.dedup_hits == 1
        assert server.stats.rejected == 0

    def test_twin_attaching_in_rejection_window_is_failed_not_orphaned(
            self, served):
        """A twin that attaches to an in-flight future in the instant
        before its submit is rejected must receive the rejection through
        the future — never wait forever on a request nothing owns."""
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
            max_pending=1))
        omega = RNG.uniform(-3, 3, 4)
        attached = {}
        real_put = server._queue.put

        def racing_put(request, block=True, timeout=None):
            if request.omega[0] == omega[0]:
                # The race window: the in-flight entry exists, the queue
                # slot does not.  A twin submitted now takes the dedup
                # path and attaches to the about-to-be-rejected future.
                attached["twin"] = server.submit("m", omega)
                raise queue.Full
            return real_put(request, block, timeout)

        server._queue.put = racing_put
        with server:
            with pytest.raises(ServerOverloaded):
                server.submit("m", omega)
            with pytest.raises(ServerOverloaded):
                attached["twin"].result(timeout=5)
        assert server.stats.dedup_hits == 1
        assert server.stats.rejected == 1
        assert not server._inflight

    def test_unbounded_by_default(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=1, workers=1, cache_bytes=0))
        with server:
            futures = [server.submit("m", RNG.uniform(-3, 3, 4))
                       for _ in range(32)]
            for f in futures:
                f.result(timeout=60)
        assert server.stats.rejected == 0
