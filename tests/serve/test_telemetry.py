"""Unified telemetry: golden traces, conservation cross-checks, metrics.

Contracts pinned here:

* **Golden traces** — a seeded replay of the committed storm scenario
  under a shared :class:`VirtualClock` exports *byte-identical* span
  jsonl across two fresh runs: every timestamp is a pure function of
  the trace, never of the wall clock.
* **Well-formed span trees** — no orphan ``parent_id``s, child
  intervals nested inside their parents, sequential ids.
* **Conservation cross-check** — the ``fleet.*`` mirrored counters are
  an accounting path *independent* of ``FleetStats`` (they accumulate
  at the event sites, the ``stats.fleet.*`` views read the legacy
  dataclass lazily).  Both must satisfy the request conservation law
  and agree with each other, under storms and chaos alike.
* **Zero overhead when off** — the disabled tracer/span are falsy
  no-ops; a server or fleet without telemetry carries only a ``None``
  attribute.
"""

import json
from pathlib import Path

import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.serve import (
    NULL_SPAN, NULL_TRACER, ArrivalSpec, FaultSpec, FleetConfig, Gauge,
    MetricsRegistry, MirroredCounters, PredictionServer, QuantileSketch,
    ReplayHarness, ResilienceConfig, RetryConfig, Scenario, ServerConfig,
    ShardedFleet, Telemetry, TenantSpec, Tracer, VirtualClock, export_jsonl,
    format_summary, install_resilience, load_scenario, parse_jsonl,
    summarize_spans,
)

STORM_JSON = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "scenarios" / "storm.json")

# The request conservation law: submitted == sum of terminal outcomes.
CONSERVED = ("served", "rejected", "expired", "errors", "cancelled",
             "unavailable", "throttled")


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=3, **fleet_kw) -> ShardedFleet:
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=2,
        server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                            cache_bytes=0), **fleet_kw))


def _scenario(**kw) -> Scenario:
    kw.setdefault("name", "unit")
    kw.setdefault("seed", 7)
    kw.setdefault("duration_s", 1.0)
    kw.setdefault("models", ("m0", "m1"))
    return Scenario(**kw)


def _virtual_run(served, scenario, *, trace_sample=1):
    """The golden-trace recipe: shared VirtualClock, *unstarted* fleet
    (submits process inline on the single pacing thread), budgeted
    retries.  Returns (fleet, telemetry, report)."""
    model, problem = served
    clock = VirtualClock()
    telemetry = Telemetry(clock=clock, trace_sample=trace_sample)
    fleet = _fleet(shards=3)
    for name in scenario.models:
        fleet.register_model(name, model, problem)
    install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
        max_attempts=4, base_backoff_s=0.002, max_backoff_s=0.02)))
    report = ReplayHarness(fleet, scenario, clock=clock,
                           telemetry=telemetry).run()
    return fleet, telemetry, report


# --------------------------------------------------------------------- #
# Golden traces
# --------------------------------------------------------------------- #
class TestGoldenTrace:
    def test_storm_span_log_is_byte_identical(self, served):
        scenario = load_scenario(STORM_JSON)
        _, _, a = _virtual_run(served, scenario)
        _, _, b = _virtual_run(served, scenario)
        assert a.span_log() == b.span_log()
        assert len(a.span_log().splitlines()) > 100

    def test_span_tree_is_well_formed(self, served):
        scenario = load_scenario(STORM_JSON)
        _, _, report = _virtual_run(served, scenario)
        spans = parse_jsonl(report.span_log())
        assert spans
        by_id = {s["span_id"] for s in spans}
        assert len(by_id) == len(spans)            # unique ids
        ids = [s["span_id"] for s in spans]
        assert ids == sorted(ids)                  # export is id-ordered
        intervals = {s["span_id"]: (s["start"], s["end"]) for s in spans}
        for s in spans:
            assert s["end"] >= s["start"]
            parent = s.get("parent_id")
            if parent is None:
                continue
            assert parent in by_id, f"orphan span {s['span_id']}"
            p_start, p_end = intervals[parent]
            assert p_start <= s["start"]           # child opened inside
            assert s["end"] <= p_end               # ... and closed inside

    def test_root_outcomes_are_conservation_terms(self, served):
        scenario = load_scenario(STORM_JSON)
        _, _, report = _virtual_run(served, scenario)
        roots = [s for s in parse_jsonl(report.span_log())
                 if s["name"] == "fleet.request"]
        assert len(roots) == report.requests
        outcomes = {s["attrs"]["outcome"] for s in roots}
        assert outcomes <= set(CONSERVED)
        assert sum(1 for s in roots
                   if s["attrs"]["outcome"] == "served") == report.served

    def test_virtual_hang_advances_time_without_blocking(self, served):
        """The storm schedules a hang; under the virtual clock the
        stalled wrapper advances time to the release instead of
        sleeping, so some span durations are positive."""
        scenario = load_scenario(STORM_JSON)
        _, _, report = _virtual_run(served, scenario)
        durs = [s["dur"] for s in parse_jsonl(report.span_log())]
        assert max(durs) > 0.0

    def test_sampling_traces_one_root_in_n(self, served):
        scenario = _scenario(arrivals=ArrivalSpec(rate=40.0))
        _, _, dense = _virtual_run(served, scenario, trace_sample=1)
        _, _, sparse = _virtual_run(served, scenario, trace_sample=4)

        def roots(report):
            return [s for s in parse_jsonl(report.span_log())
                    if s["name"] == "fleet.request"]

        n_dense, n_sparse = len(roots(dense)), len(roots(sparse))
        assert n_dense == dense.requests
        # Unsampled roots suppress their whole subtree.
        assert n_sparse == -(-n_dense // 4)
        assert len(parse_jsonl(sparse.span_log())) < len(
            parse_jsonl(dense.span_log()))


# --------------------------------------------------------------------- #
# Conservation cross-check: registry counters vs legacy stats views
# --------------------------------------------------------------------- #
def _assert_reconciled(fleet, telemetry):
    """Both accounting paths satisfy the law and agree term by term."""
    reg = telemetry.metrics
    stats = fleet.stats
    assert stats.lost == 0
    submitted = reg.value("fleet.submitted")
    assert submitted == sum(reg.value(f"fleet.{k}") for k in CONSERVED)
    for name in ("submitted",) + CONSERVED:
        counter = reg.value(f"fleet.{name}")      # event-site mirror
        view = reg.value(f"stats.fleet.{name}")   # lazy legacy read
        legacy = getattr(stats, name)
        assert counter == view == legacy, (
            f"{name}: counter={counter} view={view} stats={legacy}")


class TestConservationCrossCheck:
    def test_storm_virtual(self, served):
        fleet, telemetry, report = _virtual_run(
            served, load_scenario(STORM_JSON))
        assert report.requests > 0
        _assert_reconciled(fleet, telemetry)

    def test_chaos_live(self, served):
        """Kill + hang + flap against a *started* fleet, real clock:
        the mirrored counters accumulate from worker threads and must
        still reconcile exactly."""
        model, problem = served
        scenario = _scenario(
            name="chaos", seed=11, duration_s=1.2,
            arrivals=ArrivalSpec(rate=40.0),
            tenants=(TenantSpec("interactive", weight=1.0, priority=5),
                     TenantSpec("bulk", weight=2.0)),
            faults=(FaultSpec(t=0.2, op="flap", shard=1, period_s=0.3,
                              count=2),
                    FaultSpec(t=0.4, op="kill", shard=2, duration_s=0.5),
                    FaultSpec(t=0.6, op="hang", shard=0, duration_s=0.3)))
        telemetry = Telemetry()
        fleet = _fleet(shards=3, shard_timeout_s=0.2)
        fleet.register_model("m0", model, problem)
        fleet.register_model("m1", model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=4, base_backoff_s=0.002, max_backoff_s=0.02)))
        with fleet:
            report = ReplayHarness(fleet, scenario,
                                   telemetry=telemetry).run()
        assert report.requests > 0
        _assert_reconciled(fleet, telemetry)

    def test_flat_load_no_faults(self, served):
        fleet, telemetry, report = _virtual_run(
            served, _scenario(duration_s=0.5,
                              arrivals=ArrivalSpec(rate=30.0)))
        assert report.served == report.requests
        _assert_reconciled(fleet, telemetry)

    def test_resilience_views_registered(self, served):
        fleet, telemetry, _ = _virtual_run(
            served, _scenario(duration_s=0.3))
        reg = telemetry.metrics
        for name in ("stats.retry.retries", "stats.retry.denied",
                     "stats.hedge.hedges", "stats.breaker.trips"):
            assert name in reg.names()
        assert reg.value("stats.retry.retries") == fleet.retry.retries


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #
class TestMetricsInstruments:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(5)
        assert reg.value("c") == 6
        assert reg.counter("c") is c               # get-or-create
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_history_is_bounded_and_stamped(self):
        clock = VirtualClock()
        reg = MetricsRegistry(clock=clock)
        g = reg.gauge("g", history=8)
        for i in range(20):
            clock.advance(1.0)
            g.set(float(i))
        assert g.value == 19.0
        hist = g.history
        assert len(hist) == 8                      # bounded ring
        assert hist[-1] == (20.0, 19.0)            # stamped from clock
        assert [v for _, v in hist] == [float(i) for i in range(12, 20)]

    def test_quantile_sketch_within_bucket_resolution(self):
        sk = QuantileSketch("lat", gamma=1.02)
        values = [float(i) for i in range(1, 1001)]
        for v in values:
            sk.observe(v)
        assert sk.count == 1000
        assert sk.min == 1.0 and sk.max == 1000.0
        assert sk.mean == pytest.approx(500.5)
        # The sketch overshoots the true quantile by <= one bucket.
        assert 500.0 <= sk.p50 <= 500.0 * 1.02 * 1.02
        assert 990.0 <= sk.p99 <= 990.0 * 1.02 * 1.02

    def test_quantile_sketch_zero_bucket_and_empty(self):
        sk = QuantileSketch("z")
        assert sk.quantile(0.5) == 0.0             # empty
        for _ in range(10):
            sk.observe(0.0)
        assert sk.p50 == 0.0
        with pytest.raises(ValueError):
            sk.quantile(1.5)

    def test_mirrored_counters_forward_deltas(self):
        reg = MetricsRegistry()
        base = {"served": 3, "errors": 0}
        mirror = MirroredCounters(base, reg, prefix="fleet.")
        assert reg.value("fleet.served") == 3      # seeded at swap
        assert reg.value("fleet.errors") == 0
        mirror["served"] += 1
        mirror["errors"] += 2
        mirror["new"] = 5                          # fresh key
        assert mirror == {"served": 4, "errors": 2, "new": 5}
        assert reg.value("fleet.served") == 4
        assert reg.value("fleet.errors") == 2
        assert reg.value("fleet.new") == 5

    def test_view_reregister_replaces(self):
        reg = MetricsRegistry()
        reg.register_view("v", lambda: 1)
        reg.register_view("v", lambda: 2)          # idempotent re-enable
        assert reg.value("v") == 2

    def test_name_kind_collision_is_loud(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.register_view("x", lambda: 0)
        with pytest.raises(KeyError):
            reg.value("missing")

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(10.0)
        reg.register_view("v", lambda: 7)
        snap = reg.snapshot()
        assert snap["c"] == 2 and snap["g"] == 1.5 and snap["v"] == 7
        assert snap["h.count"] == 1 and snap["h.mean"] == 10.0
        parsed = json.loads(reg.to_json())
        assert parsed["c"] == 2
        assert reg.names() == ["c", "g", "h", "v"]


# --------------------------------------------------------------------- #
# Tracer mechanics + zero overhead when off
# --------------------------------------------------------------------- #
class TestTracer:
    def test_null_singletons_are_falsy_noops(self):
        assert not NULL_SPAN and not NULL_TRACER
        assert NULL_TRACER.start("x") is NULL_SPAN
        assert NULL_SPAN.finish(outcome="served") is NULL_SPAN
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.export_jsonl() == ""
        with NULL_SPAN as s:
            assert s is NULL_SPAN

    def test_unsampled_parent_suppresses_subtree(self):
        tracer = Tracer(sample_every=2)
        kept = tracer.start("root")                # root 0: sampled
        dropped = tracer.start("root")             # root 1: sampled out
        assert kept and not dropped
        assert tracer.start("child", parent=dropped) is NULL_SPAN
        child = tracer.start("child", parent=kept)
        assert child.parent_id == kept.span_id

    def test_finish_is_idempotent(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        span = tracer.start("s")
        clock.advance(1.0)
        span.finish(outcome="served")
        end = span.end
        clock.advance(1.0)
        span.finish(outcome="late")                # no-op: first wins
        assert span.end == end
        assert span.attrs["outcome"] == "served"

    def test_context_manager_records_error_type(self):
        tracer = Tracer(clock=VirtualClock())
        with pytest.raises(RuntimeError):
            with tracer.start("s") as span:
                raise RuntimeError("boom")
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None

    def test_ring_capacity_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            tracer.start("s").finish()
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.span_id for s in spans] == [6, 7, 8, 9]

    def test_export_round_trips_and_sorts(self):
        tracer = Tracer(clock=VirtualClock())
        a = tracer.start("outer")
        b = tracer.start("inner", parent=a, shard=3)
        b.finish()
        a.finish(outcome="served")
        text = export_jsonl(reversed(tracer.spans()))   # any input order
        parsed = parse_jsonl(text)
        assert [s["span_id"] for s in parsed] == [0, 1]
        assert parsed[1]["attrs"]["shard"] == 3
        assert export_jsonl(parsed) == text             # dicts accepted

    def test_server_and_fleet_default_to_no_telemetry(self, served):
        model, problem = served
        from repro.serve import ModelRegistry
        registry = ModelRegistry()
        registry.register_model("m", model, problem)
        server = PredictionServer(registry, ServerConfig(workers=1))
        assert server.telemetry is None
        assert _fleet().telemetry is None


# --------------------------------------------------------------------- #
# Summaries + CLI
# --------------------------------------------------------------------- #
class TestSummarize:
    def _spans(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        for dur in (0.010, 0.020, 0.030):
            span = tracer.start("tile.compute")
            clock.advance(dur)
            span.finish()
        span = tracer.start("queue.wait")
        clock.advance(0.5)
        span.finish()
        return tracer.spans()

    def test_summarize_reduces_per_stage(self):
        summary = summarize_spans(self._spans())
        tile = summary["tile.compute"]
        assert tile["count"] == 3
        assert tile["total_s"] == pytest.approx(0.060)
        assert tile["mean_s"] == pytest.approx(0.020)
        assert tile["max_s"] == pytest.approx(0.030)
        assert summary["queue.wait"]["count"] == 1

    def test_format_summary_orders_by_total(self):
        text = format_summary(summarize_spans(self._spans()))
        lines = text.splitlines()
        assert lines[0].split() == ["stage", "count", "total_ms", "mean_ms",
                                    "p50_ms", "p99_ms", "max_ms"]
        # queue.wait (500 ms total) sorts above tile.compute (60 ms).
        assert lines[2].startswith("queue.wait")
        assert lines[3].startswith("tile.compute")

    def test_trace_summarize_cli(self, served, tmp_path, capsys):
        from repro.cli import main
        _, _, report = _virtual_run(
            served, _scenario(duration_s=0.3,
                              arrivals=ArrivalSpec(rate=20.0)))
        path = tmp_path / "spans.jsonl"
        path.write_text(report.span_log())
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fleet.request" in out and "stage" in out

    def test_trace_summarize_cli_rejects_empty(self, tmp_path, capsys):
        from repro.cli import main
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 1
