"""Model registry: checkpoint round-trips, versioning and keyed errors."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.checkpoint import save_checkpoint
from repro.core.inference import predict_batch
from repro.serve import ModelRegistry, RegistryError


def _model(rng=0, base_filters=4, depth=1):
    return MGDiffNet(ndim=2, base_filters=base_filters, depth=depth, rng=rng)


def _save(tmp_path, model, name="ck.npz", resolution=16, **overrides):
    extra = {"ndim": 2, "base_filters": 4, "depth": 1,
             "resolution": resolution}
    extra.update(overrides)
    return save_checkpoint(tmp_path / name, model, extra=extra)


class TestRoundtrip:
    def test_load_restores_weights_and_problem(self, tmp_path):
        trained = _model(3)
        path = _save(tmp_path, trained)
        registry = ModelRegistry()
        entry = registry.load("served", path)
        assert entry.problem.ndim == 2
        assert entry.problem.resolution == 16
        assert entry.path == path
        omega = np.array([0.3, -1.2, 0.9, 2.1])
        ref = predict_batch(trained, PoissonProblem2D(16), omega)
        got = predict_batch(entry.model, entry.problem, omega)
        np.testing.assert_allclose(got, ref, atol=1e-7)

    def test_version_tracks_weights(self, tmp_path):
        registry = ModelRegistry()
        e1 = registry.load("a", _save(tmp_path, _model(1), "a.npz"))
        e2 = registry.load("b", _save(tmp_path, _model(2), "b.npz"))
        e1_again = registry.load("c", _save(tmp_path, _model(1), "c.npz"))
        assert e1.version != e2.version
        assert e1.version == e1_again.version

    def test_reload_replaces_entry(self, tmp_path):
        registry = ModelRegistry()
        registry.load("m", _save(tmp_path, _model(1), "v1.npz"))
        v1 = registry.get("m").version
        registry.load("m", _save(tmp_path, _model(2), "v2.npz"))
        assert registry.get("m").version != v1
        assert len(registry) == 1

    def test_names_and_contains(self, tmp_path):
        registry = ModelRegistry()
        registry.load("m", _save(tmp_path, _model(1)))
        assert "m" in registry and registry.names() == ("m",)
        registry.unregister("m")
        assert "m" not in registry


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(RegistryError, match="does not exist"):
            ModelRegistry().load("m", "/nonexistent/ck.npz")

    def test_missing_architecture_metadata(self, tmp_path):
        path = save_checkpoint(tmp_path / "bare.npz", _model(0))
        with pytest.raises(RegistryError, match="architecture metadata"):
            ModelRegistry().load("m", path)

    def test_architecture_mismatch_names_path_and_keys(self, tmp_path):
        # Saved with depth=2 weights but metadata claiming depth=1: the
        # keyed CheckpointError must surface through RegistryError with
        # the checkpoint path.
        path = _save(tmp_path, _model(0, depth=2), "lie.npz")
        with pytest.raises(RegistryError) as err:
            ModelRegistry().load("m", path)
        message = str(err.value)
        assert "lie.npz" in message
        assert "keys" in message or "shape" in message

    def test_unknown_name_lists_available(self, tmp_path):
        registry = ModelRegistry()
        registry.load("present", _save(tmp_path, _model(1)))
        with pytest.raises(RegistryError, match="present"):
            registry.get("absent")

    def test_failed_validation_leaves_nothing_registered(self, tmp_path):
        poisoned = _model(0)
        for p in poisoned.parameters():
            p.data[:] = np.nan
        path = _save(tmp_path, poisoned, "nan.npz")
        registry = ModelRegistry()
        with pytest.raises(RegistryError, match="non-finite"):
            registry.load("m", path)
        assert "m" not in registry and len(registry) == 0


class TestEvalPinning:
    def test_registered_models_are_pinned_to_eval(self, tmp_path):
        model = _model(0)
        assert model.training  # fresh models start in training mode
        ModelRegistry().register_model("m", model, PoissonProblem2D(16))
        assert not model.training

    def test_loaded_models_are_pinned_to_eval(self, tmp_path):
        registry = ModelRegistry()
        entry = registry.load("m", _save(tmp_path, _model(1)))
        assert not entry.model.training
