"""End-to-end control-plane scenarios on a live fleet (seeded chaos).

The acceptance bar for the control plane, pinned as tests:

* **Self-healing without an operator** — a storm with one shard killed
  (permanently) and one hung (transiently) while a ``ControlPlane``
  runs in the background must end with the hung shard auto-readmitted,
  the killed shard decommissioned and its keys re-replicated, zero
  requests lost, and ZERO calls to the operator seams
  (``fleet.check_health`` / ``fleet.register_model``).
* **Autoscaling under a load step** — a queue-depth step drives scale
  up, the backlog drains, and the fleet scales back to the floor; no
  request is lost or double-served and the answers stay exact.
* **Admission under storm** — a metered tenant saturating its bucket
  keeps the conservation law intact (throttles are an outcome, not a
  leak).

Same harness idiom as ``test_fleet_faults.py``: seeds fixed, faults
armed by submission count (never by sleep), hangs released by events.
"""

import threading
import time

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    ControlConfig, ControlPlane, FleetConfig, FleetUnavailable,
    ServerConfig, ServerOverloaded, ShardedFleet, Telemetry,
    TenantThrottled, VirtualClock,
)

SEED = 20260728


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=3, replicas=2, shard_timeout_s=None,
           **server_kw) -> ShardedFleet:
    kw = dict(max_batch=4, max_wait_ms=0.5, workers=1, cache_bytes=0)
    kw.update(server_kw)
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=replicas, shard_timeout_s=shard_timeout_s,
        server=ServerConfig(**kw)))


def _shard(fleet, shard_id):
    return next(s for s in fleet.shards if s.id == shard_id)


class _Chaos:
    """Inject one fault mode into one shard; restorable."""

    def __init__(self, shard):
        self.shard = shard
        self._forward = shard.server._forward
        self._submit = shard.server.submit
        self.release = threading.Event()
        self.entered = threading.Event()

    def kill(self):
        """The process is gone: nothing in it answers — neither new
        submissions nor batches already in flight (a served answer
        would self-readmit the shard, which a dead host cannot do)."""
        def dead(*args, **kwargs):
            raise ConnectionError(f"{self.shard.id} is gone")
        self.shard.server.submit = dead
        self.shard.server._forward = dead

    def hang(self):
        forward = self._forward

        def hung(entry, omegas, resolution, **kw):
            self.entered.set()
            assert self.release.wait(timeout=60)
            return forward(entry, omegas, resolution, **kw)
        self.shard.server._forward = hung

    def restore(self):
        self.release.set()
        self.shard.server._forward = self._forward
        self.shard.server.submit = self._submit


def _storm(fleet, names, n_clients=4, per_client=12, arm_chaos=None,
           arm_after=8, deadline_s=None, tenant=None):
    barrier = threading.Barrier(n_clients)
    submitted = threading.Semaphore(0)
    futures, sync_errors = [], []
    lock = threading.Lock()

    def client(cid):
        rng = np.random.default_rng(SEED + cid)
        barrier.wait()
        for i in range(per_client):
            name = names[rng.integers(len(names))]
            omega = rng.uniform(-3, 3, 4)
            priority = int(rng.integers(0, 6))
            try:
                f = fleet.submit(name, omega, priority=priority,
                                 deadline_s=deadline_s, tenant=tenant)
                with lock:
                    futures.append((name, omega, f))
            except (ServerOverloaded, FleetUnavailable,
                    TenantThrottled) as exc:
                with lock:
                    sync_errors.append(exc)
            submitted.release()

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    if arm_chaos is not None:
        for _ in range(arm_after):
            assert submitted.acquire(timeout=30)
        arm_chaos()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    return futures, sync_errors


def _drain(futures, timeout=60, fleet=None):
    """Resolve every future; with ``fleet`` given, drain through
    ``await_result`` so hung shards are ejected on the waiting path."""
    results, request_errors = [], []
    for name, omega, f in futures:
        try:
            if fleet is not None:
                u = fleet.await_result(f, timeout)
            else:
                u = f.result(timeout)
            results.append((name, omega, u))
        except Exception as exc:
            request_errors.append((name, omega, exc))
    return results, request_errors


def _assert_fields_match(served_model, results, atol=1e-5, sample=10):
    model, problem = served_model
    for name, omega, u in results[:sample]:
        ref = predict_batch(model, problem, omega)[0]
        np.testing.assert_allclose(u, ref, atol=atol)


def _forbid_operator(fleet):
    """Count (and pass through) calls to the operator seams."""
    calls = {"check_health": 0, "register_model": 0}
    orig_health, orig_register = fleet.check_health, fleet.register_model

    def counted_health(*args, **kwargs):
        calls["check_health"] += 1
        return orig_health(*args, **kwargs)

    def counted_register(*args, **kwargs):
        calls["register_model"] += 1
        return orig_register(*args, **kwargs)

    fleet.check_health = counted_health
    fleet.register_model = counted_register
    return calls


def _distinct_fault_pair(fleet, names):
    """A (kill, hang) shard pair such that the storm genuinely exercises
    both faults yet every key stays servable: neither jointly owns any
    model's full replica set, the kill victim holds at least one model
    (so re-replication has work to do) and the hang victim is primary
    for at least one (so requests genuinely stall on it)."""
    ids = [s.id for s in fleet.shards]
    replica_sets = [fleet.replicas_for(n) for n in names]
    for a in ids:
        for b in ids:
            if a == b:
                continue
            if any(set(rs) <= {a, b} for rs in replica_sets):
                continue
            if not any(a in rs for rs in replica_sets):
                continue
            if not any(rs[0] == b for rs in replica_sets):
                continue
            return _shard(fleet, a), _shard(fleet, b)
    pytest.skip("no disjoint fault pair under this ring layout")


class TestSelfHealingStorm:
    def test_kill_and_hang_storm_heals_without_operator(self, served):
        model, problem = served
        fleet = _fleet(shards=4, replicas=2, shard_timeout_s=0.25)
        names = [f"m{i}" for i in range(5)]
        for name in names:
            fleet.register_model(name, model, problem)
        kill_victim, hang_victim = _distinct_fault_pair(fleet, names)
        chaos_kill = _Chaos(kill_victim)
        chaos_hang = _Chaos(hang_victim)
        calls = _forbid_operator(fleet)

        plane = ControlPlane(fleet, ControlConfig(
            probe_base_backoff_s=0.05, probe_max_backoff_s=0.2,
            probe_timeout_s=0.25, permanent_after=8,
            tick_interval_s=0.02))

        def arm():
            chaos_kill.kill()
            chaos_hang.hang()

        # The hang is transient: it clears as soon as the fleet has
        # noticed it (ejection), putting recovery squarely on the
        # prober.  The kill never clears — that shard is gone for good.
        def release_once_ejected():
            deadline = time.monotonic() + 20.0
            while hang_victim.healthy and time.monotonic() < deadline:
                time.sleep(0.005)
            chaos_hang.restore()

        watcher = threading.Thread(target=release_once_ejected,
                                   daemon=True)

        with fleet, plane:
            futures, sync_errors = _storm(
                fleet, names, n_clients=4, per_client=12,
                arm_chaos=arm, arm_after=8)
            watcher.start()
            # Draining through the fleet ejects the hung shard on the
            # waiting path (shard_timeout_s); the requests fail over.
            results, request_errors = _drain(futures, fleet=fleet)
            watcher.join(timeout=30)

            # The plane (not the test) decommissions the dead shard and
            # readmits the recovered one; wait on outcomes, not sleeps.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                gone = kill_victim.id not in [s.id for s in fleet.shards]
                if gone and hang_victim.healthy:
                    break
                time.sleep(0.01)
            assert kill_victim.id not in [s.id for s in fleet.shards]
            assert hang_victim.healthy

            # Full replication restored on the survivors, keys servable.
            rng = np.random.default_rng(SEED + 99)
            for name in names:
                replicas = fleet.replicas_for(name)
                assert kill_victim.id not in replicas
                assert len(replicas) == 2
                for sid in replicas:
                    shard = _shard(fleet, sid)
                    assert name in shard.server.registry.names()
                u = fleet.predict(name, rng.uniform(-3, 3, 4), timeout=30)
                assert u.shape == (16, 16)

        assert not request_errors, request_errors[:3]
        assert len(results) + len(sync_errors) == 48
        _assert_fields_match(served, results)

        s = fleet.stats
        assert s.lost == 0
        assert s.decommissions == 1
        assert s.reregistrations >= 1
        # The hung shard was ejected and came back — whether the probe
        # or a served answer readmitted it first, no operator did.
        assert s.readmissions >= 1
        ps = plane.stats
        assert ps.probes >= 2
        assert ps.decommissions == 1
        # Self-healing means *zero* operator intervention.
        assert calls == {"check_health": 0, "register_model": 0}

    def test_prober_readmits_after_transient_error(self, served):
        """An error fault ejects the primary; with no traffic flowing
        afterwards, only the background prober can bring it back."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        calls = _forbid_operator(fleet)
        # balance=False so the first read deterministically hits the
        # (broken) primary and trips the ejection.
        plane = ControlPlane(fleet, ControlConfig(
            balance=False, probe_base_backoff_s=0.02,
            probe_max_backoff_s=0.1, probe_timeout_s=1.0,
            tick_interval_s=0.01))
        rng = np.random.default_rng(SEED + 7)

        def boom(entry, omegas, resolution):
            raise RuntimeError("injected error")

        with fleet, plane:
            primary.server._forward = boom
            u = fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert u.shape == (16, 16)        # replica answered
            assert not primary.healthy        # fault ejected the primary

            # While the fault persists the prober probes and backs off
            # but never readmits.  A failed *completed* probe leaves a
            # backoff schedule behind — wait on that, not on the probe
            # counter, which ticks before the probe prediction lands.
            deadline = time.monotonic() + 20.0
            while (plane.prober.next_probe_at(primary.id) == 0.0
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            assert plane.prober.next_probe_at(primary.id) > 0.0
            assert plane.stats.probes >= 1
            assert not primary.healthy

            chaos.restore()                   # fault clears; no traffic
            deadline = time.monotonic() + 20.0
            while not primary.healthy and time.monotonic() < deadline:
                time.sleep(0.005)
            assert primary.healthy

            # Traffic returns to the healed primary.
            u = fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert u.shape == (16, 16)

        assert fleet.stats.lost == 0
        assert plane.stats.readmissions >= 1
        assert plane.stats.probes >= 2
        assert calls == {"check_health": 0, "register_model": 0}


class TestAutoscalerUnderLoad:
    def test_load_step_scales_up_then_back_down(self, served):
        """Queue-depth step -> scale up; backlog drains -> scale back to
        the floor.  Ticks are driven manually so the scaling sequence is
        deterministic; nothing is lost or double-served."""
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        names = ["m0", "m1"]
        for name in names:
            fleet.register_model(name, model, problem)
        plane = ControlPlane(fleet, ControlConfig(
            balance=False, autoscale=True, autoscale_min=2,
            autoscale_max=4, scale_up_depth=2.0, scale_down_depth=0.5,
            up_streak=1, down_streak=2, drain_timeout_s=10.0))
        hangs = [_Chaos(s) for s in fleet.shards]
        rng = np.random.default_rng(SEED)

        with fleet:
            for chaos in hangs:
                chaos.hang()
            futures = []
            for i in range(16):
                name = names[i % 2]
                omega = rng.uniform(-3, 3, 4)
                futures.append((name, omega,
                                fleet.submit(name, omega)))

            plane.tick()                      # depth step observed
            assert len(fleet.shards) == 3     # scaled up
            assert plane.stats.scale_ups == 1
            assert plane.stats.last_depth >= 2.0

            for chaos in hangs:               # load step ends
                chaos.restore()
            results, request_errors = _drain(futures)
            assert not request_errors

            # Depth is back to ~0: two quiet ticks retire one shard ...
            deadline = time.monotonic() + 30.0
            while len(fleet.shards) > 2 and time.monotonic() < deadline:
                plane.tick()
                time.sleep(0.01)
            assert len(fleet.shards) == 2
            assert plane.stats.scale_downs >= 1

            # ... and the floor holds however long the quiet lasts.
            for _ in range(5):
                plane.tick()
            assert len(fleet.shards) == 2

            # Survivors still hold every key and answer exactly.
            extra = 0
            for name in names:
                for sid in fleet.replicas_for(name):
                    assert name in \
                        _shard(fleet, sid).server.registry.names()
                omega = rng.uniform(-3, 3, 4)
                u = fleet.predict(name, omega, timeout=30)
                ref = predict_batch(model, problem, omega)[0]
                np.testing.assert_allclose(u, ref, atol=1e-5)
                extra += 1

        _assert_fields_match(served, results)
        s = fleet.stats
        assert s.lost == 0
        # Exactly-once: every request served once, none duplicated.
        assert len(results) == 16
        assert s.served == 16 + extra
        assert s.submitted == 16 + extra
        assert s.scale_ups == 1 and s.scale_downs >= 1


class TestAdmissionUnderStorm:
    def test_saturating_tenant_conserves_with_throttles(self, served):
        """A metered tenant blowing through its bucket mid-storm turns
        the excess into *throttles*, never losses — with the balancer
        spreading whatever is admitted."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        names = [f"m{i}" for i in range(3)]
        for name in names:
            fleet.register_model(name, model, problem)
        plane = ControlPlane(fleet, ControlConfig(
            balance=True, balance_seed=SEED,
            tenant_rate=5.0, tenant_burst=10.0))

        with fleet, plane:
            futures, sync_errors = _storm(fleet, names, n_clients=4,
                                          per_client=12, tenant="noisy")
            results, request_errors = _drain(futures)

        assert not request_errors
        throttles = [e for e in sync_errors
                     if isinstance(e, TenantThrottled)]
        assert throttles, "storm must overrun a 5/s, burst-10 bucket"
        for exc in throttles[:3]:
            assert exc.tenant == "noisy"
            assert exc.retry_after_s > 0
        _assert_fields_match(served, results)

        s = fleet.stats
        assert s.lost == 0
        assert s.throttled == len(throttles)
        assert s.served == len(results)
        assert s.submitted == 48
        assert len(results) + len(sync_errors) == 48
        ps = plane.stats
        assert ps.throttled == len(throttles)
        assert ps.admitted == 48 - len(throttles)
        assert ps.tenants["noisy"]["throttled"] == len(throttles)


class TestSLOTrajectory:
    def test_storm_records_per_tick_slo_trajectory(self, served):
        """Load step -> scale up, kill -> decommission, with telemetry
        live: the registry's SLO gauges carry the whole per-tick
        trajectory (healthy shards 3 -> 4 -> 3, p99 observed, queue
        depth spiking during the step), timestamped from the plane's
        forged clock, and both accounting paths still reconcile."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2, shard_timeout_s=0.25)
        names = ["m0", "m1"]
        for name in names:
            fleet.register_model(name, model, problem)
        telemetry = Telemetry()
        fleet.enable_telemetry(telemetry)
        reg = telemetry.metrics
        clock = VirtualClock()
        plane = ControlPlane(fleet, ControlConfig(
            balance=False, autoscale=True, autoscale_min=3,
            autoscale_max=4, scale_up_depth=2.0, scale_down_depth=0.5,
            up_streak=1, down_streak=10 ** 6,   # never scale back down
            probe_base_backoff_s=0.05, probe_max_backoff_s=0.2,
            probe_timeout_s=0.25, permanent_after=2),
            clock=clock)
        rng = np.random.default_rng(SEED + 1)

        def tick():
            clock.advance(1.0)        # > max backoff: probes never wait
            plane.tick()

        with fleet:
            tick()                                 # healthy baseline
            assert reg.value("slo.healthy_shards") == 3.0
            for _ in range(8):
                fleet.predict(names[0], rng.uniform(-3, 3, 4), timeout=30)
            tick()
            assert reg.value("slo.p99_ms") > 0.0

            # Load step: hang every shard, pile up a backlog.
            hangs = [_Chaos(s) for s in fleet.shards]
            for chaos in hangs:
                chaos.hang()
            futures = []
            for i in range(24):
                name = names[i % 2]
                omega = rng.uniform(-3, 3, 4)
                futures.append((name, omega, fleet.submit(name, omega)))
            tick()                                 # depth step observed
            assert len(fleet.shards) == 4
            assert plane.stats.scale_ups == 1
            for chaos in hangs:
                chaos.restore()
            results, request_errors = _drain(futures)
            assert not request_errors

            # Kill the current m0 primary; the fault ejects it and the
            # prober (permanent_after=2) decommissions it on its own.
            victim = _shard(fleet, fleet.replicas_for("m0")[0])
            _Chaos(victim).kill()
            u = fleet.predict("m0", rng.uniform(-3, 3, 4), timeout=30)
            assert u.shape == (16, 16)             # replica answered
            assert not victim.healthy
            deadline = time.monotonic() + 30.0
            while (victim.id in [s.id for s in fleet.shards]
                   and time.monotonic() < deadline):
                tick()
                time.sleep(0.01)
            assert victim.id not in [s.id for s in fleet.shards]
            tick()                                 # record healed level

        assert fleet.stats.lost == 0
        assert len(results) == 24
        ticks = plane.stats.ticks
        assert reg.value("control.ticks") == ticks
        hist = reg.gauge("slo.healthy_shards").history
        assert len(hist) == ticks
        times = [t for t, _ in hist]
        assert times == sorted(times)              # per-tick, in order
        assert len(set(times)) == len(times)
        values = [v for _, v in hist]
        assert values[0] == 3.0                    # baseline
        assert max(values) == 4.0                  # the scale-up
        assert values[-1] == 3.0                   # healed after the kill
        p99s = [v for _, v in reg.gauge("slo.p99_ms").history]
        assert len(p99s) == ticks
        assert any(v > 0.0 for v in p99s) and min(p99s) >= 0.0
        depths = [v for _, v in reg.gauge("slo.queue_depth").history]
        assert max(depths) >= 2.0                  # the load step
        # Views and mirrored counters agree with the legacy stats.
        assert reg.value("stats.control.scale_ups") == 1
        assert reg.value("stats.control.decommissions") == 1
        assert reg.value("stats.fleet.submitted") == fleet.stats.submitted
        assert reg.value("fleet.served") == fleet.stats.served
