"""Trace replay: scenario scripts, deterministic traces, chaos harness.

Contracts pinned here:

* **Scenario validation** — JSON documents are checked field by field:
  unknown keys, missing requirements and out-of-range parameters are
  loud ``ValueError``s, not latent misbehavior mid-storm.
* **Determinism** — ``build_trace`` is a pure function of
  ``(scenario, seed)``: the jsonl ``event_log`` is byte-identical
  across calls, and a different seed produces a different log.
* **Trace shape** — zipfian popularity skews toward rank-one models,
  tenant weights steer the mix, fault specs expand to the right event
  edges at the right timestamps.
* **Harness** — a scripted storm (kill + hang + flap under load)
  executed against a live fleet completes with every request
  accounted: ``lost == 0`` and the outcome census sums to the request
  count.  The committed ``benchmarks/scenarios/storm.json`` parses and
  expands deterministically.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.serve import (
    ArrivalSpec, FaultSpec, FleetConfig, PopularitySpec, ReplayHarness,
    ResilienceConfig, RetryConfig, Scenario, ServerConfig, ShardedFleet,
    TenantSpec, VirtualClock, build_trace, event_log, install_resilience,
    load_scenario,
)

STORM_JSON = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "scenarios" / "storm.json")


def _scenario(**kw) -> Scenario:
    kw.setdefault("name", "unit")
    kw.setdefault("seed", 7)
    kw.setdefault("duration_s", 2.0)
    kw.setdefault("models", ("m0", "m1"))
    return Scenario(**kw)


class TestScenarioValidation:
    def test_arrival_spec_rejects_bad_parameters(self):
        for bad in (dict(process="poissonish"), dict(rate=0.0),
                    dict(sigma=0.0), dict(diurnal_amplitude=1.0),
                    dict(diurnal_amplitude=-0.1),
                    dict(diurnal_amplitude=0.5, diurnal_period_s=0.0)):
            with pytest.raises(ValueError):
                ArrivalSpec(**bad)

    def test_popularity_spec_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PopularitySpec(kind="pareto")
        with pytest.raises(ValueError):
            PopularitySpec(kind="zipf", s=0.0)

    def test_tenant_spec_rejects_bad_parameters(self):
        for bad in (dict(name=""), dict(name="t", weight=0.0),
                    dict(name="t", deadline_s=0.0)):
            with pytest.raises(ValueError):
                TenantSpec(**bad)

    def test_fault_spec_rejects_bad_parameters(self):
        for bad in (dict(t=-1.0, op="kill", shard=0),
                    dict(t=0.0, op="melt", shard=0),
                    dict(t=0.0, op="kill", shard=-1),
                    dict(t=0.0, op="kill", shard=0, duration_s=0.0),
                    dict(t=0.0, op="flap", shard=0, period_s=0.0),
                    dict(t=0.0, op="flap", shard=0, count=0)):
            with pytest.raises(ValueError):
                FaultSpec(**bad)

    def test_scenario_rejects_bad_parameters(self):
        for bad in (dict(name=""), dict(duration_s=0.0),
                    dict(models=()), dict(tenants=())):
            with pytest.raises(ValueError):
                _scenario(**bad)

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        base = {"name": "s", "seed": 1, "duration_s": 1.0, "models": ["m"]}
        with pytest.raises(ValueError, match="unknown"):
            Scenario.from_dict({**base, "surprise": 1})
        for key in base:
            with pytest.raises(ValueError, match="missing"):
                Scenario.from_dict({k: v for k, v in base.items()
                                    if k != key})
        with pytest.raises(ValueError, match="JSON object"):
            Scenario.from_dict([1, 2])

    def test_load_scenario_round_trips(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "name": "s", "seed": 3, "duration_s": 1.0, "models": ["m"],
            "faults": [{"t": 0.5, "op": "kill", "shard": 0}]}))
        scenario = load_scenario(path)
        assert scenario.name == "s"
        assert scenario.faults[0].op == "kill"
        assert scenario.tenants == (TenantSpec("default"),)

    def test_load_scenario_rejects_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"name": "s", "seed"')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_scenario(path)


class TestTraceDeterminism:
    def test_same_seed_is_byte_identical(self):
        scenario = _scenario(
            arrivals=ArrivalSpec(rate=100.0, diurnal_period_s=1.0,
                                 diurnal_amplitude=0.3),
            tenants=(TenantSpec("a", weight=2.0),
                     TenantSpec("b", priority=5, deadline_s=1.0)),
            faults=(FaultSpec(t=0.5, op="flap", shard=0, count=2),))
        a = event_log(build_trace(scenario))
        b = event_log(build_trace(scenario))
        assert a == b
        assert len(a.splitlines()) > 50

    def test_different_seed_differs(self):
        assert (event_log(build_trace(_scenario(seed=1)))
                != event_log(build_trace(_scenario(seed=2))))

    def test_trace_is_sorted_with_dense_seq(self):
        scenario = _scenario(faults=(
            FaultSpec(t=0.5, op="hang", shard=0, duration_s=0.5),))
        trace = build_trace(scenario)
        assert [ev.seq for ev in trace] == list(range(len(trace)))
        assert all(a.t <= b.t for a, b in zip(trace, trace[1:]))
        assert all(ev.t < scenario.duration_s for ev in trace
                   if ev.kind == "request")

    def test_log_round_trips_through_json(self):
        trace = build_trace(_scenario())
        lines = event_log(trace).splitlines()
        assert len(lines) == len(trace)
        first = json.loads(lines[0])
        assert first["kind"] in ("request", "kill", "restore",
                                 "hang", "release")
        assert "t" in first and "seq" in first


class TestTraceShape:
    def test_zipf_popularity_skews_to_rank_one(self):
        scenario = _scenario(
            duration_s=10.0, models=("m0", "m1", "m2"),
            arrivals=ArrivalSpec(rate=100.0),
            popularity=PopularitySpec(kind="zipf", s=1.2))
        counts = Counter(ev.model for ev in build_trace(scenario)
                         if ev.kind == "request")
        assert counts["m0"] > counts["m1"] > counts["m2"]

    def test_uniform_popularity_is_flat(self):
        scenario = _scenario(
            duration_s=10.0, models=("m0", "m1"),
            arrivals=ArrivalSpec(rate=100.0),
            popularity=PopularitySpec(kind="uniform"))
        counts = Counter(ev.model for ev in build_trace(scenario)
                         if ev.kind == "request")
        total = sum(counts.values())
        assert abs(counts["m0"] - counts["m1"]) < 0.1 * total

    def test_tenant_weights_steer_the_mix(self):
        scenario = _scenario(
            duration_s=10.0, arrivals=ArrivalSpec(rate=100.0),
            tenants=(TenantSpec("heavy", weight=4.0, priority=1),
                     TenantSpec("light", weight=1.0, deadline_s=2.0)))
        requests = [ev for ev in build_trace(scenario)
                    if ev.kind == "request"]
        counts = Counter(ev.tenant for ev in requests)
        assert counts["heavy"] > 2 * counts["light"]
        by_tenant = {ev.tenant: ev for ev in requests}
        assert by_tenant["heavy"].priority == 1
        assert by_tenant["light"].deadline_s == 2.0

    def test_fault_expansion_edges(self):
        scenario = _scenario(
            arrivals=ArrivalSpec(rate=1.0),
            faults=(FaultSpec(t=0.2, op="kill", shard=2, duration_s=0.5),
                    FaultSpec(t=0.4, op="hang", shard=0, duration_s=0.3),
                    FaultSpec(t=0.1, op="flap", shard=1, period_s=0.2,
                              count=2)))
        edges = [(ev.kind, ev.shard, ev.t)
                 for ev in build_trace(scenario) if ev.kind != "request"]
        assert ("kill", 2, 0.2) in edges
        assert ("restore", 2, 0.7) in edges
        assert ("hang", 0, 0.4) in edges
        assert ("release", 0, pytest.approx(0.7)) in edges
        flaps = [e for e in edges if e[1] == 1]
        assert [(k, t) for k, _, t in flaps] == [
            ("kill", 0.1), ("restore", pytest.approx(0.2)),
            ("kill", pytest.approx(0.3)), ("restore", pytest.approx(0.4))]

    def test_diurnal_envelope_changes_the_timeline(self):
        flat = _scenario(arrivals=ArrivalSpec(rate=50.0))
        wavy = _scenario(arrivals=ArrivalSpec(
            rate=50.0, diurnal_period_s=1.0, diurnal_amplitude=0.8))
        assert event_log(build_trace(flat)) != event_log(build_trace(wavy))


class TestVirtualClock:
    def test_advance_and_call(self):
        clock = VirtualClock(start=5.0)
        assert clock() == 5.0
        assert clock.advance(1.5) == 6.5
        assert clock.now == 6.5
        clock.sleep(0.5)
        assert clock() == 7.0

    def test_time_does_not_flow_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=3, **fleet_kw) -> ShardedFleet:
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=2,
        server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                            cache_bytes=0), **fleet_kw))


class TestReplayHarness:
    def test_rejects_unregistered_models(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m0", model, problem)
        with pytest.raises(ValueError, match="not registered"):
            ReplayHarness(fleet, _scenario(models=("m0", "ghost")))

    def test_rejects_bad_time_scale(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m0", model, problem)
        fleet.register_model("m1", model, problem)
        with pytest.raises(ValueError, match="time_scale"):
            ReplayHarness(fleet, _scenario(), time_scale=0.0)

    def test_storm_completes_with_nothing_lost(self, served):
        """Kill + hang + flap under zipfian load: the acceptance storm
        at unit-test scale.  Every request accounted, lost == 0, and
        the executed log equals the scenario's expansion."""
        model, problem = served
        scenario = _scenario(
            name="mini-storm", seed=11, duration_s=1.6,
            models=("m0", "m1"),
            arrivals=ArrivalSpec(rate=40.0),
            tenants=(TenantSpec("interactive", weight=1.0, priority=5),
                     TenantSpec("bulk", weight=2.0)),
            faults=(FaultSpec(t=0.2, op="flap", shard=1, period_s=0.3,
                              count=2),
                    FaultSpec(t=0.5, op="kill", shard=2, duration_s=0.6),
                    FaultSpec(t=0.8, op="hang", shard=0, duration_s=0.4)))
        fleet = _fleet(shards=3, shard_timeout_s=0.2)
        fleet.register_model("m0", model, problem)
        fleet.register_model("m1", model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=4, base_backoff_s=0.002, max_backoff_s=0.02)))
        with fleet:
            harness = ReplayHarness(fleet, scenario)
            report = harness.run()
        assert report.scenario == "mini-storm"
        assert report.requests > 0
        assert sum(report.outcomes.values()) == report.requests
        assert report.lost == 0
        assert report.served == report.requests     # everything healed
        assert report.log == event_log(build_trace(
            scenario, omega_dim=int(problem.field.m)))

    def test_same_seed_replays_identical_logs(self, served):
        model, problem = served
        scenario = _scenario(duration_s=0.5,
                             arrivals=ArrivalSpec(rate=30.0))

        def run_once() -> str:
            fleet = _fleet(shards=2)
            fleet.register_model("m0", model, problem)
            fleet.register_model("m1", model, problem)
            with fleet:
                return ReplayHarness(fleet, scenario).run().log

        assert run_once() == run_once()

    def test_chaos_hooks_are_restored_after_the_run(self, served):
        model, problem = served
        scenario = _scenario(
            duration_s=0.4, models=("m0",),
            arrivals=ArrivalSpec(rate=20.0),
            faults=(FaultSpec(t=0.1, op="kill", shard=0),))  # never restored
        fleet = _fleet(shards=2)
        fleet.register_model("m0", model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=4, base_backoff_s=0.002, max_backoff_s=0.02)))
        originals = [s.server.submit for s in fleet.shards]
        with fleet:
            report = ReplayHarness(fleet, scenario).run()
            assert report.lost == 0
            # The finally-block put every submit hook back even though
            # the scenario never scheduled a restore.
            assert [s.server.submit for s in fleet.shards] == originals


class TestCommittedStorm:
    def test_storm_json_parses_and_expands_deterministically(self):
        scenario = load_scenario(STORM_JSON)
        assert scenario.name == "storm"
        assert scenario.models == ("m0", "m1", "m2")
        assert {f.op for f in scenario.faults} == {"kill", "hang", "flap"}
        assert scenario.arrivals.diurnal_amplitude > 0
        assert scenario.popularity.kind == "zipf"
        names = {t.name for t in scenario.tenants}
        assert names == {"interactive", "bulk"}
        a = event_log(build_trace(scenario, omega_dim=4))
        b = event_log(build_trace(scenario, omega_dim=4))
        assert a == b
        assert len(a.splitlines()) > 100


# --------------------------------------------------------------------- #
# Chaos hooks: stream coverage + re-entrant faults + abort hygiene
# --------------------------------------------------------------------- #
import threading
import time

import numpy as np

from repro.serve.replay import ShardChaos


class TestShardChaosStreams:
    """The fault actuators must cover the streaming path too, and must
    stay reversible under re-entry and mid-run aborts.

    Regressions pinned:

    * a second ``hang`` before the first released used to swap in a
      fresh Event and *orphan* the previous one — threads parked on the
      superseded gate were unreachable by ``release``/``restore`` and
      hung forever (a leaked shard after the harness's ``finally``);
    * ``kill`` only downed ``submit``, so a scripted dead shard kept
      accepting streams; ``hang`` only gated ``_forward``, so streams
      sailed through a scripted stall.
    """

    def _one_shard_fleet(self, served) -> ShardedFleet:
        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=1, replicas=1,
            server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                                cache_bytes=0, tile=8)))
        fleet.register_model("m0", model, problem)
        return fleet

    def test_kill_also_downs_submit_stream(self, served):
        fleet = self._one_shard_fleet(served)
        shard = fleet.shards[0]
        chaos = ShardChaos(shard)
        chaos.kill()
        with pytest.raises(ConnectionError):
            shard.server.submit_stream("m0", np.zeros(4))
        chaos.restore()
        stream = shard.server.submit_stream("m0", np.zeros(4))
        assert sorted(i for i, _, _ in stream) == \
            list(range(stream.num_tiles))

    def test_hang_gates_stream_production_until_release(self, served):
        fleet = self._one_shard_fleet(served)
        shard = fleet.shards[0]
        chaos = ShardChaos(shard)
        chaos.hang()
        stream = shard.server.submit_stream("m0", np.zeros(4))
        got: list[int] = []
        consumer = threading.Thread(
            target=lambda: got.extend(i for i, _, _ in stream))
        consumer.start()
        time.sleep(0.15)
        assert got == []                      # production is gated
        chaos.release()
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        assert sorted(got) == list(range(stream.num_tiles))

    def test_second_hang_frees_the_superseded_gates_waiters(self, served):
        fleet = self._one_shard_fleet(served)
        shard = fleet.shards[0]
        chaos = ShardChaos(shard)
        with fleet:
            chaos.hang()
            future = fleet.submit("m0", np.zeros(4))
            time.sleep(0.1)         # the worker parks on the first gate
            assert not future.done()
            # Re-entrant hang: the new gate takes over, the superseded
            # one opens — its waiter proceeds instead of hanging on an
            # Event nothing can reach anymore.
            chaos.hang()
            assert future.result(timeout=30) is not None
            chaos.restore()
            fleet.predict("m0", np.full(4, 0.5), timeout=30)
        assert fleet.stats.lost == 0

    def test_abort_mid_hang_restores_hooks_and_shard(self, served):
        """A trace that dies while a hang is live must not leak the
        hang: the harness's ``finally`` restores every hook, and the
        shard serves again immediately."""
        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=2, replicas=2,
            server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                                cache_bytes=0, tile=8)))
        fleet.register_model("m0", model, problem)
        scenario = _scenario(
            duration_s=0.4, models=("m0",),
            arrivals=ArrivalSpec(rate=50.0),
            faults=(FaultSpec(t=0.0, op="hang", shard=0, duration_s=5.0),))
        originals = [(s.server.submit, s.server.submit_stream,
                      s.server._forward, s.server._stream_tiles)
                     for s in fleet.shards]
        with fleet:
            harness = ReplayHarness(fleet, scenario)

            def client_bug(*args, **kwargs):
                raise RuntimeError("client-side abort mid-trace")

            fleet.submit = client_bug     # first paced request aborts...
            try:
                with pytest.raises(RuntimeError, match="mid-trace"):
                    harness.run()         # ...while the hang is live
            finally:
                del fleet.submit
            assert [(s.server.submit, s.server.submit_stream,
                     s.server._forward, s.server._stream_tiles)
                    for s in fleet.shards] == originals
            # The hung shard did not leak: serving resumes at once.
            fleet.predict("m0", np.full(4, 0.25), timeout=30)
        assert fleet.stats.lost == 0
