"""Sharded fleet semantics: routing, registry fan-out, stats, facade.

The fault-injection storms live in ``test_fleet_faults.py``; this file
pins the deterministic contracts — where writes land, where reads
route, that routed answers equal single-server answers, and that the
asyncio facade is shard-aware without modification.
"""

import asyncio

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    AsyncPredictionServer, FleetConfig, ModelRegistry, PredictionServer,
    RegistryError, ServerConfig, ShardedFleet, state_version,
)

RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=3, replicas=2, **server_kw) -> ShardedFleet:
    kw = dict(max_batch=4, max_wait_ms=0.0, workers=1, cache_bytes=0)
    kw.update(server_kw)
    return ShardedFleet(FleetConfig(shards=shards, replicas=replicas,
                                    server=ServerConfig(**kw)))


class TestRegistryFanOut:
    def test_register_lands_on_exactly_r_replicas(self, served):
        model, problem = served
        fleet = _fleet(shards=4, replicas=2)
        fleet.register_model("m", model, problem)
        holders = [s.id for s in fleet.shards
                   if "m" in s.server.registry.names()]
        assert sorted(holders) == sorted(fleet.replicas_for("m"))
        assert len(holders) == 2

    def test_replica_set_matches_ring_over_name_and_version(self, served):
        model, problem = served
        fleet = _fleet(shards=4, replicas=2)
        fleet.register_model("m", model, problem)
        expected = fleet._ring.lookup(("m", state_version(model)), n=2)
        assert fleet.replicas_for("m") == expected

    def test_routing_is_stable_across_fleets(self, served):
        """Two fleets with the same topology agree on every route — the
        consistent-hash determinism the multi-host story needs."""
        model, problem = served
        a, b = _fleet(shards=4), _fleet(shards=4)
        for f in (a, b):
            f.register_model("m", model, problem)
        assert a.replicas_for("m") == b.replicas_for("m")

    def test_unregister_fans_out_everywhere(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        fleet.unregister("m")
        assert fleet.names() == ()
        assert all("m" not in s.server.registry.names()
                   for s in fleet.shards)
        with pytest.raises(RegistryError):
            fleet.get("m")

    def test_unknown_model_raises_keyed_registry_error(self, served):
        fleet = _fleet()
        with pytest.raises(RegistryError, match="fleet"):
            fleet.submit("ghost", np.zeros(4))

    def test_models_spread_across_shards(self, served):
        """Many models occupy many shards — the registry is sharded,
        not mirrored."""
        model, problem = served
        fleet = _fleet(shards=4, replicas=1)
        for i in range(12):
            fleet.register_model(f"m{i}", model, problem)
        owners = {s.id for s in fleet.shards if s.server.registry.names()}
        assert len(owners) >= 3

    def test_reregister_updates_catalog_version(self, served):
        model, problem = served
        fleet = _fleet(shards=4, replicas=2)
        fleet.register_model("m", model, problem)
        v1 = fleet._catalog["m"]
        other = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=99)
        fleet.register_model("m", other, problem)
        v2 = fleet._catalog["m"]
        assert v1 != v2
        # Every shard still holding "m" holds the *new* version.
        for shard in fleet.shards:
            if "m" in shard.server.registry.names():
                assert shard.server.registry.get("m").version == v2


class TestRoutedServing:
    def test_predict_matches_single_server(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omegas = RNG.uniform(-3, 3, (6, 4))
        with fleet:
            got = np.stack([fleet.predict("m", w, timeout=30)
                            for w in omegas])
        ref = predict_batch(model, problem, omegas)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_predict_many_gathers(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omegas = RNG.uniform(-3, 3, (5, 4))
        with fleet:
            got = fleet.predict_many("m", omegas, timeout=30)
        np.testing.assert_allclose(got, predict_batch(model, problem, omegas),
                                   atol=1e-5)

    def test_sync_frontend_without_start(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omega = RNG.uniform(-3, 3, 4)
        u = fleet.predict("m", omega)
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)

    def test_load_spreads_over_shards(self, served):
        """With R=1 and several models, requests land on several
        shards — the request load is partitioned, not funneled."""
        model, problem = served
        fleet = _fleet(shards=4, replicas=1)
        names = [f"m{i}" for i in range(8)]
        for name in names:
            fleet.register_model(name, model, problem)
        omega = RNG.uniform(-3, 3, 4)
        with fleet:
            for name in names:
                fleet.predict(name, omega, timeout=30)
        busy = [s.id for s in fleet.shards if s.server.stats.requests > 0]
        assert len(busy) >= 3

    def test_stats_merge_and_conservation(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omegas = RNG.uniform(-3, 3, (8, 4))
        with fleet:
            futures = [fleet.submit("m", w) for w in omegas]
            for f in futures:
                f.result(timeout=30)
        s = fleet.stats
        assert s.submitted == 8
        assert s.served == 8
        assert s.lost == 0
        assert s.requests == 8          # summed per-shard accepted
        assert sum(d["requests"] for d in s.per_shard.values()) == 8
        # Every request is two hops: ω out, field back.
        assert s.send_calls == 16
        assert s.send_bytes > 0

    def test_wrong_arity_omega_is_request_error_not_fault(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        with pytest.raises(ValueError, match="expects omega"):
            fleet.submit("m", np.zeros(3))
        s = fleet.stats
        assert s.errors == 1
        assert s.shard_faults == 0
        assert s.healthy_shards == 3
        assert s.lost == 0

    def test_virtual_clock_charged_with_time_model(self, served):
        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=2, replicas=1,
            server=ServerConfig(max_batch=2, max_wait_ms=0, cache_bytes=0),
            time_model=lambda nbytes, world: nbytes * 1e-9 + 1e-6))
        fleet.register_model("m", model, problem)
        fleet.predict("m", RNG.uniform(-3, 3, 4))
        assert fleet.stats.virtual_comm_seconds > 0

    def test_per_shard_spill_dirs_are_disjoint(self, served, tmp_path):
        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=3, replicas=1,
            server=ServerConfig(max_batch=2, max_wait_ms=0,
                                cache_dir=str(tmp_path / "spill"))))
        fleet.register_model("m", model, problem)
        dirs = {s.server.config.cache_dir for s in fleet.shards}
        assert len(dirs) == 3
        for shard in fleet.shards:
            assert shard.id in shard.server.config.cache_dir


class TestShardAwareAioFacade:
    def test_async_predict_over_fleet(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omega = RNG.uniform(-3, 3, 4)

        async def run():
            async with AsyncPredictionServer(fleet) as aserver:
                return await aserver.predict("m", omega)

        u = asyncio.run(run())
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)
        assert fleet.stats.lost == 0
        assert not fleet.running       # __aexit__ closed the fleet

    def test_async_failover_is_transparent(self, served):
        """An awaited request served by a replica after the primary
        faults resolves normally — shard-awareness for free."""
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        primary = next(s for s in fleet.shards
                       if s.id == fleet.replicas_for("m")[0])

        def boom(entry, omegas, resolution):
            raise RuntimeError("injected fault")

        primary.server._forward = boom
        omega = RNG.uniform(-3, 3, 4)

        async def run():
            async with AsyncPredictionServer(fleet) as aserver:
                return await aserver.predict("m", omega)

        u = asyncio.run(run())
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)
        assert not primary.healthy
        assert fleet.stats.failovers >= 1

    def test_async_hang_failover(self, served):
        """A hung shard is ejected from the event loop too: the facade
        re-waits in shard_timeout_s slices and calls hang_failover, so
        an await recovers instead of blocking forever."""
        import threading

        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=3, replicas=2, shard_timeout_s=0.25,
            server=ServerConfig(max_batch=4, max_wait_ms=0,
                                cache_bytes=0)))
        fleet.register_model("m", model, problem)
        primary = next(s for s in fleet.shards
                       if s.id == fleet.replicas_for("m")[0])
        release = threading.Event()
        forward = primary.server._forward

        def hung(entry, omegas, resolution):
            assert release.wait(timeout=60)
            return forward(entry, omegas, resolution)

        primary.server._forward = hung
        omega = RNG.uniform(-3, 3, 4)

        async def run():
            async with AsyncPredictionServer(fleet) as aserver:
                u = await asyncio.wait_for(aserver.predict("m", omega), 30)
                release.set()
                return u

        u = asyncio.run(run())
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)
        assert not primary.healthy
        s = fleet.stats
        assert s.hangs == 1
        assert s.served == 1 and s.lost == 0

    def test_async_client_timeout_sheds_fleet_request(self, served):
        """A client-side asyncio timeout cancels the underlying fleet
        request (the hang guard's shield must not swallow it) — counted
        as cancelled, never served, books balanced."""
        import threading

        model, problem = served
        fleet = ShardedFleet(FleetConfig(
            shards=2, replicas=1, shard_timeout_s=30.0,
            server=ServerConfig(max_batch=2, max_wait_ms=0,
                                cache_bytes=0)))
        fleet.register_model("m", model, problem)
        primary = next(s for s in fleet.shards
                       if s.id == fleet.replicas_for("m")[0])
        entered = threading.Event()
        release = threading.Event()
        forward = primary.server._forward

        def hung(entry, omegas, resolution):
            entered.set()
            assert release.wait(timeout=60)
            return forward(entry, omegas, resolution)

        primary.server._forward = hung
        omega = RNG.uniform(-3, 3, 4)

        async def run():
            async with AsyncPredictionServer(fleet) as aserver:
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(aserver.predict("m", omega), 0.5)
                assert entered.wait(timeout=30)
                release.set()

        asyncio.run(run())          # __aexit__ drains the worker
        s = fleet.stats
        assert s.cancelled == 1
        assert s.served == 0
        assert s.lost == 0
