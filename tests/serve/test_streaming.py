"""Streaming tiled inference: every layer, every edge.

The contract under test, at each layer of the stack:

* tiling — :func:`stream_tiled_predict` yields ``(tile_index,
  core_slices, core)`` records whose assembly is *bitwise* equal to
  :func:`tiled_predict`, whatever the executor, tile raggedness or
  backend; tile indices are deterministic even when completion order
  is not.
* server — ``submit_stream`` routes records through the existing
  priority/deadline/backpressure machinery: per-tile deadline checks
  (a dead stream carries ``tiles_delivered``), cache hits stream from
  the stored field, bounded buffers backpressure the producing worker.
* fleet — ``ShardedFleet.stream`` fails over mid-stream: delivered
  tiles are never re-sent, the replacement replica resumes from the
  undelivered tile set, and the conservation law (lost == 0) holds.
* asyncio — ``AsyncPredictionServer.stream`` is the same stream as an
  ``async for``, early exit closing the producer.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, PoissonProblem3D
from repro.backend import set_backend
from repro.core.inference import predict_batch
from repro.serve import (
    AsyncPredictionServer, DeadlineExceeded, FleetConfig, ModelRegistry,
    PredictionServer, ServerConfig, ShardedFleet, make_executor,
    stream_tiled_predict, tiled_predict,
)

RNG = np.random.default_rng(19)


def _omegas(n=2):
    return RNG.uniform(-3.0, 3.0, size=(n, 4))


def _assemble(records, shape, batch, dtype=np.float64):
    """Stitch tiling-layer records (core shape ``(B, *core)``)."""
    out = np.empty((batch,) + shape, dtype=dtype)
    ids = []
    for i, sl, core in records:
        out[(slice(None),) + sl] = core
        ids.append(i)
    return out, ids


# --------------------------------------------------------------------- #
# Tiling layer
# --------------------------------------------------------------------- #
class TestStreamTiling:
    @pytest.fixture(scope="class")
    def small2d(self):
        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
        omegas = _omegas(2)
        ref = tiled_predict(model, problem, omegas, tile=8)
        return problem, model, omegas, ref

    def test_serial_assembly_bitwise_equal(self, small2d):
        problem, model, omegas, ref = small2d
        got, ids = _assemble(
            stream_tiled_predict(model, problem, omegas, tile=8),
            (16, 16), 2)
        np.testing.assert_array_equal(got, ref)
        assert sorted(ids) == list(range(4))

    def test_thread_assembly_bitwise_equal(self, small2d):
        problem, model, omegas, ref = small2d
        with make_executor("thread", 2) as executor:
            got, ids = _assemble(
                stream_tiled_predict(model, problem, omegas, tile=8,
                                     executor=executor),
                (16, 16), 2)
        np.testing.assert_array_equal(got, ref)
        assert sorted(ids) == list(range(4))

    def test_process_assembly_bitwise_equal(self, small2d):
        problem, model, omegas, ref = small2d
        with make_executor("process", 2) as executor:
            got, ids = _assemble(
                stream_tiled_predict(model, problem, omegas, tile=8,
                                     executor=executor),
                (16, 16), 2)
        np.testing.assert_array_equal(got, ref)
        assert sorted(ids) == list(range(4))

    def test_ragged_halo_wider_than_remainder(self):
        # 12^3 with tile=8 leaves remainder 4 < halo 8 on every axis:
        # the ragged corner the aligned benchmarks never see.
        problem = PoissonProblem3D(12)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=5)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        exact = tiled_predict(model, problem, omegas, tile=8, halo=8)
        got, ids = _assemble(
            stream_tiled_predict(model, problem, omegas, tile=8, halo=8),
            (12, 12, 12), 2)
        np.testing.assert_array_equal(got, exact)
        assert np.abs(got - ref).max() <= 1e-5
        assert sorted(ids) == list(range(8))

    def test_single_tile_stream(self):
        # The whole grid in one tile: exactly one record, full cover.
        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=2)
        omegas = _omegas(1)
        records = list(stream_tiled_predict(model, problem, omegas,
                                            tile=16))
        assert len(records) == 1
        i, sl, core = records[0]
        assert i == 0 and core.shape == (1, 16, 16)
        np.testing.assert_array_equal(
            core, tiled_predict(model, problem, omegas, tile=16))

    def test_tile_subset_yields_only_requested(self, small2d):
        problem, model, omegas, ref = small2d
        records = list(stream_tiled_predict(model, problem, omegas,
                                            tile=8, tiles=[3, 1]))
        assert sorted(i for i, _, _ in records) == [1, 3]
        for i, sl, core in records:
            np.testing.assert_array_equal(core,
                                          ref[(slice(None),) + sl])

    def test_bad_tile_subset_rejected(self, small2d):
        problem, model, omegas, _ = small2d
        with pytest.raises(ValueError, match="tile"):
            list(stream_tiled_predict(model, problem, omegas, tile=8,
                                      tiles=[0, 99]))

    def test_lazy_backend_parity_bitwise(self, small2d):
        problem, model, omegas, _ = small2d
        set_backend("lazy")
        try:
            ref = tiled_predict(model, problem, omegas, tile=8)
            got, _ = _assemble(
                stream_tiled_predict(model, problem, omegas, tile=8),
                (16, 16), 2)
        finally:
            set_backend("numpy")
        np.testing.assert_array_equal(got, ref)

    def test_early_close_restores_train_mode(self, small2d):
        problem, model, omegas, _ = small2d
        gen = stream_tiled_predict(model, problem, omegas, tile=8)
        next(gen)
        assert not model.net.training      # eval pinned while consuming
        gen.close()
        assert model.net.training          # restored on early close


# --------------------------------------------------------------------- #
# Server layer
# --------------------------------------------------------------------- #
@pytest.fixture()
def server3d():
    problem = PoissonProblem3D(16)
    model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=3)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    server = PredictionServer(registry, ServerConfig(
        max_batch=4, max_wait_ms=0.0, workers=1, cache_bytes=1 << 20,
        tile=8, halo=4))
    return server, model, problem


class TestServerStream:
    def test_push_mode_parity_and_counters(self, server3d):
        server, model, problem = server3d
        omega = _omegas(1)[0]
        exact = tiled_predict(model, problem, omega, tile=8, halo=4)[0]
        out = np.empty_like(exact)
        with server:
            stream = server.submit_stream("m", omega)
            assert stream.num_tiles == 8
            for i, sl, core in stream:
                out[sl] = core
        np.testing.assert_array_equal(out, exact)
        assert stream.delivered == 8
        assert server.stats.streams == 1
        assert server.stats.stream_tiles == 8

    def test_cache_hit_streams_stored_field(self, server3d):
        server, model, problem = server3d
        omega = _omegas(1)[0]
        with server:
            full = server.predict("m", omega)      # fills the cache
            hits0 = server.cache.stats.hits
            out = np.empty_like(full)
            for i, sl, core in server.submit_stream("m", omega):
                out[sl] = core
        np.testing.assert_array_equal(out, full)
        assert server.cache.stats.hits == hits0 + 1
        assert server.stats.tiled_forwards == 1    # no recompute

    def test_dead_stream_carries_tiles_delivered(self, server3d):
        server, model, problem = server3d
        with server:
            with pytest.raises(DeadlineExceeded) as err:
                for _ in server.submit_stream("m", _omegas(1)[0],
                                              deadline_s=1e-4):
                    pass
        assert err.value.tiles_delivered == 0
        assert "0 stream tiles delivered" in str(err.value)
        assert server.stats.expired == 1

    def test_slow_consumer_backpressures_producer(self, server3d):
        """With a bounded per-stream buffer the producer may run at
        most ``buffer + in-flight slack`` tiles ahead of the consumer,
        never the whole stream."""
        server, model, problem = server3d
        produced = []
        inner = server._stream_tiles

        def counting(*args, **kwargs):
            for rec in inner(*args, **kwargs):
                produced.append(rec[0])
                yield rec

        server._stream_tiles = counting
        max_lead = 0
        with server:
            stream = server.submit_stream("m", _omegas(1)[0],
                                          buffer_tiles=1)
            consumed = 0
            for _ in stream:
                consumed += 1
                time.sleep(0.05)       # slow consumer
                max_lead = max(max_lead, len(produced) - consumed)
        assert consumed == 8
        # buffer (1) + the record in the producer's hand (1): the pool
        # never raced ahead of the consumer beyond the bound.
        assert max_lead <= 2

    def test_stream_not_running_pull_mode(self, server3d):
        server, model, problem = server3d
        omega = _omegas(1)[0]
        exact = tiled_predict(model, problem, omega, tile=8, halo=4)[0]
        out = np.empty_like(exact)
        for i, sl, core in server.submit_stream("m", omega):
            out[sl] = core
        np.testing.assert_array_equal(out, exact)

    def test_stream_requests_never_fuse(self, server3d):
        from repro.serve import PredictRequest

        server, _, _ = server3d
        a = PredictRequest("m", _omegas(1)[0], 16, None, stream=object())
        b = PredictRequest("m", _omegas(1)[0], 16, None, stream=object())
        assert a.group_key() != b.group_key()


# --------------------------------------------------------------------- #
# Fleet layer
# --------------------------------------------------------------------- #
def _streaming_fleet(model, problem) -> ShardedFleet:
    fleet = ShardedFleet(FleetConfig(
        shards=2, replicas=2,
        server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                            cache_bytes=0, tile=8, halo=4)))
    fleet.register_model("m", model, problem)
    return fleet


class TestFleetStream:
    @pytest.fixture(scope="class")
    def served(self):
        problem = PoissonProblem3D(16)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=4)
        return model, problem

    def test_clean_stream_conserved(self, served):
        model, problem = served
        fleet = _streaming_fleet(model, problem)
        omega = _omegas(1)[0]
        exact = tiled_predict(model, problem, omega, tile=8, halo=4)[0]
        out = np.empty_like(exact)
        with fleet:
            for i, sl, core in fleet.stream("m", omega):
                out[sl] = core
        np.testing.assert_array_equal(out, exact)
        s = fleet.stats
        assert s.streams == 1 and s.served == 1
        assert s.stream_tiles_delivered == 8
        assert s.stream_resumed == 0
        assert s.lost == 0

    def test_mid_stream_kill_resumes_without_resend(self, served):
        model, problem = served
        fleet = _streaming_fleet(model, problem)
        armed = {"live": True}
        for shard in fleet.shards:
            inner = shard.server._stream_tiles

            def dying(*args, _inner=inner, **kwargs):
                for n, rec in enumerate(_inner(*args, **kwargs)):
                    if armed["live"] and n == 2:
                        armed["live"] = False
                        raise OSError("scripted mid-stream death")
                    yield rec

            shard.server._stream_tiles = dying
        omega = _omegas(1)[0]
        exact = tiled_predict(model, problem, omega, tile=8, halo=4)[0]
        out = np.empty_like(exact)
        seen = []
        with fleet:
            for i, sl, core in fleet.stream("m", omega):
                seen.append(i)
                out[sl] = core
        assert not armed["live"]                  # the kill fired
        assert sorted(seen) == list(range(8))     # all tiles, exactly once
        assert len(seen) == len(set(seen))        # none re-sent
        np.testing.assert_array_equal(out, exact)
        s = fleet.stats
        assert s.stream_resumed == 1
        assert s.stream_tiles_delivered == 8
        assert s.failovers == 1
        assert s.served == 1 and s.lost == 0

    def test_abandoned_stream_counts_cancelled(self, served):
        model, problem = served
        fleet = _streaming_fleet(model, problem)
        with fleet:
            it = fleet.stream("m", _omegas(1)[0])
            next(it)
            it.close()                            # client walks away
        s = fleet.stats
        assert s.cancelled == 1
        assert s.lost == 0


# --------------------------------------------------------------------- #
# Asyncio layer
# --------------------------------------------------------------------- #
class TestAioStream:
    def test_async_for_parity(self, server3d):
        server, model, problem = server3d
        omega = _omegas(1)[0]
        exact = tiled_predict(model, problem, omega, tile=8, halo=4)[0]
        out = np.empty_like(exact)

        async def consume():
            async with AsyncPredictionServer(server) as aserver:
                async for i, sl, core in aserver.stream(
                        "m", omega, buffer_tiles=1):
                    out[sl] = core

        asyncio.run(consume())
        np.testing.assert_array_equal(out, exact)

    def test_early_break_closes_stream(self, server3d):
        server, model, problem = server3d

        async def consume_two():
            taken = 0
            async with AsyncPredictionServer(server) as aserver:
                async for _ in aserver.stream("m", _omegas(1)[0],
                                              buffer_tiles=1):
                    taken += 1
                    if taken == 2:
                        break
            return taken

        assert asyncio.run(consume_two()) == 2
        # The producer was released: the worker thread is not stuck
        # emitting into a closed buffer (close() drained + notified).
        for t in threading.enumerate():
            assert not t.name.startswith("stream-leak")
