"""Executor abstraction and parallel tiled inference.

The contract under test: serial, thread and process executors produce
*identical* stitched fields (tiles are independent and stitching is
order-deterministic), process workers re-initialise their backend, and
the server's worker fleet runs correctly over every executor kind.
"""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    EXECUTOR_KINDS, ModelRegistry, PredictionServer, ProcessExecutor,
    SerialExecutor, ServerConfig, ThreadExecutor, make_executor,
    tiled_predict,
)
from repro.serve.executor import default_workers

RNG = np.random.default_rng(23)


def _square(x):
    return x * x


def _backend_name(_):
    from repro.backend import get_backend

    return get_backend().name


def _pool_identity(_):
    import os
    import threading

    return (os.getpid(), threading.current_thread().name)


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(32)
    model = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=3)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    return model, problem, registry


class TestConstruction:
    def test_kinds(self):
        assert make_executor("serial").kind == "serial"
        assert make_executor("thread", 2).kind == "thread"
        assert make_executor("process", 2).kind == "process"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu-cluster")

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_worker_counts(self):
        assert SerialExecutor().workers == 1
        assert ThreadExecutor(3).workers == 3
        assert ProcessExecutor(2).workers == 2

    def test_close_is_idempotent(self):
        for kind in EXECUTOR_KINDS:
            ex = make_executor(kind, 2)
            ex.close()
            ex.close()


class TestMapSemantics:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_ordered_results(self, kind):
        with make_executor(kind, 2) as ex:
            assert ex.map(_square, range(7)) == [i * i for i in range(7)]

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_empty_input(self, kind):
        with make_executor(kind, 2) as ex:
            assert ex.map(_square, []) == []

    def test_thread_workers_pin_creator_backend(self):
        with ThreadExecutor(2, backend="threaded") as ex:
            names = ex.map(_backend_name, range(4))
        assert set(names) == {"threaded"}

    def test_process_workers_reinit_backend(self):
        with ProcessExecutor(2, backend="threaded") as ex:
            names = ex.map(_backend_name, range(4))
        assert set(names) == {"threaded"}

    def test_process_tasks_run_in_other_processes(self):
        import os

        with ProcessExecutor(2) as ex:
            pids = {pid for pid, _ in ex.map(_pool_identity, range(6))}
        assert os.getpid() not in pids


class TestTiledParity:
    """Serial vs thread vs process give identical stitched fields."""

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_parallel_matches_sequential(self, served, kind):
        model, problem, _ = served
        omegas = RNG.uniform(-3, 3, size=(2, 4))
        sequential = tiled_predict(model, problem, omegas, tile=8)
        with make_executor(kind, 2) as ex:
            parallel = tiled_predict(model, problem, omegas, tile=8,
                                     executor=ex)
        np.testing.assert_array_equal(parallel, sequential)

    def test_parallel_matches_full_forward(self, served):
        model, problem, _ = served
        omegas = RNG.uniform(-3, 3, size=(2, 4))
        ref = predict_batch(model, problem, omegas)
        with make_executor("process", 2) as ex:
            got = tiled_predict(model, problem, omegas, tile=8, executor=ex)
        assert np.abs(got - ref).max() <= 1e-5

    def test_ragged_grid_parallel_exact(self):
        problem = PoissonProblem2D(24)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=5)
        omegas = RNG.uniform(-3, 3, size=(2, 4))
        sequential = tiled_predict(model, problem, omegas, tile=16)
        with make_executor("thread", 2) as ex:
            parallel = tiled_predict(model, problem, omegas, tile=16,
                                     executor=ex)
        np.testing.assert_array_equal(parallel, sequential)

    def test_serial_executor_is_neutral(self, served):
        model, problem, _ = served
        omegas = RNG.uniform(-3, 3, size=(2, 4))
        sequential = tiled_predict(model, problem, omegas, tile=8)
        got = tiled_predict(model, problem, omegas, tile=8,
                            executor=SerialExecutor())
        np.testing.assert_array_equal(got, sequential)


class TestServerExecutors:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_worker_frontend_parity(self, served, kind):
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(6, 4))
        ref = predict_batch(model, problem, omegas)
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=10, workers=2, executor=kind))
        try:
            with server:
                got = server.predict_many("m", omegas, timeout=120)
        finally:
            server.close()
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_process_executor_tiled_forwards(self, served):
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(3, 4))
        ref = predict_batch(model, problem, omegas)
        server = PredictionServer(registry, ServerConfig(
            workers=2, executor="process", tile=16,
            tile_threshold_voxels=64))
        try:
            got = server.predict_many("m", omegas, timeout=120)
        finally:
            server.close()
        np.testing.assert_allclose(got, ref, atol=1e-5)
        assert server.stats.tiled_forwards >= 1

    def test_executor_error_propagates(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            workers=1, executor="process"))
        try:
            with server:
                future = server.submit("m", np.zeros(4), resolution=7)
                with pytest.raises(ValueError):
                    future.result(timeout=120)
        finally:
            server.close()

    def test_restart_after_stop(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            workers=1, executor="thread"))
        try:
            with server:
                server.predict("m", RNG.uniform(-3, 3, 4), timeout=120)
            with server:
                server.predict("m", RNG.uniform(-3, 3, 4), timeout=120)
        finally:
            server.close()
