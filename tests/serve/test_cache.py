"""LRU result cache: hit/eviction semantics and key quantization."""

import numpy as np
import pytest

from repro.serve import LRUCache, quantize_omega, result_key


def _field(value: float, n: int = 8) -> np.ndarray:
    return np.full((n, n), value, dtype=np.float32)


class TestQuantization:
    def test_nearby_omegas_share_a_key(self):
        a = quantize_omega(np.array([0.1, -0.2, 0.3, 0.4]))
        b = quantize_omega(np.array([0.1 + 4e-7, -0.2, 0.3, 0.4]))
        assert a == b

    def test_distant_omegas_differ(self):
        a = quantize_omega(np.array([0.1, 0.2, 0.3, 0.4]))
        b = quantize_omega(np.array([0.1 + 1e-3, 0.2, 0.3, 0.4]))
        assert a != b

    def test_negative_zero_collapses(self):
        assert quantize_omega(np.array([-1e-9])) == quantize_omega(
            np.array([1e-9]))

    def test_result_key_separates_versions_and_resolutions(self):
        sig = (2, 16, (1.0, 2.0), (-3.0, 3.0))
        w = np.zeros(4)
        assert result_key("v1", sig, w, 16) != result_key("v2", sig, w, 16)
        assert result_key("v1", sig, w, 16) != result_key("v1", sig, w, 32)


class TestLRU:
    def test_hit_returns_stored_field(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        got = cache.get(("k",))
        np.testing.assert_array_equal(got, _field(1.0))
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_miss_recorded(self):
        cache = LRUCache(max_bytes=1 << 20)
        assert cache.get(("absent",)) is None
        assert cache.stats.misses == 1

    def test_byte_bound_evicts_lru(self):
        one = _field(0.0).nbytes
        cache = LRUCache(max_bytes=2 * one)
        cache.put(("a",), _field(1.0))
        cache.put(("b",), _field(2.0))
        cache.get(("a",))              # refresh 'a': 'b' is now LRU
        cache.put(("c",), _field(3.0))
        assert cache.get(("b",)) is None
        np.testing.assert_array_equal(cache.get(("a",)), _field(1.0))
        np.testing.assert_array_equal(cache.get(("c",)), _field(3.0))
        assert cache.stats.evictions == 1
        assert cache.stats.bytes_cached <= cache.max_bytes

    def test_oversized_entry_not_admitted(self):
        cache = LRUCache(max_bytes=8)
        cache.put(("big",), _field(1.0))
        assert len(cache) == 0

    def test_replacement_updates_bytes(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        cache.put(("k",), _field(2.0))
        assert len(cache) == 1
        assert cache.stats.bytes_cached == _field(2.0).nbytes
        np.testing.assert_array_equal(cache.get(("k",)), _field(2.0))

    def test_stored_fields_are_immutable(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        got = cache.get(("k",))
        with pytest.raises(ValueError):
            got[0, 0] = 99.0

    def test_put_copies_input(self):
        cache = LRUCache(max_bytes=1 << 20)
        src = _field(1.0)
        cache.put(("k",), src)
        src[:] = -1.0
        np.testing.assert_array_equal(cache.get(("k",)), _field(1.0))

    def test_clear(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        cache.clear()
        assert len(cache) == 0 and cache.stats.bytes_cached == 0


class TestSpill:
    """Disk tier: persistence across 'restarts', self-invalidation."""

    def test_put_writes_one_npz_per_entry(self, tmp_path):
        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        cache.put(("v1", "a"), _field(1.0))
        cache.put(("v1", "b"), _field(2.0))
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert cache.stats.spill_writes == 2

    def test_reload_after_restart(self, tmp_path):
        LRUCache(max_bytes=1 << 20, spill_dir=tmp_path).put(
            ("v1", "a"), _field(3.0))
        fresh = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        got = fresh.get(("v1", "a"))
        np.testing.assert_array_equal(got, _field(3.0))
        assert fresh.stats.spill_hits == 1
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0
        # Promoted to memory: the second get never touches disk.
        fresh.get(("v1", "a"))
        assert fresh.stats.spill_hits == 1 and fresh.stats.hits == 2

    def test_spilled_fields_read_only(self, tmp_path):
        LRUCache(max_bytes=1 << 20, spill_dir=tmp_path).put(
            ("v1", "a"), _field(1.0))
        got = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path).get(
            ("v1", "a"))
        with pytest.raises(ValueError):
            got[0, 0] = 9.0

    def test_version_keys_do_not_collide(self, tmp_path):
        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        cache.put(("v1", "a"), _field(1.0))
        cache.put(("v2", "a"), _field(2.0))
        fresh = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        np.testing.assert_array_equal(fresh.get(("v1", "a")), _field(1.0))
        np.testing.assert_array_equal(fresh.get(("v2", "a")), _field(2.0))

    def test_stale_version_unreachable_and_prunable(self, tmp_path):
        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        cache.put(("v1", "a"), _field(1.0))
        cache.put(("v2", "a"), _field(2.0))
        fresh = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        assert fresh.prune_spill(live_versions=["v2"]) == 1
        assert fresh.get(("v1", "a")) is None
        np.testing.assert_array_equal(fresh.get(("v2", "a")), _field(2.0))

    def test_eviction_from_memory_keeps_disk_copy(self, tmp_path):
        field = _field(1.0)
        cache = LRUCache(max_bytes=field.nbytes, spill_dir=tmp_path)
        cache.put(("v1", "a"), field)
        cache.put(("v1", "b"), _field(2.0))      # evicts 'a' from memory
        assert cache.stats.evictions == 1
        np.testing.assert_array_equal(cache.get(("v1", "a")), _field(1.0))
        assert cache.stats.spill_hits == 1

    def test_oversized_entry_spills_but_not_admitted(self, tmp_path):
        cache = LRUCache(max_bytes=8, spill_dir=tmp_path)
        assert cache.put(("v1", "big"), _field(1.0)) is None
        assert len(cache) == 0
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_oversized_spill_hit_does_not_thrash_memory(self, tmp_path):
        small = _field(1.0, n=4)
        cache = LRUCache(max_bytes=small.nbytes, spill_dir=tmp_path)
        cache.put(("v1", "small"), small)
        cache.put(("v1", "big"), _field(2.0, n=32))   # spill-only
        # Reading the oversized entry serves from disk without evicting
        # the resident hot set.
        np.testing.assert_array_equal(cache.get(("v1", "big")),
                                      _field(2.0, n=32))
        assert cache.stats.evictions == 0
        np.testing.assert_array_equal(cache.get(("v1", "small")), small)
        assert cache.stats.hits == 2

    def test_corrupt_spill_file_treated_as_miss(self, tmp_path):
        from repro.serve.cache import spill_file_name

        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        path = tmp_path / spill_file_name(("v1", "a"))
        path.write_bytes(b"not an npz")
        assert cache.get(("v1", "a")) is None
        assert not path.exists()        # dropped so it cannot shadow

    def test_no_spill_dir_means_memory_only(self, tmp_path):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("v1", "a"), _field(1.0))
        assert cache.stats.spill_writes == 0
        assert cache.spill_dir is None


class TestSpillBudget:
    """Bounded disk tier: LRU file eviction under spill_max_bytes."""

    def _cache(self, tmp_path, budget):
        return LRUCache(max_bytes=1 << 20, spill_dir=tmp_path,
                        spill_max_bytes=budget)

    def _dir_bytes(self, tmp_path):
        return sum(p.stat().st_size for p in tmp_path.glob("*.npz"))

    def test_writes_stay_within_budget(self, tmp_path):
        budget = 3 * 1024
        cache = self._cache(tmp_path, budget)
        for i in range(16):
            cache.put(("v1", i), _field(float(i)))
        assert self._dir_bytes(tmp_path) <= budget
        assert cache.stats.spill_bytes == self._dir_bytes(tmp_path)
        assert cache.stats.spill_evictions > 0

    def test_least_recently_used_file_evicted_first(self, tmp_path):
        one_file = None
        cache = self._cache(tmp_path, 1 << 20)
        cache.put(("v1", 0), _field(0.0))
        one_file = self._dir_bytes(tmp_path)
        # Budget for exactly two files; touch 'a' so 'b' is the LRU.
        cache = self._cache(tmp_path, int(2.5 * one_file))
        cache.put(("v1", "a"), _field(1.0))
        cache.put(("v1", "b"), _field(2.0))
        cache.clear()                       # force gets to hit the disk
        assert cache.get(("v1", "a")) is not None
        cache.clear()
        cache.put(("v1", "c"), _field(3.0))  # evicts one file: 'b'
        cache.clear()
        assert cache.get(("v1", "b")) is None
        np.testing.assert_array_equal(cache.get(("v1", "a")), _field(1.0))
        cache.clear()
        np.testing.assert_array_equal(cache.get(("v1", "c")), _field(3.0))

    def test_oversized_value_not_written(self, tmp_path):
        cache = self._cache(tmp_path, 64)
        cache.put(("v1", "small"), _field(1.0, n=2))
        files_before = set(tmp_path.glob("*.npz"))
        cache.put(("v1", "huge"), _field(2.0, n=64))
        # The huge value must not wipe the tier just to be evicted next.
        assert set(tmp_path.glob("*.npz")) == files_before

    def test_budget_recovered_after_restart(self, tmp_path):
        cache = self._cache(tmp_path, 1 << 20)
        for i in range(4):
            cache.put(("v1", i), _field(float(i)))
        on_disk = self._dir_bytes(tmp_path)
        fresh = self._cache(tmp_path, 1 << 20)
        assert fresh.stats.spill_bytes == on_disk
        # A tighter budget on restart trims the directory immediately.
        trimmed = self._cache(tmp_path, on_disk // 2)
        assert self._dir_bytes(tmp_path) <= on_disk // 2
        assert trimmed.stats.spill_bytes == self._dir_bytes(tmp_path)

    def test_prune_updates_accounting(self, tmp_path):
        cache = self._cache(tmp_path, 1 << 20)
        cache.put(("v1", "a"), _field(1.0))
        cache.put(("v2", "a"), _field(2.0))
        before = cache.stats.spill_bytes
        assert cache.prune_spill(["v2"]) == 1
        assert cache.stats.spill_bytes < before
        assert cache.stats.spill_bytes == self._dir_bytes(tmp_path)

    def test_unbudgeted_spill_unchanged(self, tmp_path):
        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path)
        for i in range(8):
            cache.put(("v1", i), _field(float(i)))
        assert cache.stats.spill_evictions == 0
        assert len(list(tmp_path.glob("*.npz"))) == 8


class TestSpillRecencyTies:
    """Regression: spill recency must survive a coarse-mtime filesystem.

    The old ``os.utime(path)`` stamped the current clock; two touches
    inside one filesystem-mtime tick tied, and the restart re-seed
    (sorted by mtime) broke the tie by directory-scan order — i.e.
    arbitrarily.  Touches now stamp an explicit, process-wide strictly
    increasing nanosecond counter, making the persisted order total
    even when the clock itself never advances.
    """

    def _frozen_clock(self, monkeypatch):
        # The worst case: a clock that never moves between touches.
        from repro.serve import cache as cache_mod

        monkeypatch.setattr(cache_mod.time, "time_ns",
                            lambda: 1_700_000_000_000_000_000)

    def test_touch_stamps_strictly_increasing_mtimes(self, tmp_path,
                                                     monkeypatch):
        from repro.serve.cache import _touch_monotonic

        self._frozen_clock(monkeypatch)
        paths = []
        for i in range(4):
            path = tmp_path / f"f{i}.npz"
            path.write_bytes(b"x")
            _touch_monotonic(path)
            paths.append(path)
        stamps = [p.stat().st_mtime_ns for p in paths]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)   # no ties, ever

    def test_restart_lru_order_survives_tied_clock(self, tmp_path,
                                                   monkeypatch):
        self._frozen_clock(monkeypatch)
        cache = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path,
                         spill_max_bytes=1 << 20)
        for name in ("a", "b", "c"):
            cache.put(("v1", name), _field(1.0))
        one_file = next(tmp_path.glob("*.npz")).stat().st_size
        # Touch order under the frozen clock: b, then a ('c' is LRU
        # from its write; 'b' older than 'a' from the touches).
        cache.clear()
        assert cache.get(("v1", "b")) is not None
        cache.clear()
        assert cache.get(("v1", "a")) is not None
        # Restart with room for exactly two files: the re-seeded
        # recency must evict 'c' (least recent), not whichever file the
        # directory scan happened to list first.
        fresh = LRUCache(max_bytes=1 << 20, spill_dir=tmp_path,
                         spill_max_bytes=int(2.5 * one_file))
        fresh.clear()
        assert fresh.get(("v1", "c")) is None
        np.testing.assert_array_equal(fresh.get(("v1", "b")), _field(1.0))
        fresh.clear()
        np.testing.assert_array_equal(fresh.get(("v1", "a")), _field(1.0))
