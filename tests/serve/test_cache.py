"""LRU result cache: hit/eviction semantics and key quantization."""

import numpy as np
import pytest

from repro.serve import LRUCache, quantize_omega, result_key


def _field(value: float, n: int = 8) -> np.ndarray:
    return np.full((n, n), value, dtype=np.float32)


class TestQuantization:
    def test_nearby_omegas_share_a_key(self):
        a = quantize_omega(np.array([0.1, -0.2, 0.3, 0.4]))
        b = quantize_omega(np.array([0.1 + 4e-7, -0.2, 0.3, 0.4]))
        assert a == b

    def test_distant_omegas_differ(self):
        a = quantize_omega(np.array([0.1, 0.2, 0.3, 0.4]))
        b = quantize_omega(np.array([0.1 + 1e-3, 0.2, 0.3, 0.4]))
        assert a != b

    def test_negative_zero_collapses(self):
        assert quantize_omega(np.array([-1e-9])) == quantize_omega(
            np.array([1e-9]))

    def test_result_key_separates_versions_and_resolutions(self):
        sig = (2, 16, (1.0, 2.0), (-3.0, 3.0))
        w = np.zeros(4)
        assert result_key("v1", sig, w, 16) != result_key("v2", sig, w, 16)
        assert result_key("v1", sig, w, 16) != result_key("v1", sig, w, 32)


class TestLRU:
    def test_hit_returns_stored_field(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        got = cache.get(("k",))
        np.testing.assert_array_equal(got, _field(1.0))
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_miss_recorded(self):
        cache = LRUCache(max_bytes=1 << 20)
        assert cache.get(("absent",)) is None
        assert cache.stats.misses == 1

    def test_byte_bound_evicts_lru(self):
        one = _field(0.0).nbytes
        cache = LRUCache(max_bytes=2 * one)
        cache.put(("a",), _field(1.0))
        cache.put(("b",), _field(2.0))
        cache.get(("a",))              # refresh 'a': 'b' is now LRU
        cache.put(("c",), _field(3.0))
        assert cache.get(("b",)) is None
        np.testing.assert_array_equal(cache.get(("a",)), _field(1.0))
        np.testing.assert_array_equal(cache.get(("c",)), _field(3.0))
        assert cache.stats.evictions == 1
        assert cache.stats.bytes_cached <= cache.max_bytes

    def test_oversized_entry_not_admitted(self):
        cache = LRUCache(max_bytes=8)
        cache.put(("big",), _field(1.0))
        assert len(cache) == 0

    def test_replacement_updates_bytes(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        cache.put(("k",), _field(2.0))
        assert len(cache) == 1
        assert cache.stats.bytes_cached == _field(2.0).nbytes
        np.testing.assert_array_equal(cache.get(("k",)), _field(2.0))

    def test_stored_fields_are_immutable(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        got = cache.get(("k",))
        with pytest.raises(ValueError):
            got[0, 0] = 99.0

    def test_put_copies_input(self):
        cache = LRUCache(max_bytes=1 << 20)
        src = _field(1.0)
        cache.put(("k",), src)
        src[:] = -1.0
        np.testing.assert_array_equal(cache.get(("k",)), _field(1.0))

    def test_clear(self):
        cache = LRUCache(max_bytes=1 << 20)
        cache.put(("k",), _field(1.0))
        cache.clear()
        assert len(cache) == 0 and cache.stats.bytes_cached == 0
