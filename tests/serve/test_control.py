"""Unit tests of the control plane's deterministic cores.

Every loop body (admission, balancing, probing, autoscaling) is a pure
function of an injectable clock and the fleet state it reads, so these
tests forge the clock and stub the fleet — no sleeps, no threads, no
timing assertions.  The real-fleet integration (chaos storms with the
plane running) lives in ``test_control_scenarios.py``.
"""

import time

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.serve import (
    AdmissionController, Autoscaler, ControlConfig, ControlPlane,
    FleetConfig, HealthProber, MicroBatcher, PowerOfTwoBalancer,
    PredictRequest, PredictionServer, RequestQueue, ServerConfig,
    ShardedFleet, TenantQuota, TenantThrottled,
)
from repro.serve.registry import ModelRegistry
from repro.serve.tiling import autotune_tile, tile_candidates

SEED = 20260808


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


class _ForgedClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# --------------------------------------------------------------------- #
# Admission: token buckets
# --------------------------------------------------------------------- #
class TestAdmission:
    def test_burst_then_throttle_then_refill(self):
        clock = _ForgedClock()
        ctrl = AdmissionController(TenantQuota(rate=10.0, burst=3.0),
                                   clock=clock)
        assert [ctrl.try_acquire("t") for _ in range(3)] == [None] * 3
        retry = ctrl.try_acquire("t")
        assert retry == pytest.approx(0.1)     # 1 token / 10 per second
        clock.t += 0.05                        # half a token: still dry
        assert ctrl.try_acquire("t") == pytest.approx(0.05)
        clock.t += 0.05                        # bucket holds exactly 1
        assert ctrl.try_acquire("t") is None

    def test_bucket_caps_at_burst(self):
        clock = _ForgedClock()
        ctrl = AdmissionController(TenantQuota(rate=100.0, burst=2.0),
                                   clock=clock)
        clock.t += 1e6                         # eons idle: still only 2
        assert ctrl.try_acquire("t") is None
        assert ctrl.try_acquire("t") is None
        assert ctrl.try_acquire("t") is not None

    def test_tenants_are_isolated(self):
        clock = _ForgedClock()
        ctrl = AdmissionController(TenantQuota(rate=1.0, burst=1.0),
                                   clock=clock)
        ctrl.set_quota("vip", TenantQuota(rate=1.0, burst=100.0))
        assert ctrl.try_acquire("noisy") is None
        assert ctrl.try_acquire("noisy") is not None   # noisy is dry...
        for _ in range(50):                            # ...vip is not
            assert ctrl.try_acquire("vip") is None
        snap = ctrl.snapshot()
        assert snap["noisy"]["throttled"] == 1
        assert snap["vip"]["admitted"] == 50
        assert ctrl.admitted == 51 and ctrl.throttled == 1

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(rate=0.0, burst=5.0)
        with pytest.raises(ValueError):
            TenantQuota(rate=1.0, burst=0.5)


# --------------------------------------------------------------------- #
# Balancing: power of two choices
# --------------------------------------------------------------------- #
class _StubShard:
    def __init__(self, sid, depth, healthy=True):
        self.id = sid
        self.queue_depth = depth
        self.healthy = healthy

    def __repr__(self):
        return self.id


class TestPowerOfTwo:
    def test_picks_shallower_of_sampled_pair(self):
        balancer = PowerOfTwoBalancer(seed=SEED)
        hot = _StubShard("a", depth=50)
        cold = _StubShard("b", depth=0)
        order = balancer.order([hot, cold])
        # Two replicas: the sample is always {a, b}; cold must win.
        assert order == [cold, hot]
        assert balancer.diversions == 1

    def test_tie_keeps_ring_order(self):
        balancer = PowerOfTwoBalancer(seed=SEED)
        a, b = _StubShard("a", 3), _StubShard("b", 3)
        for _ in range(20):
            assert balancer.order([a, b])[0] is a
        assert balancer.diversions == 0

    def test_result_always_contains_all_replicas(self):
        balancer = PowerOfTwoBalancer(seed=SEED)
        replicas = [_StubShard(f"s{i}", i) for i in range(4)]
        for _ in range(50):
            order = balancer.order(list(replicas))
            assert sorted(s.id for s in order) == \
                sorted(s.id for s in replicas)

    def test_unhealthy_replicas_never_promoted(self):
        balancer = PowerOfTwoBalancer(seed=SEED)
        down = _StubShard("down", 0, healthy=False)
        up1, up2 = _StubShard("up1", 5), _StubShard("up2", 9)
        for _ in range(50):
            assert balancer.order([down, up1, up2])[0] is not down

    def test_single_healthy_replica_keeps_ring_order(self):
        balancer = PowerOfTwoBalancer(seed=SEED)
        replicas = [_StubShard("a", 9),
                    _StubShard("b", 0, healthy=False)]
        assert balancer.order(replicas) == replicas
        assert balancer.decisions == 0

    def test_seeded_replay_is_deterministic(self):
        replicas = [_StubShard(f"s{i}", i % 3) for i in range(5)]
        runs = []
        for _ in range(2):
            balancer = PowerOfTwoBalancer(seed=7)
            runs.append([balancer.order(list(replicas))[0].id
                         for _ in range(30)])
        assert runs[0] == runs[1]

    def test_spreads_load_off_hot_primary(self):
        """Under a 'hot primary' gauge the two-choice rule must divert
        most reads — the property the skew benchmark gates end to end."""
        balancer = PowerOfTwoBalancer(seed=SEED)
        hot = _StubShard("hot", 100)
        cold = _StubShard("cold", 1)
        picks = [balancer.order([hot, cold])[0].id for _ in range(100)]
        assert picks.count("cold") == 100


# --------------------------------------------------------------------- #
# Probing: backoff schedule and permanent loss (stub fleet)
# --------------------------------------------------------------------- #
class _StubFleet:
    """Just enough fleet for the prober: shards, probe, decommission."""

    def __init__(self, shard_ids, probe_results=None):
        import threading
        self._lock = threading.RLock()
        self.shards = [_StubShard(sid, 0) for sid in shard_ids]
        self.probe_results = probe_results or {}   # sid -> bool
        self.probe_log = []
        self.decommissioned = []

    def probe_shard(self, shard, timeout_s=None):
        self.probe_log.append((shard.id, timeout_s))
        ok = self.probe_results.get(shard.id, False)
        if ok:
            shard.healthy = True
        return ok

    def decommission_shard(self, shard_id):
        self.decommissioned.append(shard_id)
        self.shards = [s for s in self.shards if s.id != shard_id]
        return 2   # pretend two (key, shard) re-registrations


class TestHealthProber:
    def test_healthy_fleet_probes_nothing(self):
        fleet = _StubFleet(["a", "b"])
        prober = HealthProber(fleet, clock=_ForgedClock())
        assert prober.tick(now=0.0) == []
        assert fleet.probe_log == []

    def test_exponential_backoff_schedule(self):
        fleet = _StubFleet(["a", "b"])
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=8.0,
                              probe_timeout_s=0.5, jitter=0.0)
        # Failing probes: immediately, then +1, +2, +4, +8, +8, ... s.
        assert prober.tick(now=0.0) == ["a"]
        assert prober.next_probe_at("a") == pytest.approx(1.0)
        assert prober.tick(now=0.5) == []          # inside backoff
        assert prober.tick(now=1.0) == ["a"]
        assert prober.next_probe_at("a") == pytest.approx(3.0)
        assert prober.tick(now=3.0) == ["a"]
        assert prober.next_probe_at("a") == pytest.approx(7.0)
        assert prober.tick(now=7.0) == ["a"]
        assert prober.next_probe_at("a") == pytest.approx(15.0)  # capped
        assert prober.tick(now=15.0) == ["a"]
        assert prober.next_probe_at("a") == pytest.approx(23.0)  # stays 8
        assert prober.probes == 5 and prober.backoffs == 1
        # Every probe carried the short explicit budget.
        assert all(t == 0.5 for _, t in fleet.probe_log)

    def test_successful_probe_readmits_and_resets_schedule(self):
        fleet = _StubFleet(["a"], probe_results={"a": False})
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=8.0,
                              jitter=0.0)
        prober.tick(now=0.0)
        prober.tick(now=1.0)
        fleet.probe_results["a"] = True          # shard recovers
        assert prober.tick(now=3.0) == ["a"]
        assert prober.readmissions == 1
        assert fleet.shards[0].healthy
        # A later re-ejection starts a fresh (immediate) schedule.
        fleet.shards[0].healthy = False
        fleet.probe_results["a"] = False
        assert prober.tick(now=3.5) == ["a"]

    def test_permanent_loss_decommissions_and_rereplicates(self):
        fleet = _StubFleet(["a", "b", "c"])
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=1.0,
                              permanent_after=3, jitter=0.0)
        now = 0.0
        for _ in range(3):
            prober.tick(now=now)
            now += 1.0
        assert fleet.decommissioned == ["a"]
        assert prober.decommissions == 1
        assert prober.reregistrations == 2
        assert [s.id for s in fleet.shards] == ["b", "c"]
        # No lingering schedule for the removed shard.
        assert prober.tick(now=now) == []

    def test_last_shard_is_never_decommissioned(self):
        fleet = _StubFleet(["only"])
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=1.0,
                              permanent_after=2, jitter=0.0)
        for k in range(6):
            prober.tick(now=float(k))
        assert fleet.decommissioned == []
        assert len(fleet.shards) == 1

    def test_parameter_validation(self):
        fleet = _StubFleet(["a"])
        with pytest.raises(ValueError):
            HealthProber(fleet, base_backoff_s=0.0)
        with pytest.raises(ValueError):
            HealthProber(fleet, base_backoff_s=2.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            HealthProber(fleet, permanent_after=0)
        with pytest.raises(ValueError):
            HealthProber(fleet, jitter=-0.1)
        with pytest.raises(ValueError):
            HealthProber(fleet, jitter=1.5)


class TestProberJitter:
    """Full-jittered backoff de-synchronizes correlated ejections."""

    def test_simultaneous_ejections_get_distinct_schedules(self):
        """Shards ejected by one event must not probe in lockstep: with
        jitter on, every next_probe_at in the cohort differs."""
        ids = [f"s{i}" for i in range(6)]
        fleet = _StubFleet(ids)
        for shard in fleet.shards:
            shard.healthy = False           # one correlated mass-eject
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=8.0,
                              jitter=1.0, seed=3)
        assert prober.tick(now=0.0) == ids  # first probes are immediate
        nexts = [prober.next_probe_at(sid) for sid in ids]
        assert len(set(nexts)) == len(ids)
        # Full jitter stays inside the window: (0, base * 2^0] here.
        assert all(0.0 < t <= 1.0 for t in nexts)

    def test_partial_jitter_keeps_floor(self):
        fleet = _StubFleet(["a"])
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=8.0,
                              jitter=0.25, seed=0)
        prober.tick(now=0.0)
        assert 0.75 <= prober.next_probe_at("a") <= 1.0

    def test_jittered_schedule_is_deterministic_per_seed(self):
        def schedule(seed):
            fleet = _StubFleet(["a", "b", "c"])
            for shard in fleet.shards:
                shard.healthy = False
            prober = HealthProber(fleet, base_backoff_s=1.0,
                                  max_backoff_s=8.0, jitter=1.0, seed=seed)
            out = []
            for k in range(4):
                prober.tick(now=float(10 * k))   # past any backoff
                out.extend(prober.next_probe_at(s) for s in ("a", "b", "c"))
            return out

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_zero_jitter_reproduces_exact_schedule(self):
        fleet = _StubFleet(["a"])
        fleet.shards[0].healthy = False
        prober = HealthProber(fleet, base_backoff_s=1.0, max_backoff_s=8.0,
                              jitter=0.0, seed=123)
        prober.tick(now=0.0)
        assert prober.next_probe_at("a") == pytest.approx(1.0)


# --------------------------------------------------------------------- #
# Autoscaling: hysteresis over a stub fleet
# --------------------------------------------------------------------- #
class _ScalingStubFleet(_StubFleet):
    def __init__(self, depths):
        super().__init__([f"s{i}" for i in range(len(depths))])
        for shard, depth in zip(self.shards, depths):
            shard.queue_depth = depth
        self.added = 0
        self.retired = 0

    def set_depths(self, depth):
        for shard in self.shards:
            shard.queue_depth = depth

    def add_shard(self):
        self.added += 1
        shard = _StubShard(f"new{self.added}", 0)
        self.shards.append(shard)
        return shard.id

    def retire_shard(self, shard_id=None, drain_timeout_s=None):
        self.retired += 1
        victim = self.shards[-1]
        self.shards = self.shards[:-1]
        return victim.id


class TestAutoscaler:
    def test_scale_up_needs_the_full_streak(self):
        fleet = _ScalingStubFleet([10.0, 10.0])
        scaler = Autoscaler(fleet, min_shards=1, max_shards=4,
                            scale_up_depth=8.0, scale_down_depth=1.0,
                            up_streak=3, down_streak=2)
        assert scaler.tick() is None
        assert scaler.tick() is None
        assert scaler.tick() == "up"
        assert fleet.added == 1

    def test_dead_band_resets_streaks(self):
        fleet = _ScalingStubFleet([10.0, 10.0])
        scaler = Autoscaler(fleet, min_shards=1, max_shards=4,
                            scale_up_depth=8.0, scale_down_depth=1.0,
                            up_streak=2, down_streak=2)
        assert scaler.tick() is None       # 1 of 2
        fleet.set_depths(4.0)              # moderate load: dead band
        assert scaler.tick() is None       # streak reset
        fleet.set_depths(10.0)
        assert scaler.tick() is None       # back to 1 of 2
        assert scaler.tick() == "up"

    def test_scale_down_drains_at_low_load(self):
        fleet = _ScalingStubFleet([0.0, 0.0, 0.0])
        scaler = Autoscaler(fleet, min_shards=2, max_shards=4,
                            scale_up_depth=8.0, scale_down_depth=0.5,
                            up_streak=2, down_streak=2)
        assert scaler.tick() is None
        assert scaler.tick() == "down"
        assert fleet.retired == 1
        assert len(fleet.shards) == 2
        # At min_shards the scaler stays quiescent however idle.
        for _ in range(5):
            assert scaler.tick() is None
        assert fleet.retired == 1

    def test_bounds_are_respected(self):
        fleet = _ScalingStubFleet([10.0, 10.0])
        scaler = Autoscaler(fleet, min_shards=1, max_shards=3,
                            scale_up_depth=8.0, scale_down_depth=0.5,
                            up_streak=1, down_streak=1)
        assert scaler.tick() == "up"       # 3 shards: at max now
        fleet.set_depths(10.0)
        for _ in range(5):
            assert scaler.tick() is None
        assert len(fleet.shards) == 3

    def test_unhealthy_shards_do_not_dilute_the_gauge(self):
        fleet = _ScalingStubFleet([10.0, 10.0, 0.0])
        fleet.shards[2].healthy = False    # idle because it gets nothing
        scaler = Autoscaler(fleet, min_shards=1, max_shards=4,
                            scale_up_depth=8.0, scale_down_depth=0.5,
                            up_streak=1, down_streak=1)
        assert scaler.tick() == "up"       # mean over healthy = 10, not 6.7

    def test_parameter_validation(self):
        fleet = _ScalingStubFleet([0.0])
        with pytest.raises(ValueError):
            Autoscaler(fleet, min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            Autoscaler(fleet, scale_up_depth=1.0, scale_down_depth=2.0)
        with pytest.raises(ValueError):
            Autoscaler(fleet, up_streak=0)


# --------------------------------------------------------------------- #
# EDF hold shrink in the micro-batcher
# --------------------------------------------------------------------- #
class TestDeadlineAwareHold:
    def _request(self, expires_in=None):
        now = time.perf_counter()
        return PredictRequest(
            model_name="m", omega=np.zeros(4), resolution=16, future=None,
            expires_at=None if expires_in is None else now + expires_in)

    def test_tight_deadline_shrinks_the_hold(self):
        batcher = MicroBatcher(max_batch=8, max_wait_ms=500.0)
        source = RequestQueue()
        source.put(self._request(expires_in=0.01))
        t0 = time.perf_counter()
        batch = batcher.collect(source)
        elapsed = time.perf_counter() - t0
        assert len(batch) == 1
        # Dispatched at the request's slack (~10ms), not the 500ms hold.
        assert elapsed < 0.25

    def test_relaxed_requests_keep_the_full_hold(self):
        batcher = MicroBatcher(max_batch=8, max_wait_ms=60.0)
        source = RequestQueue()
        source.put(self._request())
        t0 = time.perf_counter()
        batch = batcher.collect(source)
        elapsed = time.perf_counter() - t0
        assert len(batch) == 1
        assert elapsed >= 0.05

    def test_late_companion_can_shrink_further(self):
        batcher = MicroBatcher(max_batch=8, max_wait_ms=500.0)
        source = RequestQueue()
        source.put(self._request(expires_in=30.0))   # relaxed
        source.put(self._request(expires_in=0.01))   # tight companion
        t0 = time.perf_counter()
        batch = batcher.collect(source)
        elapsed = time.perf_counter() - t0
        assert len(batch) == 2
        assert elapsed < 0.25


# --------------------------------------------------------------------- #
# Queue-depth gauge
# --------------------------------------------------------------------- #
class TestQueueDepth:
    def test_idle_server_reports_zero(self, served):
        model, problem = served
        registry = ModelRegistry()
        registry.register_model("m", model, problem)
        server = PredictionServer(registry, ServerConfig(workers=1))
        assert server.queue_depth() == 0
        assert server.stats.queue_depth == 0

    def test_queued_and_inflight_requests_count(self, served):
        import threading
        model, problem = served
        registry = ModelRegistry()
        registry.register_model("m", model, problem)
        server = PredictionServer(registry, ServerConfig(
            workers=1, max_batch=1, max_wait_ms=0, cache_bytes=0))
        entered, release = threading.Event(), threading.Event()
        forward = server._forward

        def hung(entry, omegas, resolution):
            entered.set()
            assert release.wait(timeout=30)
            return forward(entry, omegas, resolution)

        server._forward = hung
        with server:
            first = server.submit("m", np.zeros(4))
            assert entered.wait(timeout=30)
            second = server.submit("m", np.ones(4))
            # One in flight (hung in the forward) + one pending.
            assert server.queue_depth() == 2
            release.set()
            first.result(30)
            second.result(30)
            assert server.queue_depth() == 0

    def test_fleet_stats_surface_the_gauge(self, served):
        model, problem = served
        fleet = ShardedFleet(FleetConfig(shards=2, replicas=1))
        fleet.register_model("m", model, problem)
        stats = fleet.stats
        for row in stats.per_shard.values():
            assert row["queue_depth"] == 0


# --------------------------------------------------------------------- #
# Fleet integration: admission + membership on a real fleet
# --------------------------------------------------------------------- #
def _small_fleet(shards=3, replicas=2, **server_kw):
    kw = dict(max_batch=4, max_wait_ms=0.5, workers=1, cache_bytes=0)
    kw.update(server_kw)
    return ShardedFleet(FleetConfig(shards=shards, replicas=replicas,
                                    server=ServerConfig(**kw)))


class TestFleetAdmission:
    def test_throttled_requests_conserve(self, served):
        model, problem = served
        fleet = _small_fleet()
        fleet.register_model("m", model, problem)
        clock = _ForgedClock()
        fleet.admission = AdmissionController(
            TenantQuota(rate=10.0, burst=2.0), clock=clock)
        rng = np.random.default_rng(SEED)
        with fleet:
            fleet.predict("m", rng.uniform(-3, 3, 4), tenant="t")
            fleet.predict("m", rng.uniform(-3, 3, 4), tenant="t")
            with pytest.raises(TenantThrottled) as info:
                fleet.predict("m", rng.uniform(-3, 3, 4), tenant="t")
            assert info.value.tenant == "t"
            assert info.value.retry_after_s == pytest.approx(0.1)
            # Untagged traffic is never metered.
            fleet.predict("m", rng.uniform(-3, 3, 4))
        s = fleet.stats
        assert s.submitted == 4
        assert s.served == 3 and s.throttled == 1
        assert s.lost == 0

    def test_async_facade_threads_tenant_through(self, served):
        import asyncio
        from repro.serve import AsyncPredictionServer
        model, problem = served
        fleet = _small_fleet()
        fleet.register_model("m", model, problem)
        fleet.admission = AdmissionController(
            TenantQuota(rate=10.0, burst=1.0), clock=_ForgedClock())

        async def scenario():
            async with AsyncPredictionServer(fleet) as aserver:
                await aserver.predict("m", np.zeros(4), tenant="t")
                with pytest.raises(TenantThrottled):
                    await aserver.predict("m", np.ones(4), tenant="t")

        asyncio.run(scenario())
        assert fleet.stats.lost == 0


class TestFleetMembership:
    def test_add_shard_rebalances_with_minimal_movement(self, served):
        model, problem = served
        fleet = _small_fleet(shards=3, replicas=2)
        names = [f"m{i}" for i in range(6)]
        for name in names:
            fleet.register_model(name, model, problem)
        before = {name: fleet.replicas_for(name) for name in names}
        rng = np.random.default_rng(SEED + 1)
        with fleet:
            new_id = fleet.add_shard()
            # Every key routes to live replicas holding its model.
            for name in names:
                replicas = fleet.replicas_for(name)
                for sid in replicas:
                    shard = next(s for s in fleet.shards if s.id == sid)
                    assert name in shard.server.registry.names()
                u = fleet.predict(name, rng.uniform(-3, 3, 4), timeout=30)
                assert u.shape == (16, 16)
        after = {name: fleet.replicas_for(name) for name in names}
        moved = [n for n in names if set(after[n]) != set(before[n])]
        unmoved = [n for n in names if after[n] == before[n]]
        # Consistent hashing: some keys moved onto the new shard, but
        # not all of them — and only onto the newcomer.
        assert new_id == "shard-03"
        for name in moved:
            assert new_id in set(after[name])
        assert unmoved, "adding one shard must not reshuffle every key"
        s = fleet.stats
        assert s.scale_ups == 1 and s.lost == 0

    def test_retire_shard_drains_and_survivors_serve(self, served):
        model, problem = served
        fleet = _small_fleet(shards=3, replicas=2)
        names = [f"m{i}" for i in range(4)]
        for name in names:
            fleet.register_model(name, model, problem)
        rng = np.random.default_rng(SEED + 2)
        with fleet:
            retired_id = fleet.retire_shard(drain_timeout_s=10.0)
            assert retired_id not in [s.id for s in fleet.shards]
            for name in names:
                replicas = fleet.replicas_for(name)
                assert retired_id not in replicas
                for sid in replicas:
                    shard = next(s for s in fleet.shards if s.id == sid)
                    assert name in shard.server.registry.names()
                u = fleet.predict(name, rng.uniform(-3, 3, 4), timeout=30)
                assert u.shape == (16, 16)
        s = fleet.stats
        assert s.scale_downs == 1 and s.lost == 0
        assert s.shards == 2

    def test_cannot_remove_the_last_shard(self, served):
        model, problem = served
        fleet = _small_fleet(shards=1, replicas=1)
        fleet.register_model("m", model, problem)
        with pytest.raises(ValueError):
            fleet.retire_shard()
        with pytest.raises(ValueError):
            fleet.decommission_shard(fleet.shards[0].id)

    def test_decommission_rereplicates_lost_keys(self, served):
        model, problem = served
        fleet = _small_fleet(shards=3, replicas=2)
        names = [f"m{i}" for i in range(4)]
        for name in names:
            fleet.register_model(name, model, problem)
        victim = fleet.shards[0]
        rng = np.random.default_rng(SEED + 3)
        with fleet:
            moves = fleet.decommission_shard(victim.id)
            assert victim.id not in [s.id for s in fleet.shards]
            for name in names:
                # Full R-way replication restored on the survivors.
                replicas = fleet.replicas_for(name)
                assert len(replicas) == 2
                assert victim.id not in replicas
                for sid in replicas:
                    shard = next(s for s in fleet.shards if s.id == sid)
                    assert name in shard.server.registry.names()
                u = fleet.predict(name, rng.uniform(-3, 3, 4), timeout=30)
                assert u.shape == (16, 16)
        s = fleet.stats
        assert s.decommissions == 1
        assert s.reregistrations == moves
        assert s.lost == 0

    def test_shard_ids_never_recycle(self, served):
        model, problem = served
        fleet = _small_fleet(shards=2, replicas=1)
        fleet.register_model("m", model, problem)
        with fleet:
            retired = fleet.retire_shard()
            added = fleet.add_shard()
        assert added not in (retired, fleet.shards[0].id)


# --------------------------------------------------------------------- #
# ControlPlane facade
# --------------------------------------------------------------------- #
class TestControlPlane:
    def test_installs_and_uninstalls_fleet_seams(self, served):
        model, problem = served
        fleet = _small_fleet()
        fleet.register_model("m", model, problem)
        plane = ControlPlane(fleet, ControlConfig(tenant_rate=100.0))
        assert fleet.balancer is plane.balancer
        assert fleet.admission is plane.admission
        plane.uninstall()
        assert fleet.balancer is None and fleet.admission is None

    def test_deterministic_tick_probes_with_backoff(self, served):
        model, problem = served
        fleet = _small_fleet()
        fleet.register_model("m", model, problem)
        clock = _ForgedClock()
        plane = ControlPlane(fleet, ControlConfig(
            probe_base_backoff_s=1.0, probe_max_backoff_s=4.0,
            probe_timeout_s=5.0, probe_jitter=0.0), clock=clock)
        victim = next(s for s in fleet.shards
                      if s.id == fleet.replicas_for("m")[0])
        # Break the shard's submit so probes genuinely fail.
        original = victim.server.submit
        victim.server.submit = lambda *a, **k: (_ for _ in ()).throw(
            ConnectionError("gone"))
        with fleet:
            fleet._eject(victim, ConnectionError("gone"))
            plane.tick(now=0.0)                 # probe: fails
            assert plane.stats.probes == 1
            plane.tick(now=0.5)                 # backed off
            assert plane.stats.probes == 1
            plane.tick(now=1.0)                 # probe again: fails
            assert plane.stats.probes == 2
            victim.server.submit = original     # shard recovers
            plane.tick(now=3.0)
            assert plane.stats.readmissions == 1
            assert victim.healthy
        assert fleet.stats.lost == 0

    def test_background_thread_heals_without_operator(self, served):
        model, problem = served
        fleet = _small_fleet()
        fleet.register_model("m", model, problem)
        plane = ControlPlane(fleet, ControlConfig(
            probe_base_backoff_s=0.01, probe_max_backoff_s=0.05,
            tick_interval_s=0.01))
        victim = next(s for s in fleet.shards
                      if s.id == fleet.replicas_for("m")[0])
        with fleet, plane:
            assert plane.running
            fleet._eject(victim, RuntimeError("transient"))
            deadline = time.monotonic() + 10.0
            while not victim.healthy and time.monotonic() < deadline:
                time.sleep(0.005)
            assert victim.healthy
        assert not plane.running
        assert plane.stats.readmissions >= 1
        assert fleet.stats.lost == 0


# --------------------------------------------------------------------- #
# Tile-size autotuning (MeasurementCache seam)
# --------------------------------------------------------------------- #
class TestTileAutotune:
    def test_candidates_are_aligned_powers_of_two(self):
        assert tile_candidates((16, 16), multiple=2) == [2, 4, 8, 16]
        assert tile_candidates((32, 16), multiple=4) == [4, 8, 16]
        assert tile_candidates((8, 8), multiple=8) == [8]

    def test_measures_once_then_hits_the_cache(self, served, tmp_path,
                                               monkeypatch):
        from repro.serve import tiling
        monkeypatch.setenv("REPRO_TILE_AUTOTUNE_CACHE",
                           str(tmp_path / "tiles.json"))
        tiling._TILE_MEASUREMENTS.clear(memory_only=True)
        model, problem = served
        calls = {"n": 0}
        real = tiling.tiled_predict

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(tiling, "tiled_predict", counting)
        tile = autotune_tile(model, problem)
        assert tile in tile_candidates((16, 16), multiple=2)
        measured = calls["n"]
        assert measured == len(tile_candidates((16, 16), multiple=2))
        assert autotune_tile(model, problem) == tile   # cache hit
        assert calls["n"] == measured
        # The record survives a simulated restart (persisted JSON).
        tiling._TILE_MEASUREMENTS.clear(memory_only=True)
        assert autotune_tile(model, problem) == tile
        assert calls["n"] == measured

    def test_autotuned_predict_matches_untiled(self, served, tmp_path,
                                               monkeypatch):
        from repro.core.inference import predict_batch
        from repro.serve import tiling
        monkeypatch.setenv("REPRO_TILE_AUTOTUNE_CACHE",
                           str(tmp_path / "tiles.json"))
        tiling._TILE_MEASUREMENTS.clear(memory_only=True)
        model, problem = served
        omega = np.random.default_rng(SEED).uniform(-3, 3, 4)
        u = tiling.tiled_predict(model, problem, omega, tile="autotune")[0]
        ref = predict_batch(model, problem, omega)[0]
        np.testing.assert_allclose(u, ref, atol=1e-10)
