"""Fault-injection hardening of the sharded fleet (seeded chaos).

The fleet's contract under faults, pinned deterministically:

* **Conservation law** — every submitted request ends as exactly one of
  served / rejected / expired / errors / cancelled / unavailable
  (``FleetStats.lost == 0``), storms and kills included.
* **Failover** — killing / erroring / hanging any *single* shard under
  mixed-priority load loses zero requests; the answers that arrive come
  from replicas and match the single-server field to <= 1e-5.
* **Recovery** — an ejected shard whose fault clears is re-admitted by
  a health probe and traffic returns to it.

The chaos harness injects faults the way an operator would see them:

* ``error``  — the shard's forward raises mid-batch;
* ``kill``   — the shard's submit itself dies (process gone);
* ``hang``   — the forward blocks until released (detected via
  ``shard_timeout_s`` ejection in the blocking front-end).

Seeds are fixed; synchronization is via events and counters, never
sleeps on the assertion path.
"""

import threading

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    DeadlineExceeded, FleetConfig, FleetUnavailable, ServerConfig,
    ServerOverloaded, ShardedFleet,
)

SEED = 20260728


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=3, replicas=2, shard_timeout_s=None,
           **server_kw) -> ShardedFleet:
    kw = dict(max_batch=4, max_wait_ms=0.5, workers=1, cache_bytes=0)
    kw.update(server_kw)
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=replicas, shard_timeout_s=shard_timeout_s,
        server=ServerConfig(**kw)))


def _shard(fleet, shard_id):
    return next(s for s in fleet.shards if s.id == shard_id)


class _Chaos:
    """Inject one fault mode into one shard; restorable."""

    def __init__(self, shard):
        self.shard = shard
        self._forward = shard.server._forward
        self._submit = shard.server.submit
        self.release = threading.Event()
        self.entered = threading.Event()   # a hung forward has begun

    def error(self):
        def boom(entry, omegas, resolution):
            raise RuntimeError(f"injected error on {self.shard.id}")
        self.shard.server._forward = boom

    def kill(self):
        def dead(*args, **kwargs):
            raise ConnectionError(f"{self.shard.id} is gone")
        self.shard.server.submit = dead

    def hang(self):
        forward = self._forward

        def hung(entry, omegas, resolution):
            self.entered.set()
            assert self.release.wait(timeout=60)
            return forward(entry, omegas, resolution)
        self.shard.server._forward = hung

    def restore(self):
        self.release.set()
        self.shard.server._forward = self._forward
        self.shard.server.submit = self._submit


def _storm(fleet, names, n_clients=4, per_client=12, arm_chaos=None,
           arm_after=8, deadline_s=None):
    """Seeded mixed-priority storm; returns (futures, sync_errors).

    ``arm_chaos`` (if given) fires once the fleet has accepted
    ``arm_after`` submissions — the fault lands mid-storm by
    construction, not by sleep.
    """
    barrier = threading.Barrier(n_clients)
    submitted = threading.Semaphore(0)
    futures, sync_errors = [], []
    lock = threading.Lock()

    def client(cid):
        rng = np.random.default_rng(SEED + cid)
        barrier.wait()
        for i in range(per_client):
            name = names[rng.integers(len(names))]
            omega = rng.uniform(-3, 3, 4)
            priority = int(rng.integers(0, 6))
            try:
                f = fleet.submit(name, omega, priority=priority,
                                 deadline_s=deadline_s)
                with lock:
                    futures.append((name, omega, f))
            except (ServerOverloaded, FleetUnavailable) as exc:
                with lock:
                    sync_errors.append(exc)
            submitted.release()

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    if arm_chaos is not None:
        for _ in range(arm_after):
            assert submitted.acquire(timeout=30)
        arm_chaos()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    return futures, sync_errors


def _drain(futures, timeout=60):
    """Resolve every future; returns (results, request_errors)."""
    results, request_errors = [], []
    for name, omega, f in futures:
        try:
            results.append((name, omega, f.result(timeout)))
        except Exception as exc:
            request_errors.append((name, omega, exc))
    return results, request_errors


def _assert_fields_match(served_model, results, atol=1e-5, sample=10):
    model, problem = served_model
    for name, omega, u in results[:sample]:
        ref = predict_batch(model, problem, omega)[0]
        np.testing.assert_allclose(u, ref, atol=atol)


class TestSingleFaultFailover:
    def test_error_fault_fails_over_to_replica(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        chaos.error()
        omega = np.random.default_rng(SEED).uniform(-3, 3, 4)
        with fleet:
            u = fleet.predict("m", omega, timeout=30)
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)
        s = fleet.stats
        assert not primary.healthy
        assert s.shard_faults == 1
        assert s.failovers >= 1
        assert s.served == 1 and s.lost == 0

    def test_kill_fault_fails_over_synchronously(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        chaos.kill()
        omega = np.random.default_rng(SEED + 1).uniform(-3, 3, 4)
        with fleet:
            u = fleet.predict("m", omega, timeout=30)
        np.testing.assert_allclose(u, predict_batch(model, problem, omega)[0],
                                   atol=1e-5)
        assert not primary.healthy
        assert fleet.stats.lost == 0

    def test_hang_fault_ejected_via_timeout(self, served):
        model, problem = served
        fleet = _fleet(shard_timeout_s=0.25)
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        chaos.hang()
        omega = np.random.default_rng(SEED + 2).uniform(-3, 3, 4)
        with fleet:
            u = fleet.predict("m", omega, timeout=30)
            np.testing.assert_allclose(
                u, predict_batch(model, problem, omega)[0], atol=1e-5)
            assert not primary.healthy
            # Release the hung forward; its late answer must not
            # double-deliver or double-count.
            chaos.release.set()
        s = fleet.stats
        assert s.hangs == 1
        assert s.served == 1 and s.lost == 0
        # Latency is anchored on submit, not on the failover dispatch:
        # the shard_timeout_s burned on the hung primary must show up.
        assert s.p50 >= 0.25

    def test_hang_failover_on_raw_submit_futures(self, served):
        """await_result gives submit/drain clients (the CLI loop,
        predict_many) the same hang ejection predict() has — the
        --shard-timeout flag must work on that path too."""
        model, problem = served
        fleet = _fleet(shard_timeout_s=0.25)
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        chaos.hang()
        rng = np.random.default_rng(SEED + 9)
        omegas = rng.uniform(-3, 3, (2, 4))
        with fleet:
            futures = [fleet.submit("m", w) for w in omegas]
            fields = [fleet.await_result(f, timeout=30) for f in futures]
            assert not primary.healthy
            chaos.release.set()
        for w, u in zip(omegas, fields):
            np.testing.assert_allclose(
                u, predict_batch(model, problem, w)[0], atol=1e-5)
        s = fleet.stats
        assert s.hangs == 1
        assert s.served == 2 and s.lost == 0

    def test_replica_failover_matches_primary_answer(self, served):
        """The same ω served before and after a primary kill returns
        the same field (replicas hold the same version)."""
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        omega = np.random.default_rng(SEED + 3).uniform(-3, 3, 4)
        with fleet:
            before = fleet.predict("m", omega, timeout=30)
            primary = _shard(fleet, fleet.replicas_for("m")[0])
            chaos = _Chaos(primary)
            chaos.error()
            after = fleet.predict("m", omega, timeout=30)
        np.testing.assert_allclose(after, before, atol=1e-5)


class TestRecovery:
    def test_probe_readmits_recovered_shard(self, served):
        model, problem = served
        fleet = _fleet()
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        chaos = _Chaos(primary)
        chaos.error()
        rng = np.random.default_rng(SEED + 4)
        with fleet:
            fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert not primary.healthy
            # Probe while still broken: stays ejected.
            assert fleet.check_health() == []
            assert not primary.healthy
            chaos.restore()
            assert fleet.check_health() == [primary.id]
            assert primary.healthy
            # Traffic returns to the re-admitted primary.
            before = primary.server.stats.requests
            fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert primary.server.stats.requests > before
        s = fleet.stats
        assert s.probes == 2
        assert s.readmissions == 1
        assert s.lost == 0

    def test_falsely_ejected_replicas_self_heal_before_unavailable(
            self, served):
        """Shards ejected while actually healthy (e.g. hang budget hit
        by a backlog, not a fault): routing makes a last pass ignoring
        health marks, and the shard that answers re-admits itself —
        the key self-heals instead of black-holing for the run."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        fleet.register_model("m", model, problem)
        replica_ids = fleet.replicas_for("m")
        for sid in replica_ids:
            fleet._eject(_shard(fleet, sid),
                         TimeoutError("false hang ejection"), hang=True)
        rng = np.random.default_rng(SEED + 8)
        with fleet:
            u = fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert u.shape == (16, 16)
            s = fleet.stats
            # The serving shard re-admitted itself; its twin stays
            # ejected until an explicit probe.
            assert s.readmissions == 1
            assert s.unavailable == 0
            assert s.served == 1 and s.lost == 0
            assert _shard(fleet, replica_ids[0]).healthy
            fleet.check_health()
        assert fleet.stats.healthy_shards == 3

    def test_all_replicas_down_raises_fleet_unavailable(self, served):
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        fleet.register_model("m", model, problem)
        chaos = [_Chaos(_shard(fleet, sid))
                 for sid in fleet.replicas_for("m")]
        for c in chaos:
            c.kill()
        rng = np.random.default_rng(SEED + 5)
        with fleet:
            with pytest.raises(FleetUnavailable) as info:
                fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert info.value.attempted == fleet.replicas_for("m")
            # Both replicas recover: service resumes.
            for c in chaos:
                c.restore()
            assert sorted(fleet.check_health()) == \
                sorted(fleet.replicas_for("m"))
            u = fleet.predict("m", rng.uniform(-3, 3, 4), timeout=30)
            assert u.shape == (16, 16)
        s = fleet.stats
        assert s.unavailable == 1
        assert s.served == 1
        assert s.lost == 0


class TestChaosStorms:
    @pytest.mark.parametrize("mode", ["error", "kill"])
    def test_mid_storm_fault_loses_nothing(self, served, mode):
        model, problem = served
        fleet = _fleet(shards=4, replicas=2)
        names = [f"m{i}" for i in range(4)]
        for name in names:
            fleet.register_model(name, model, problem)
        victim = _shard(fleet, fleet.replicas_for(names[0])[0])
        chaos = _Chaos(victim)
        with fleet:
            futures, sync_errors = _storm(
                fleet, names, arm_chaos=getattr(chaos, mode))
            results, request_errors = _drain(futures)
        assert sync_errors == []
        assert request_errors == []
        assert len(results) == 48
        _assert_fields_match(served, results)
        s = fleet.stats
        assert s.submitted == 48
        assert s.served == 48
        assert s.lost == 0
        assert s.errors == 0 and s.unavailable == 0 and s.cancelled == 0

    @pytest.mark.parametrize("victim_idx", [0, 1, 2])
    def test_killing_any_single_shard_loses_nothing(self, served,
                                                    victim_idx):
        """The acceptance criterion verbatim: killing *any* single
        shard under mixed-priority load loses zero requests."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        names = [f"m{i}" for i in range(3)]
        for name in names:
            fleet.register_model(name, model, problem)
        chaos = _Chaos(fleet.shards[victim_idx])
        with fleet:
            futures, sync_errors = _storm(
                fleet, names, n_clients=3, per_client=8,
                arm_chaos=chaos.kill, arm_after=6)
            results, request_errors = _drain(futures)
        assert sync_errors == []
        assert request_errors == []
        assert len(results) == 24
        _assert_fields_match(served, results, sample=6)
        s = fleet.stats
        assert s.submitted == 24 and s.served == 24 and s.lost == 0

    def test_storm_with_doa_deadlines_conserves(self, served):
        """Dead-on-arrival deadlines expire (never forwarded) while the
        rest serve — expiry is part of the conservation law, and a
        fault mid-storm must not break that."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        names = ["m0", "m1"]
        for name in names:
            fleet.register_model(name, model, problem)
        chaos = _Chaos(_shard(fleet, fleet.replicas_for("m0")[0]))
        with fleet:
            live, _ = _storm(fleet, names, n_clients=2, per_client=6,
                             arm_chaos=chaos.error, arm_after=4)
            doomed = [fleet.submit("m0", np.full(4, 0.5 + i),
                                   deadline_s=-1.0) for i in range(3)]
            results, request_errors = _drain(live)
            expired_seen = 0
            for f in doomed:
                with pytest.raises(DeadlineExceeded):
                    f.result(timeout=30)
                expired_seen += 1
        assert request_errors == []
        s = fleet.stats
        assert s.submitted == 12 + 3
        assert s.served == len(results) == 12
        assert s.expired == expired_seen == 3
        assert s.lost == 0

    def test_backpressure_rejections_conserve(self, served):
        """ServerOverloaded propagates as a rejection (no ejection) and
        the books still balance."""
        model, problem = served
        fleet = _fleet(shards=2, replicas=1, max_pending=1,
                       max_batch=1, max_wait_ms=0)
        fleet.register_model("m", model, problem)
        primary = _shard(fleet, fleet.replicas_for("m")[0])
        hold = _Chaos(primary)
        hold.hang()                       # wedge the only worker
        rng = np.random.default_rng(SEED + 6)
        with fleet:
            first = fleet.submit("m", rng.uniform(-3, 3, 4))
            assert hold.entered.wait(timeout=30)   # worker wedged in it
            # Worker is busy computing `first`; this one fills the queue.
            second = fleet.submit("m", rng.uniform(-3, 3, 4))
            rejected = 0
            try:
                fleet.submit("m", rng.uniform(-3, 3, 4))
            except ServerOverloaded:
                rejected = 1
            hold.release.set()
            first.result(timeout=30)
            second.result(timeout=30)
        s = fleet.stats
        assert rejected == 1
        assert s.rejected == 1
        assert s.served == 2
        assert s.shard_faults == 0        # backpressure never ejects
        assert primary.healthy
        assert s.lost == 0
