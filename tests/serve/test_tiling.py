"""Tiled inference: exactness against the single-pass forward."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, PoissonProblem3D
from repro.core.inference import predict_batch
from repro.serve import make_executor, plan_tiles, receptive_halo, tiled_predict

RNG = np.random.default_rng(7)


def _omegas(n=3):
    return RNG.uniform(-3.0, 3.0, size=(n, 4))


class TestPlan:
    def test_tile_covers_domain_without_overlap(self):
        plan = plan_tiles((16, 24), tile=8, halo=8, multiple=4)
        seen = np.zeros((16, 24), dtype=int)
        for block in plan.blocks:
            (x0, x1), (y0, y1) = block
            seen[x0:x1, y0:y1] += 1
        assert (seen == 1).all()
        assert plan.num_tiles == 2 * 3

    def test_ragged_last_tile_stays_aligned(self):
        plan = plan_tiles((24,), tile=16, halo=0, multiple=8)
        assert plan.blocks == (((0, 16),), ((16, 24),))

    def test_misaligned_tile_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            plan_tiles((16, 16), tile=6, halo=4, multiple=4)

    def test_misaligned_halo_rejected(self):
        with pytest.raises(ValueError, match="halo"):
            plan_tiles((16, 16), tile=8, halo=2, multiple=4)

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            plan_tiles((18, 16), tile=8, halo=4, multiple=4)


class TestReceptiveHalo:
    def test_halo_is_alignment_multiple(self):
        for depth in (1, 2, 3):
            model = MGDiffNet(ndim=2, base_filters=4, depth=depth, rng=0)
            halo = receptive_halo(model)
            assert halo % (2 ** depth) == 0 and halo > 0

    def test_adaptation_widens_halo(self):
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
        before = receptive_halo(model)
        model.adapt(rng=1)
        assert receptive_halo(model) >= before


class TestExactness2D:
    @pytest.mark.parametrize("depth,resolution,tile",
                             [(1, 16, 2), (1, 16, 4), (1, 16, 8),
                              (2, 32, 4), (2, 32, 8), (2, 32, 16)])
    def test_tiled_matches_full_field(self, depth, resolution, tile):
        problem = PoissonProblem2D(resolution)
        model = MGDiffNet(ndim=2, base_filters=4, depth=depth, rng=1)
        omegas = _omegas()
        ref = predict_batch(model, problem, omegas)
        got = tiled_predict(model, problem, omegas, tile=tile)
        assert got.shape == ref.shape
        assert np.abs(got - ref).max() <= 1e-5

    @pytest.mark.parametrize("extra", [0, 4, 8])
    def test_wider_halo_stays_exact(self, extra):
        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=2)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        halo = receptive_halo(model) + extra
        got = tiled_predict(model, problem, omegas, tile=8, halo=halo)
        assert np.abs(got - ref).max() <= 1e-5

    def test_ragged_tiling_exact(self):
        # 24 does not divide by tile 16: last tile is ragged but aligned.
        problem = PoissonProblem2D(24)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=3)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        got = tiled_predict(model, problem, omegas, tile=16)
        assert np.abs(got - ref).max() <= 1e-5

    def test_adapted_model_exact_with_default_halo(self):
        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=4)
        model.adapt(rng=5)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        got = tiled_predict(model, problem, omegas, tile=4)
        assert np.abs(got - ref).max() <= 1e-5


class TestExactness3D:
    @pytest.mark.parametrize("tile", [2, 4, 8])
    def test_tiled_matches_full_field_3d(self, tile):
        problem = PoissonProblem3D(8)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=1)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        got = tiled_predict(model, problem, omegas, tile=tile)
        assert got.shape == ref.shape
        assert np.abs(got - ref).max() <= 1e-5

    def test_single_omega_vector(self):
        problem = PoissonProblem3D(8)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=2)
        omega = _omegas(1)[0]
        ref = predict_batch(model, problem, omega)
        got = tiled_predict(model, problem, omega, tile=4)
        assert got.shape == ref.shape == (1, 8, 8, 8)
        assert np.abs(got - ref).max() <= 1e-5


class TestRaggedHaloParallel:
    """Regression: ragged 3D grids whose halo exceeds the last tile's
    remainder, stitched through the process executor.

    A 12^3 grid with tile=8 leaves a remainder of 4 on every axis; with
    halo=8 each ragged edge tile's halo is wider than its core, so
    ``extract_padded_block`` crops against the domain boundary on *both*
    sides of the same axis.  The parallel-execution benchmark only
    exercises aligned grids, so this corner is pinned here: the stitched
    field must match the full-field forward, and every executor must
    stitch a byte-identical result to the sequential path.
    """

    @pytest.fixture(scope="class")
    def ragged3d(self):
        problem = PoissonProblem3D(12)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=5)
        omegas = _omegas(2)
        ref = predict_batch(model, problem, omegas)
        serial = tiled_predict(model, problem, omegas, tile=8, halo=8)
        return problem, model, omegas, ref, serial

    def test_serial_stitch_exact_vs_full_field(self, ragged3d):
        problem, model, omegas, ref, serial = ragged3d
        # halo (8) > remainder (12 - 8 = 4) on every axis.
        assert serial.shape == ref.shape == (2, 12, 12, 12)
        assert np.abs(serial - ref).max() <= 1e-5

    def test_process_executor_stitch_bitwise_equal(self, ragged3d):
        problem, model, omegas, _, serial = ragged3d
        with make_executor("process", 2) as executor:
            got = tiled_predict(model, problem, omegas, tile=8, halo=8,
                                executor=executor)
        np.testing.assert_array_equal(got, serial)

    def test_thread_executor_stitch_bitwise_equal(self, ragged3d):
        problem, model, omegas, _, serial = ragged3d
        with make_executor("thread", 2) as executor:
            got = tiled_predict(model, problem, omegas, tile=8, halo=8,
                                executor=executor)
        np.testing.assert_array_equal(got, serial)


class _InlineProcessExecutor:
    """Executor that *claims* to be a process pool but runs inline —
    the tiled path takes its pickled-blob branch deterministically,
    with no real multiprocessing underneath."""

    kind = "process"
    workers = 2

    def map(self, fn, items):
        return [fn(item) for item in items]

    def warm(self):
        pass

    def close(self):
        pass


class TestNetBlobReuse:
    """The ROADMAP 'persistent process fleet' fix: a serving process
    must serialize each model once per content version, not once per
    tiled call (the blob is the payload every tile task replays)."""

    def _counting_dumps(self, monkeypatch):
        import pickle

        from repro.nn.module import Module

        counted = []
        real_dumps = pickle.dumps

        def counting(obj, *args, **kwargs):
            if isinstance(obj, Module):
                counted.append(type(obj).__name__)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(pickle, "dumps", counting)
        return counted

    def test_server_pickles_net_once_per_version(self, monkeypatch):
        from repro.serve import ModelRegistry, PredictionServer, ServerConfig

        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=6)
        registry = ModelRegistry()
        registry.register_model("m", model, problem)
        server = PredictionServer(registry, ServerConfig(
            tile=8, cache_bytes=0))
        server._executor = _InlineProcessExecutor()
        counted = self._counting_dumps(monkeypatch)

        base = _omegas(1)[0]
        for i in range(3):                    # three tiled forwards...
            u = server.predict("m", base + 0.1 * i)
        assert counted.count("UNet") == 1     # ...one serialization
        assert np.abs(u - predict_batch(
            model, problem, base + 0.2)[0]).max() <= 1e-5

    def test_new_version_pickles_again(self, monkeypatch):
        """A different checkpoint under the same name is a new content
        version: it gets its own (single) serialization."""
        from repro.serve import ModelRegistry, PredictionServer, ServerConfig

        problem = PoissonProblem2D(16)
        registry = ModelRegistry()
        registry.register_model(
            "m", MGDiffNet(ndim=2, base_filters=4, depth=1, rng=6), problem)
        server = PredictionServer(registry, ServerConfig(
            tile=8, cache_bytes=0))
        server._executor = _InlineProcessExecutor()
        counted = self._counting_dumps(monkeypatch)

        server.predict("m", _omegas(1)[0])
        registry.register_model(
            "m", MGDiffNet(ndim=2, base_filters=4, depth=1, rng=7), problem)
        server.predict("m", _omegas(1)[0])
        server.predict("m", _omegas(1)[0] + 0.5)
        assert counted.count("UNet") == 2     # one per version, not per call
        # The swapped-out version's blob is pruned — hot swaps must not
        # leak one model-sized blob per retrain.
        assert len(server._net_blobs) == 1

    def test_bare_tiled_predict_with_net_ref_skips_pickling(
            self, monkeypatch):
        import pickle

        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=6)
        omegas = _omegas(2)
        serial = tiled_predict(model, problem, omegas, tile=8)
        # The blob must capture the *serving* (eval) mode — exactly what
        # a registry entry pins before the server ever builds a net_ref.
        model.eval()
        blob = pickle.dumps(model.net)
        counted = self._counting_dumps(monkeypatch)
        got = tiled_predict(model, problem, omegas, tile=8,
                            executor=_InlineProcessExecutor(),
                            net_ref=("v0", blob))
        assert counted == []                  # the cached blob was replayed
        np.testing.assert_array_equal(got, serial)
