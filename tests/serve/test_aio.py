"""Asyncio front-end: awaitable results under the server's scheduling."""

import asyncio
import threading

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    AsyncPredictionServer, DeadlineExceeded, ModelRegistry,
    PredictionServer, ServerConfig, ServerOverloaded,
)

RNG = np.random.default_rng(31)


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    return model, problem, registry


class TestAsyncFrontend:
    def test_await_matches_predict_batch(self, served):
        model, problem, registry = served
        omega = RNG.uniform(-3, 3, 4)
        ref = predict_batch(model, problem, omega)[0]

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=4, max_wait_ms=5, workers=1, cache_bytes=0))
            async with AsyncPredictionServer(server) as aserver:
                return await aserver.predict("m", omega)

        np.testing.assert_allclose(asyncio.run(run()), ref, atol=1e-6)

    def test_gathered_lane_matches_reference(self, served):
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(6, 4))
        ref = predict_batch(model, problem, omegas)

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=4, max_wait_ms=10, workers=2, cache_bytes=0))
            async with AsyncPredictionServer(server) as aserver:
                return await aserver.predict_many("m", omegas), server

        got, server = asyncio.run(run())
        np.testing.assert_allclose(got, ref, atol=1e-6)
        # Concurrent awaitables coalesced into fused forwards.
        assert server.stats.batches < len(omegas)
        assert not server.running        # __aexit__ closed the fleet

    def test_context_manager_starts_and_closes(self, served):
        *_, registry = served

        async def run():
            server = PredictionServer(registry)
            assert not server.running
            async with AsyncPredictionServer(server) as aserver:
                assert server.running
                assert aserver.server is server
            return server

        assert not asyncio.run(run()).running

    def test_deadline_raises_through_await(self, served):
        *_, registry = served

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
            release = threading.Event()
            forward = server._forward

            def slow_forward(entry, omegas, resolution):
                release.wait(timeout=30)
                return forward(entry, omegas, resolution)

            server._forward = slow_forward
            async with AsyncPredictionServer(server) as aserver:
                filler = aserver.submit("m", np.full(4, -1.0))
                doomed = aserver.submit("m", np.zeros(4), deadline_s=0.01)
                await asyncio.sleep(0.05)
                release.set()
                with pytest.raises(DeadlineExceeded):
                    await doomed
                await filler
            return server

        server = asyncio.run(run())
        assert server.stats.expired == 1

    def test_overload_raises_synchronously_not_behind_await(self, served):
        *_, registry = served

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0,
                max_pending=1))
            started = threading.Event()
            release = threading.Event()
            forward = server._forward

            def slow_forward(entry, omegas, resolution):
                started.set()
                release.wait(timeout=30)
                return forward(entry, omegas, resolution)

            server._forward = slow_forward
            async with AsyncPredictionServer(server) as aserver:
                filler = aserver.submit("m", np.full(4, -1.0))
                await asyncio.to_thread(started.wait, 30)
                queued = aserver.submit("m", np.full(4, 1.0))
                # No await needed for the rejection — submit itself
                # raises, so clients can shed load inline.
                with pytest.raises(ServerOverloaded):
                    aserver.submit("m", np.full(4, 2.0))
                release.set()
                await asyncio.gather(filler, queued)
            return server

        assert asyncio.run(run()).stats.rejected == 1

    def test_priorities_reach_the_queue(self, served):
        *_, registry = served

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
            order = []
            started = threading.Event()
            release = threading.Event()
            forward = server._forward

            def hooked(entry, omegas, resolution):
                if not started.is_set():
                    started.set()
                    release.wait(timeout=30)
                else:
                    order.extend(float(w[0]) for w in omegas)
                return forward(entry, omegas, resolution)

            server._forward = hooked
            async with AsyncPredictionServer(server) as aserver:
                filler = aserver.submit("m", np.full(4, -1.0))
                await asyncio.to_thread(started.wait, 30)
                low = aserver.submit("m", np.full(4, 10.0), priority=0)
                high = aserver.submit("m", np.full(4, 100.0), priority=9)
                release.set()
                await asyncio.gather(filler, low, high)
            return order

        assert asyncio.run(run()) == [100.0, 10.0]

    def test_cancelled_request_does_not_kill_worker(self, served):
        """asyncio cancellation propagates to the queued server future;
        resolving it later must not raise InvalidStateError in the
        worker — the request is skipped and the fleet keeps serving."""
        model, problem, registry = served

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
            started = threading.Event()
            release = threading.Event()
            forward = server._forward

            def hooked(entry, omegas, resolution):
                if not started.is_set():
                    started.set()
                    release.wait(timeout=30)
                return forward(entry, omegas, resolution)

            server._forward = hooked
            async with AsyncPredictionServer(server) as aserver:
                filler = aserver.submit("m", np.full(4, -1.0))
                await asyncio.to_thread(started.wait, 30)
                doomed = aserver.submit("m", np.full(4, 5.0))
                doomed.cancel()
                release.set()
                await filler
                # The worker survived the cancelled request and still
                # serves: a fresh submit resolves correctly.
                omega = RNG.uniform(-3, 3, 4)
                u = await aserver.predict("m", omega)
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return server, omega, u

        server, omega, u = asyncio.run(run())
        np.testing.assert_allclose(
            u, predict_batch(*served[:2], omega)[0], atol=1e-6)
        assert server.stats.errors == 0
        assert not server._inflight     # cancelled dedup slot released

    def test_wait_for_timeout_does_not_wedge_the_fleet(self, served):
        """A client-side asyncio timeout cancels the wrapped future;
        everything submitted afterwards must still be served."""
        *_, registry = served

        async def run():
            server = PredictionServer(registry, ServerConfig(
                max_batch=2, max_wait_ms=1, workers=1, cache_bytes=0))
            release = threading.Event()
            forward = server._forward

            def slow_forward(entry, omegas, resolution):
                release.wait(timeout=30)
                return forward(entry, omegas, resolution)

            server._forward = slow_forward
            async with AsyncPredictionServer(server) as aserver:
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        aserver.predict("m", np.full(4, 1.0)), timeout=0.01)
                release.set()
                lane = [aserver.submit("m", RNG.uniform(-3, 3, 4))
                        for _ in range(4)]
                await asyncio.gather(*lane)
            return server

        server = asyncio.run(run())
        assert server.stats.errors == 0
        assert not server._inflight

    def test_cache_hit_resolves_without_workers_running(self, served):
        *_, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        expected = server.predict("m", omega)    # sync warm-up fill

        async def run():
            # Wrapped but never started: a cache hit still awaits fine.
            return await AsyncPredictionServer(server).predict("m", omega)

        np.testing.assert_array_equal(asyncio.run(run()), expected)
