"""Concurrency stress: barrier-released thread storms against the server.

The server's claims — dedup, cache fill-before-inflight-drop, bounded
queue, executor hand-off — are all about what happens when many clients
arrive *at once*.  These tests release N threads from a barrier onto
overlapping request sets and then check the accounting identities that
only hold if every hand-off is race-free:

    requests == cache_hits + dedup_hits + batched_requests   (errors 0)

i.e. every submitted request is answered exactly once, by exactly one of
the three paths, and nothing is computed twice or leaked in flight.

A deadlock anywhere in here would otherwise stall the suite silently;
``faulthandler.dump_traceback_later`` dumps every thread's stack and
kills the process instead — a diagnosable failure, not a sleep that got
unlucky.
"""

import faulthandler
import threading

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    ModelRegistry, PredictionServer, ServerConfig, ServerOverloaded,
)

RNG = np.random.default_rng(47)

HANG_DUMP_S = 120.0


@pytest.fixture(autouse=True)
def hang_guard():
    """Dump all thread stacks and abort if a stress test wedges."""
    faulthandler.dump_traceback_later(HANG_DUMP_S, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    return model, problem, registry


def _storm(server, n_threads, per_thread_omegas):
    """Release ``n_threads`` from a barrier; each submits its ω rows and
    gathers results.  Returns {thread_index: [(omega, field), ...]}."""
    barrier = threading.Barrier(n_threads)
    results: dict[int, list] = {}
    errors: list[BaseException] = []

    def client(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            futures = [(w, server.submit("m", w))
                       for w in per_thread_omegas[index]]
            results[index] = [(w, f.result(timeout=60)) for w, f in futures]
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=90)
        assert not t.is_alive(), "client thread wedged"
    assert not errors, errors
    return results


class TestThreadStorm:
    N_THREADS = 8
    N_SHARED = 6
    N_DISTINCT = 6

    def test_identical_and_distinct_requests_race_free(self, served):
        model, problem, registry = served
        shared = RNG.uniform(-3, 3, size=(self.N_SHARED, 4))
        distinct = RNG.uniform(-3, 3,
                               size=(self.N_THREADS, self.N_DISTINCT, 4))
        per_thread = [np.concatenate([shared, distinct[i]])
                      for i in range(self.N_THREADS)]
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=1.0, workers=2))
        with server:
            results = _storm(server, self.N_THREADS, per_thread)

        # Correctness: every thread got the right field for its ω.
        for rows in results.values():
            got = np.stack([u for _, u in rows])
            ref = predict_batch(model, problem,
                                np.stack([w for w, _ in rows]))
            np.testing.assert_allclose(got, ref, atol=1e-6)

        s = server.stats
        total = self.N_THREADS * (self.N_SHARED + self.N_DISTINCT)
        assert s.requests == total
        assert s.errors == 0
        # Conservation: each request answered by exactly one path.
        assert s.cache_hits + s.dedup_hits + s.batched_requests == total
        # Each shared ω computed exactly once across all 8 threads (the
        # cache is filled *before* the in-flight entry drops, so a twin
        # hits one of the two — never neither, never a second forward);
        # each distinct ω computed exactly once trivially.
        n_unique = self.N_SHARED + self.N_THREADS * self.N_DISTINCT
        assert s.batched_requests == n_unique
        assert s.cache_hits + s.dedup_hits == total - n_unique
        # No future leaks: nothing left in flight, nothing unresolved.
        assert not server._inflight
        assert server._queue.qsize() == 0

    def test_storm_against_bounded_queue_sheds_not_wedges(self, served):
        """Backpressure under a storm must reject cleanly — every client
        either gets a field or a keyed rejection, and the books balance."""
        model, problem, registry = served
        n_threads, per = 6, 8
        omegas = RNG.uniform(-3, 3, size=(n_threads, per, 4))
        server = PredictionServer(registry, ServerConfig(
            max_batch=2, max_wait_ms=0.5, workers=1, cache_bytes=0,
            max_pending=4))
        barrier = threading.Barrier(n_threads)
        outcomes: list[str] = []
        lock = threading.Lock()
        failures: list[BaseException] = []

        def client(index: int) -> None:
            try:
                barrier.wait(timeout=30)
                for w in omegas[index]:
                    try:
                        u = server.submit("m", w).result(timeout=60)
                        np.testing.assert_allclose(
                            u, predict_batch(model, problem, w)[0], atol=1e-6)
                        with lock:
                            outcomes.append("served")
                    except ServerOverloaded:
                        with lock:
                            outcomes.append("rejected")
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(i,), daemon=True)
                   for i in range(n_threads)]
        with server:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90)
                assert not t.is_alive(), "client thread wedged"
        assert not failures, failures
        s = server.stats
        assert len(outcomes) == n_threads * per
        assert outcomes.count("rejected") == s.rejected
        assert outcomes.count("served") == n_threads * per - s.rejected
        assert s.errors == 0
        assert not server._inflight


class TestProcessExecutorStorm:
    def test_no_deadlock_with_process_pool(self, served):
        """Thread clients + worker threads + a fork process pool: the
        layered hand-off must neither deadlock nor duplicate compute."""
        model, problem, registry = served
        n_threads = 4
        shared = RNG.uniform(-3, 3, size=(2, 4))
        per_thread = [
            np.concatenate([shared, RNG.uniform(-3, 3, size=(2, 4))])
            for _ in range(n_threads)]
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=2.0, workers=2, executor="process"))
        try:
            with server:
                results = _storm(server, n_threads, per_thread)
        finally:
            server.close()
        for rows in results.values():
            got = np.stack([u for _, u in rows])
            ref = predict_batch(model, problem,
                                np.stack([w for w, _ in rows]))
            np.testing.assert_allclose(got, ref, atol=1e-6)
        s = server.stats
        total = n_threads * 4
        assert s.errors == 0
        assert s.cache_hits + s.dedup_hits + s.batched_requests == total
        assert not server._inflight
        # close() released the pool; the next use would rebuild lazily.
        assert server._executor is None
