"""Resilience layer: retry budgets, hedged reads, circuit breakers.

Contracts pinned here:

* **Retry policy** — full-jitter backoff windows are honored exactly
  under a seeded RNG and forged clock; the token-bucket budget caps
  retries at ``burst + rate * t`` whatever the failure rate; throttles
  are retried at exactly their ``retry_after_s``.
* **Circuit breaker** — the closed → open → half-open machine under a
  forged clock: threshold trips, cool-down rejections, trial slots,
  deterministic ``tick``, and the re-arm that keeps a half-open
  circuit from wedging when a trial never reports back.
* **Hedge policy** — warmup returns ``max_delay_s``; after warmup the
  delay tracks the rolling latency quantile, clamped.
* **Fleet integration** — retries ride through transient verdicts with
  every attempt individually conserved; a hedged read beats a slow
  primary and the loser is cancelled, with ``served`` counted exactly
  once; an open circuit reorders replicas without dropping a request.
  ``FleetStats.lost == 0`` in all of it.
"""

import time

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    AdmissionController, BreakerConfig, CircuitBreaker, FleetConfig,
    HedgeConfig, HedgePolicy, ResilienceConfig, RetryConfig, RetryPolicy,
    ServerConfig, ServerOverloaded, ShardedFleet, TenantQuota,
    TenantThrottled, VirtualClock, install_resilience, uninstall_resilience,
)
from repro.serve.errors import FleetUnavailable


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    return model, problem


def _fleet(shards=2, replicas=2, **fleet_kw) -> ShardedFleet:
    return ShardedFleet(FleetConfig(
        shards=shards, replicas=replicas,
        server=ServerConfig(max_batch=4, max_wait_ms=0.0, workers=1,
                            cache_bytes=0), **fleet_kw))


def _overloaded() -> ServerOverloaded:
    return ServerOverloaded("m", None, 9, 9)


def _unavailable() -> FleetUnavailable:
    return FleetUnavailable("m", ["shard-00"])


def _throttled(after_s: float) -> TenantThrottled:
    return TenantThrottled("m", "t", after_s, rate=1.0, burst=1.0)


class TestRetryPolicy:
    def test_non_retryable_returns_none(self):
        clock = VirtualClock()
        policy = RetryPolicy(RetryConfig(), clock=clock)
        assert policy.plan(ValueError("bad omega"), 0) is None
        assert policy.retries == 0

    def test_transient_verdicts_are_retryable_by_default(self):
        policy = RetryPolicy(RetryConfig(), clock=VirtualClock())
        for exc in (_overloaded(), _unavailable(), _throttled(0.1)):
            assert policy.retryable(exc)
        assert not policy.retryable(RuntimeError("shard exploded"))

    def test_custom_retryable_predicate(self):
        policy = RetryPolicy(
            RetryConfig(), clock=VirtualClock(),
            retryable=lambda exc: isinstance(exc, OSError))
        assert policy.plan(OSError(), 0) is not None
        assert policy.plan(_overloaded(), 0) is None

    def test_max_attempts_exhausts(self):
        policy = RetryPolicy(RetryConfig(max_attempts=3),
                             clock=VirtualClock())
        assert policy.plan(_overloaded(), 0) is not None
        assert policy.plan(_overloaded(), 1) is not None
        assert policy.plan(_overloaded(), 2) is None   # 3rd try was the last
        assert policy.exhausted == 1
        assert policy.retries == 2

    def test_full_jitter_window_escalates_and_caps(self):
        cfg = RetryConfig(max_attempts=10, base_backoff_s=0.01,
                          max_backoff_s=0.05, budget_burst=100.0)
        policy = RetryPolicy(cfg, clock=VirtualClock())
        for attempt in range(8):
            delay = policy.plan(_overloaded(), attempt)
            window = min(cfg.max_backoff_s,
                         cfg.base_backoff_s * 2.0 ** attempt)
            assert 0.0 <= delay <= window

    def test_jitter_is_deterministic_per_seed(self):
        def delays(seed):
            policy = RetryPolicy(
                RetryConfig(max_attempts=10, budget_burst=100.0, seed=seed),
                clock=VirtualClock())
            return [policy.plan(_overloaded(), a) for a in range(6)]

        assert delays(5) == delays(5)
        assert delays(5) != delays(6)

    def test_throttle_honored_at_exact_retry_after(self):
        policy = RetryPolicy(RetryConfig(), clock=VirtualClock())
        assert policy.plan(_throttled(0.125), 0) == 0.125
        assert policy.plan(_throttled(-1.0), 1) == 0.0   # never negative

    def test_budget_denies_then_refills(self):
        clock = VirtualClock()
        policy = RetryPolicy(
            RetryConfig(max_attempts=100, budget_rate=2.0, budget_burst=2.0),
            clock=clock)
        assert policy.plan(_overloaded(), 0) is not None
        assert policy.plan(_overloaded(), 0) is not None
        assert policy.plan(_overloaded(), 0) is None     # bucket empty
        assert policy.denied == 1
        clock.advance(0.5)                               # refills one token
        assert policy.plan(_overloaded(), 0) is not None
        assert policy.retries == 3

    def test_budget_ceiling_formula(self):
        policy = RetryPolicy(RetryConfig(budget_rate=2.0, budget_burst=8.0),
                             clock=VirtualClock())
        assert policy.budget_ceiling(0.0) == 8.0
        assert policy.budget_ceiling(5.0) == 18.0
        assert policy.budget_ceiling(-3.0) == 8.0

    def test_budget_never_exceeds_ceiling_under_storm(self):
        """However many callers fail, granted retries stay under
        burst + rate * elapsed — the storm brake."""
        clock = VirtualClock()
        policy = RetryPolicy(
            RetryConfig(max_attempts=100, budget_rate=4.0, budget_burst=3.0),
            clock=clock)
        granted = 0
        for _ in range(50):
            clock.advance(0.05)
            for _ in range(10):                          # a failing burst
                if policy.plan(_overloaded(), 0) is not None:
                    granted += 1
        assert granted == policy.retries
        assert granted <= policy.budget_ceiling(50 * 0.05)

    def test_tokens_property_reports_budget(self):
        policy = RetryPolicy(RetryConfig(budget_burst=4.0),
                             clock=VirtualClock())
        assert policy.tokens == 4.0
        policy.plan(_overloaded(), 0)
        assert policy.tokens == 3.0

    def test_parameter_validation(self):
        for bad in (dict(max_attempts=0), dict(base_backoff_s=0.0),
                    dict(base_backoff_s=1.0, max_backoff_s=0.5),
                    dict(budget_rate=0.0), dict(budget_burst=0.5)):
            with pytest.raises(ValueError):
                RetryConfig(**bad)


class TestHedgePolicy:
    def test_warmup_returns_max_delay(self):
        policy = HedgePolicy(HedgeConfig(warmup=4, max_delay_s=0.1))
        for _ in range(3):
            policy.observe(0.001)
        assert policy.delay_s() == 0.1

    def test_tracks_quantile_after_warmup(self):
        policy = HedgePolicy(HedgeConfig(
            quantile=50.0, warmup=4, min_delay_s=0.001, max_delay_s=1.0))
        for latency in (0.01, 0.02, 0.03, 0.04):
            policy.observe(latency)
        assert policy.delay_s() == pytest.approx(0.025)

    def test_delay_clamped_to_bounds(self):
        policy = HedgePolicy(HedgeConfig(
            quantile=50.0, warmup=2, min_delay_s=0.01, max_delay_s=0.02))
        for latency in (1e-6, 1e-6):
            policy.observe(latency)
        assert policy.delay_s() == 0.01
        for latency in (5.0,) * 10:
            policy.observe(latency)
        assert policy.delay_s() == 0.02

    def test_window_is_rolling(self):
        policy = HedgePolicy(HedgeConfig(
            quantile=50.0, warmup=2, window=4, max_delay_s=10.0))
        for latency in (9.0,) * 4 + (1.0,) * 4:   # old samples roll out
            policy.observe(latency)
        assert policy.delay_s() == pytest.approx(1.0)

    def test_parameter_validation(self):
        for bad in (dict(quantile=0.0), dict(quantile=100.0),
                    dict(min_delay_s=0.0),
                    dict(min_delay_s=0.5, max_delay_s=0.1),
                    dict(window=0), dict(warmup=0)):
            with pytest.raises(ValueError):
                HedgeConfig(**bad)


class TestCircuitBreaker:
    KEY = ("m", "shard-00")

    def _breaker(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_after_s", 1.0)
        return CircuitBreaker(BreakerConfig(**kw), clock=clock)

    def test_closed_allows_and_subthreshold_failures_stay_closed(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        assert breaker.allow(self.KEY)
        breaker.record_failure(self.KEY)
        breaker.record_failure(self.KEY)
        assert breaker.state(self.KEY) == "closed"
        assert breaker.allow(self.KEY)

    def test_threshold_trips_open_and_rejects(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        assert breaker.state(self.KEY) == "open"
        assert breaker.trips == 1
        assert not breaker.allow(self.KEY)
        assert breaker.rejections == 1
        assert breaker.snapshot() == {self.KEY: "open"}

    def test_success_below_threshold_forgets_the_streak(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        breaker.record_failure(self.KEY)
        breaker.record_failure(self.KEY)
        breaker.record_success(self.KEY)          # streak reset
        breaker.record_failure(self.KEY)
        breaker.record_failure(self.KEY)
        assert breaker.state(self.KEY) == "closed"

    def test_cooldown_elapses_into_half_open_trial(self):
        clock = VirtualClock()
        breaker = self._breaker(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        clock.advance(1.0)
        assert breaker.allow(self.KEY)            # the one trial slot
        assert breaker.state(self.KEY) == "half-open"
        assert breaker.half_opens == 1
        assert not breaker.allow(self.KEY)        # slots exhausted

    def test_trial_success_closes_trial_failure_reopens(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        clock.advance(1.0)
        assert breaker.allow(self.KEY)
        breaker.record_success(self.KEY)
        assert breaker.state(self.KEY) == "closed"
        assert breaker.resets == 1
        assert breaker.allow(self.KEY)

        other = ("m", "shard-01")
        for _ in range(3):
            breaker.record_failure(other)
        clock.advance(1.0)
        assert breaker.allow(other)
        breaker.record_failure(other)             # trial failed: re-open
        assert breaker.state(other) == "open"
        assert breaker.trips == 3
        assert not breaker.allow(other)

    def test_failure_while_open_restarts_cooldown(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        clock.advance(0.9)
        breaker.record_failure(self.KEY)          # still failing
        clock.advance(0.5)                        # 1.4s after the trip...
        assert not breaker.allow(self.KEY)        # ...but cooldown restarted
        clock.advance(0.6)                        # past the restarted window
        assert breaker.allow(self.KEY)

    def test_unresolved_trial_rearms_instead_of_wedging(self):
        """A trial slot granted but never reported back (the request
        went elsewhere) must not lock the circuit half-open forever."""
        clock = VirtualClock()
        breaker = self._breaker(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        clock.advance(1.0)
        assert breaker.allow(self.KEY)            # trial slot, no outcome
        assert not breaker.allow(self.KEY)
        clock.advance(1.0)
        assert breaker.allow(self.KEY)            # re-armed, not wedged

    def test_tick_advances_open_circuits_deterministically(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(self.KEY)
        assert breaker.tick(now=0.5) == []
        moved = breaker.tick(now=1.0)
        assert moved == [self.KEY]
        assert breaker.state(self.KEY) == "half-open"
        assert breaker.tick(now=2.0) == []        # already half-open

    def test_keys_are_independent(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(("m", "a"))
        assert not breaker.allow(("m", "a"))
        assert breaker.allow(("m", "b"))
        assert breaker.allow(("other", "a"))

    def test_parameter_validation(self):
        for bad in (dict(failure_threshold=0), dict(reset_after_s=0.0),
                    dict(half_open_max=0)):
            with pytest.raises(ValueError):
                BreakerConfig(**bad)


class TestInstallResilience:
    def test_default_config_installs_all_three_seams(self, served):
        fleet = _fleet()
        assert fleet.retry is None
        assert fleet.hedge is None
        assert fleet.breaker is None
        install_resilience(fleet)
        assert isinstance(fleet.retry, RetryPolicy)
        assert isinstance(fleet.hedge, HedgePolicy)
        assert isinstance(fleet.breaker, CircuitBreaker)
        uninstall_resilience(fleet)
        assert (fleet.retry, fleet.hedge, fleet.breaker) == (None,) * 3

    def test_partial_config_leaves_other_seams_alone(self, served):
        fleet = _fleet()
        install_resilience(fleet, ResilienceConfig(
            retry=RetryConfig(max_attempts=2)))
        assert fleet.retry.config.max_attempts == 2
        assert fleet.hedge is None
        assert fleet.breaker is None

    def test_shared_clock_drives_budget_and_breaker(self, served):
        clock = VirtualClock()
        fleet = _fleet()
        install_resilience(fleet, ResilienceConfig(
            retry=RetryConfig(budget_rate=1.0, budget_burst=1.0,
                              max_attempts=10),
            breaker=BreakerConfig()), clock=clock)
        assert fleet.retry.plan(_overloaded(), 0) is not None
        assert fleet.retry.plan(_overloaded(), 0) is None
        clock.advance(1.0)
        assert fleet.retry.plan(_overloaded(), 0) is not None


class TestFleetRetryIntegration:
    def test_predict_rides_through_transient_overload(self, served):
        model, problem = served
        fleet = _fleet(shards=1, replicas=1)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=5, base_backoff_s=0.001, max_backoff_s=0.002)))
        shard = fleet.shards[0]
        real = shard.server.submit
        fails = {"n": 0}

        def flaky(*args, **kwargs):
            if fails["n"] < 2:
                fails["n"] += 1
                raise ServerOverloaded("m", None, 9, 9)
            return real(*args, **kwargs)

        shard.server.submit = flaky
        omega = np.linspace(0.2, 0.8, 4)
        with fleet:
            u = fleet.predict("m", omega, timeout=30)
        np.testing.assert_allclose(
            u, predict_batch(model, problem, omega)[0], atol=1e-12)
        s = fleet.stats
        # Every attempt individually conserved: 3 submits, 2 rejected,
        # 1 served, 2 retried, lost == 0.
        assert s.submitted == 3
        assert s.rejected == 2
        assert s.served == 1
        assert s.retried == 2
        assert s.lost == 0

    def test_retry_budget_caps_the_storm(self, served):
        model, problem = served
        fleet = _fleet(shards=1, replicas=1)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=50, base_backoff_s=0.001, max_backoff_s=0.002,
            budget_rate=0.001, budget_burst=1.0)))
        shard = fleet.shards[0]

        def always_full(*args, **kwargs):
            raise ServerOverloaded("m", None, 9, 9)

        shard.server.submit = always_full
        with fleet:
            with pytest.raises(ServerOverloaded):
                fleet.predict("m", np.zeros(4), timeout=30)
        # One retry granted by the burst, then the empty bucket (not
        # max_attempts) ended the loop.
        assert fleet.stats.retried == 1
        assert fleet.retry.denied == 1
        assert fleet.stats.lost == 0

    def test_throttled_request_retries_after_quota_refills(self, served):
        model, problem = served
        fleet = _fleet(shards=1, replicas=1)
        fleet.register_model("m", model, problem)
        fleet.admission = AdmissionController(
            TenantQuota(rate=200.0, burst=1.0))
        install_resilience(fleet, ResilienceConfig(retry=RetryConfig(
            max_attempts=5)))
        with fleet:
            fleet.predict("m", np.zeros(4), tenant="t", timeout=30)
            # Bucket now empty: the second predict is throttled, waits
            # retry_after_s (~5 ms at rate 200), then succeeds.
            fleet.predict("m", np.ones(4), tenant="t", timeout=30)
        s = fleet.stats
        assert s.throttled >= 1
        assert s.retried >= 1
        assert s.served == 2
        assert s.lost == 0

    def test_non_retryable_error_raises_immediately(self, served):
        model, problem = served
        fleet = _fleet(shards=1, replicas=1)
        fleet.register_model("m", model, problem)
        install_resilience(fleet)
        with fleet:
            with pytest.raises(ValueError):
                fleet.predict("m", np.zeros(7), timeout=30)   # wrong arity
        assert fleet.stats.retried == 0
        assert fleet.stats.lost == 0


class TestFleetHedgeIntegration:
    def _hot_primary_fleet(self, served, hot_delay_s=0.25):
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        primary_id, _ = fleet.replicas_for("m")
        by_id = {s.id: s for s in fleet.shards}
        hot = by_id[primary_id].server
        forward = hot._forward

        def slow(entry, omegas, resolution):
            time.sleep(hot_delay_s)
            return forward(entry, omegas, resolution)

        hot._forward = slow
        return fleet, model, problem

    def test_timer_hedge_beats_slow_primary(self, served):
        fleet, model, problem = self._hot_primary_fleet(served)
        install_resilience(fleet, ResilienceConfig(hedge=HedgeConfig(
            max_delay_s=0.01)))     # pre-warmup: hedge fires at 10 ms
        omega = np.linspace(0.2, 0.8, 4)
        with fleet:
            t0 = time.perf_counter()
            u = fleet.predict("m", omega, timeout=30)
            elapsed = time.perf_counter() - t0
        np.testing.assert_allclose(
            u, predict_batch(model, problem, omega)[0], atol=1e-12)
        s = fleet.stats
        assert s.hedges == 1
        assert s.hedged_wins == 1
        assert s.served == 1                 # first answer won exactly once
        assert s.lost == 0
        assert elapsed < 0.25                # did not wait out the primary

    def test_direct_hedge_dispatch_is_deterministic(self, served):
        fleet, model, problem = self._hot_primary_fleet(served)
        # max_delay_s far beyond the test: the timer never fires, the
        # test owns the dispatch moment.
        fleet.hedge = HedgePolicy(HedgeConfig(max_delay_s=30.0))
        with fleet:
            future = fleet.submit("m", np.linspace(0.2, 0.8, 4))
            assert fleet.hedge_dispatch(future) is True
            assert fleet.hedge_dispatch(future) is False   # already hedged
            fleet.await_result(future, timeout=30)
        s = fleet.stats
        assert s.hedges == 1
        assert s.hedged_wins == 1
        assert fleet.hedge.wins == 1
        assert s.lost == 0

    def test_hedge_dispatch_refuses_done_future(self, served):
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        fleet.hedge = HedgePolicy(HedgeConfig(max_delay_s=30.0))
        with fleet:
            future = fleet.submit("m", np.linspace(0.2, 0.8, 4))
            fleet.await_result(future, timeout=30)
            assert fleet.hedge_dispatch(future) is False
        assert fleet.stats.hedges == 0

    def test_queued_hedge_loser_is_cancelled(self, served):
        """When the primary answers first, a hedge still waiting in the
        backup's queue is shed before it burns a worker slot."""
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        fleet.hedge = HedgePolicy(HedgeConfig(max_delay_s=30.0))
        _, replica_id = fleet.replicas_for("m")
        by_id = {s.id: s for s in fleet.shards}
        backup = by_id[replica_id].server
        forward = backup._forward

        def slow(entry, omegas, resolution):
            time.sleep(0.3)
            return forward(entry, omegas, resolution)

        backup._forward = slow
        with fleet:
            # Occupy the backup's only worker so the hedge inner queues.
            blocker = backup.submit("m", np.zeros(4))
            time.sleep(0.05)                 # let the blocker start
            future = fleet.submit("m", np.linspace(0.2, 0.8, 4))
            assert fleet.hedge_dispatch(future) is True
            fleet.await_result(future, timeout=30)
            blocker.result(timeout=30)
        s = fleet.stats
        assert s.hedges == 1
        assert s.hedged_wins == 0            # the fast primary won
        assert s.hedge_cancels == 1          # the queued loser was shed
        assert fleet.hedge.cancels == 1
        assert s.lost == 0


class TestFleetBreakerIntegration:
    def test_open_circuit_reorders_but_never_drops(self, served):
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=1,
                                  reset_after_s=60.0)))
        primary_id, _ = fleet.replicas_for("m")
        fleet.breaker.record_failure(("m", primary_id))
        assert fleet.breaker.state(("m", primary_id)) == "open"
        omega = np.linspace(0.2, 0.8, 4)
        with fleet:
            u = fleet.predict("m", omega, timeout=30)
        np.testing.assert_allclose(
            u, predict_batch(model, problem, omega)[0], atol=1e-12)
        s = fleet.stats
        assert s.breaker_open >= 1           # the deflection was counted
        assert s.served == 1
        assert s.lost == 0

    def test_faulting_shard_trips_its_circuit(self, served):
        model, problem = served
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=1)))
        primary_id, _ = fleet.replicas_for("m")
        by_id = {s.id: s for s in fleet.shards}

        def dead(*args, **kwargs):
            raise ConnectionError("host down")

        by_id[primary_id].server.submit = dead
        with fleet:
            fleet.predict("m", np.linspace(0.2, 0.8, 4), timeout=30)
        assert fleet.breaker.state(("m", primary_id)) == "open"
        assert fleet.breaker.trips == 1
        s = fleet.stats
        assert s.failovers == 1
        assert s.served == 1
        assert s.lost == 0

    def test_answer_closes_the_circuit_again(self, served):
        model, problem = served
        clock = VirtualClock()
        fleet = _fleet(shards=2, replicas=2)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=1, reset_after_s=0.5)),
            clock=clock)
        primary_id, _ = fleet.replicas_for("m")
        key = ("m", primary_id)
        fleet.breaker.record_failure(key)
        clock.advance(0.5)
        assert fleet.breaker.tick() == [key]         # half-open trial due
        with fleet:
            fleet.predict("m", np.linspace(0.2, 0.8, 4), timeout=30)
        # The primary answered its trial: circuit closed, resets counted.
        assert fleet.breaker.state(key) == "closed"
        assert fleet.breaker.resets == 1
        assert fleet.stats.lost == 0


class TestResilienceStorm:
    def test_conservation_with_full_stack_under_faults(self, served):
        """Kill + restore mid-storm with retry, hedge and breaker all
        installed: every request accounted, lost == 0."""
        model, problem = served
        fleet = _fleet(shards=3, replicas=2)
        fleet.register_model("m", model, problem)
        install_resilience(fleet, ResilienceConfig(
            retry=RetryConfig(max_attempts=4, base_backoff_s=0.001,
                              max_backoff_s=0.01),
            hedge=HedgeConfig(max_delay_s=0.05),
            breaker=BreakerConfig(failure_threshold=2, reset_after_s=0.2)))
        victim = fleet.shards[0]
        real = victim.server.submit

        def dead(*args, **kwargs):
            raise ConnectionError("scripted kill")

        omegas = np.random.default_rng(3).uniform(-1, 1, size=(30, 4))
        with fleet:
            for i, w in enumerate(omegas):
                if i == 5:
                    victim.server.submit = dead
                if i == 20:
                    victim.server.submit = real
                fleet.predict("m", w, timeout=30)
        s = fleet.stats
        assert s.served == 30
        assert s.lost == 0
        assert s.submitted >= 30


class TestHedgeQuantileHygiene:
    """Regression: the hedge window must see *service* latency.

    The old delivery path fed ``now - state.submitted_at`` — the
    client-anchored wait — into ``hedge.observe``.  Every hang failover
    and hedged win then folded the dead primary's wait into the sample,
    ratcheting the tracked quantile toward ``max_delay_s`` and turning
    hedging off exactly when it was earning its keep.  Delivery now
    observes ``now - anchor`` (the winning attempt's dispatch stamp),
    and only delivered winners observe at all.
    """

    def _policy(self):
        return HedgePolicy(HedgeConfig(
            quantile=50.0, warmup=1, window=16,
            min_delay_s=1e-4, max_delay_s=10.0))

    def test_observe_anchored_to_attempt_not_submit(self):
        from repro.serve.fleet import _FleetFuture, _RouteState

        fleet = _fleet()
        fleet.hedge = self._policy()
        state = _RouteState("m", np.zeros(4), None, None, None, [])
        state.submitted_at = time.monotonic() - 100.0   # forged: the
        out = _FleetFuture(state)        # client waited out a hung primary
        anchor = time.monotonic() - 0.005  # the replica answered in ~5 ms
        assert fleet._deliver(out, state, result=np.zeros(2),
                              counter="served", anchor=anchor)
        # Client latency keeps the truth: the request *did* wait 100 s.
        assert fleet._latencies[-1] > 99.0
        # The hedge window got the 5 ms service latency, not the wait —
        # were it poisoned, the tracked delay would clamp to max (10 s).
        assert fleet.hedge.delay_s() < 0.1

    def test_failed_delivery_records_no_sample(self):
        from repro.serve.fleet import _FleetFuture, _RouteState

        fleet = _fleet()
        fleet.hedge = self._policy()
        state = _RouteState("m", np.zeros(4), None, None, None, [])
        out = _FleetFuture(state)
        fleet._deliver(out, state, exc=_overloaded(), counter="rejected")
        assert len(fleet.hedge._samples) == 0

    def test_straggler_after_winner_records_no_sample(self):
        from repro.serve.fleet import _FleetFuture, _RouteState

        fleet = _fleet()
        fleet.hedge = self._policy()
        state = _RouteState("m", np.zeros(4), None, None, None, [])
        out = _FleetFuture(state)
        assert fleet._deliver(out, state, result=np.zeros(2),
                              counter="served", anchor=time.monotonic())
        # The losing attempt resolves later: delivered-guard bounces it
        # before it can observe (or double-count).
        assert not fleet._deliver(out, state, result=np.zeros(2),
                                  counter="served",
                                  anchor=time.monotonic() - 50.0)
        assert len(fleet.hedge._samples) == 1
