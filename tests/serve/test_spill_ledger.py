"""Shared spill ledger: one disk budget across cache instances/processes.

Contracts pinned here:

* **Shared budget** — N caches spilling into one directory never hold
  more than ``spill_max_bytes`` on disk combined; LRU order decides the
  victims regardless of which instance wrote them.
* **Cross-process** — a cache in a child process joins the same ledger,
  sees the parent's files, and its writes evict them under one budget.
* **Dedup** — two instances caching the same key share one npz file.
* **Fleet integration** — ``FleetConfig(shared_spill=True)`` spills all
  shards into one flat directory (no per-shard subdirs) under one budget.
"""

import glob
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serve import FleetConfig, LRUCache, ServerConfig, ShardedFleet
from repro.serve.spill_ledger import LEDGER_NAME, SpillLedger

VALUE = np.arange(256, dtype=np.float64)     # ~2.3 KiB as npz
NPZ_BYTES = 2312                             # measured; tests only need scale
BUDGET = 5 * NPZ_BYTES + 200                 # fits ~5 entries


def _mk(tmp_path, **kw):
    kw.setdefault("max_bytes", 1 << 20)
    kw.setdefault("spill_dir", tmp_path)
    kw.setdefault("spill_max_bytes", BUDGET)
    kw.setdefault("shared_spill", True)
    return LRUCache(**kw)


def _disk_total(tmp_path) -> int:
    return sum(os.path.getsize(f)
               for f in glob.glob(os.path.join(str(tmp_path), "*.npz")))


class TestSpillLedger:
    def test_record_use_enforces_budget(self, tmp_path):
        ledger = SpillLedger(tmp_path, max_bytes=250)
        for i in range(4):
            (tmp_path / f"f{i}.npz").write_bytes(b"x" * 100)
            evicted, total = ledger.record_use(f"f{i}.npz", 100)
        assert total <= 250
        # f0 and f1 (least recently used) were deleted from disk.
        names = {p.name for p in tmp_path.glob("*.npz")}
        assert names == {"f2.npz", "f3.npz"}

    def test_touch_refreshes_recency(self, tmp_path):
        ledger = SpillLedger(tmp_path, max_bytes=250)
        for i in range(2):
            (tmp_path / f"f{i}.npz").write_bytes(b"x" * 100)
            ledger.record_use(f"f{i}.npz", 100)
        ledger.record_use("f0.npz", 100)          # touch: f1 is now LRU
        (tmp_path / "f2.npz").write_bytes(b"x" * 100)
        evicted, _ = ledger.record_use("f2.npz", 100)
        assert [n for n, _ in evicted] == ["f1.npz"]

    def test_remove_deregisters(self, tmp_path):
        ledger = SpillLedger(tmp_path, max_bytes=1000)
        (tmp_path / "f0.npz").write_bytes(b"x" * 100)
        ledger.record_use("f0.npz", 100)
        assert ledger.total_bytes() == 100
        assert ledger.remove("f0.npz") == 0

    def test_torn_ledger_rebuilt_from_scan(self, tmp_path):
        (tmp_path / "old.npz").write_bytes(b"x" * 100)
        (tmp_path / LEDGER_NAME).write_text("{not json")
        ledger = SpillLedger(tmp_path, max_bytes=1000)
        assert ledger.snapshot() == {"old.npz": 100}


class TestLedgerCorruption:
    """Garbage that *parses* as JSON must self-heal the same way a torn
    write does: rebuild from a directory scan, never crash eviction,
    never let the directory exceed the byte budget."""

    CASES = [
        # Structurally valid JSON, garbage content.
        '{"version": 1, "clock": 3, "files": {"a.npz": "junk"}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": [100]}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": [100, 1, 7]}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": ["100", 1]}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": [-5, 1]}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": [true, 1]}}',
        '{"version": 1, "clock": 3, "files": {"a.npz": null}}',
        '{"version": 1, "clock": "3", "files": {}}',
        '{"version": 1, "clock": true, "files": {}}',
        '{"version": 1, "files": {}}',
        '{"version": 99, "clock": 0, "files": {}}',
        '{"version": 1, "clock": 0, "files": []}',
        '[1, 2, 3]',
        'null',
        '',
    ]

    @pytest.mark.parametrize("blob", CASES)
    def test_garbage_ledger_self_heals(self, tmp_path, blob):
        (tmp_path / "real.npz").write_bytes(b"x" * 100)
        (tmp_path / LEDGER_NAME).write_text(blob)
        ledger = SpillLedger(tmp_path, max_bytes=1000)
        # Scan rebuild: the real on-disk file is re-adopted with its
        # stat size; the garbage entry names nothing and vanishes.
        assert ledger.snapshot() == {"real.npz": 100}

    @pytest.mark.parametrize("blob", CASES)
    def test_budget_invariant_survives_heal(self, tmp_path, blob):
        for i in range(4):
            (tmp_path / f"f{i}.npz").write_bytes(b"x" * 100)
        (tmp_path / LEDGER_NAME).write_text(blob)
        ledger = SpillLedger(tmp_path, max_bytes=250)
        evicted, total = ledger.ensure_budget()
        assert total <= 250
        assert _disk_total(tmp_path) <= 250
        assert len(evicted) == 2

    def test_garbage_entry_does_not_crash_record_use(self, tmp_path):
        # Regression: _evict unpacks every entry as (size, stamp); a
        # pre-validation ledger let {"a.npz": "junk"} reach that loop.
        (tmp_path / LEDGER_NAME).write_text(
            '{"version": 1, "clock": 1, "files": {"a.npz": "junk"}}')
        ledger = SpillLedger(tmp_path, max_bytes=250)
        (tmp_path / "b.npz").write_bytes(b"x" * 100)
        evicted, total = ledger.record_use("b.npz", 100)
        assert evicted == [] and total == 100

    def test_cache_recovers_through_corrupt_ledger(self, tmp_path):
        a = _mk(tmp_path)
        for i in range(3):
            a.put(("v1", "sig", i), VALUE)
        (tmp_path / LEDGER_NAME).write_text(
            '{"version": 1, "clock": 9, "files": {"x.npz": [1, 2, 3]}}')
        b = _mk(tmp_path)
        for i in range(10, 16):
            b.put(("v1", "sig", i), VALUE)
        assert _disk_total(tmp_path) <= BUDGET
        # The healed ledger still serves spill hits for surviving keys.
        fresh = _mk(tmp_path)
        assert fresh.get(("v1", "sig", 15)) is not None


class TestSharedSpillCache:
    def test_shared_budget_across_instances(self, tmp_path):
        a, b = _mk(tmp_path), _mk(tmp_path)
        for i in range(4):
            a.put(("v1", "sig", i), VALUE)
        for i in range(4, 8):
            b.put(("v1", "sig", i), VALUE)
        assert _disk_total(tmp_path) <= BUDGET
        # 8 distinct writes cannot all fit: somebody evicted.
        assert a.stats.spill_evictions + b.stats.spill_evictions > 0
        # The most recent write always survives.
        fresh = _mk(tmp_path)
        assert fresh.get(("v1", "sig", 7)) is not None
        assert fresh.stats.spill_hits == 1

    def test_instances_dedup_same_key(self, tmp_path):
        a, b = _mk(tmp_path), _mk(tmp_path)
        a.put(("v1", "sig", 0), VALUE)
        n0 = len(list(Path(tmp_path).glob("*.npz")))
        b.put(("v1", "sig", 0), VALUE)
        assert len(list(Path(tmp_path).glob("*.npz"))) == n0 == 1

    def test_eviction_by_peer_reflected_on_next_use(self, tmp_path):
        a, b = _mk(tmp_path), _mk(tmp_path)
        for i in range(5):
            a.put(("v1", "sig", i), VALUE)
        # b's writes evict a's oldest files; a's books catch up on its
        # next transaction rather than drifting forever.
        for i in range(10, 14):
            b.put(("v1", "sig", i), VALUE)
        a.put(("v1", "sig", 99), VALUE)
        assert a.stats.spill_bytes <= BUDGET
        assert a.stats.spill_bytes == _disk_total(tmp_path)

    def test_oversized_value_not_spilled(self, tmp_path):
        cache = _mk(tmp_path, spill_max_bytes=100)
        cache.put(("v1", "sig", 0), VALUE)       # npz > 100 bytes
        assert _disk_total(tmp_path) == 0

    def test_unshared_instances_keep_private_books(self, tmp_path):
        cache = _mk(tmp_path, shared_spill=False)
        cache.put(("v1", "sig", 0), VALUE)
        assert not (tmp_path / LEDGER_NAME).exists()

    def test_shared_spill_requires_budget(self, tmp_path):
        # Regression: shared_spill without spill_max_bytes once silently
        # dropped the ledger — multiple writers on one directory with no
        # coordination, the exact setup the ledger exists to prevent.
        with pytest.raises(ValueError, match="spill_max_bytes"):
            _mk(tmp_path, spill_max_bytes=None)

    def test_cross_process_budget(self, tmp_path):
        parent = _mk(tmp_path)
        for i in range(4):
            parent.put(("v1", "sig", i), VALUE)
        code = (
            "import sys, numpy as np\n"
            f"sys.path.insert(0, {str(Path('src').resolve())!r})\n"
            "from repro.serve import LRUCache\n"
            f"c = LRUCache(max_bytes=1<<20, spill_dir={str(tmp_path)!r},\n"
            f"             spill_max_bytes={BUDGET}, shared_spill=True)\n"
            "for i in range(100, 107):\n"
            "    c.put(('v1', 'sig', i), np.arange(256, dtype=np.float64))\n"
            "print(c.stats.spill_evictions)\n")
        r = subprocess.run([sys.executable, "-c", code],
                           capture_output=True, text=True, timeout=120)
        assert r.returncode == 0, r.stderr
        assert int(r.stdout.strip()) > 0          # the child evicted
        assert _disk_total(tmp_path) <= BUDGET
        # The child's last write is visible to the parent through disk.
        assert parent.get(("v1", "sig", 106)) is not None


class TestFleetSharedSpill:
    def test_fleet_spills_into_one_directory(self, tmp_path):
        from repro import MGDiffNet, PoissonProblem2D
        fleet = ShardedFleet(FleetConfig(
            shards=3, replicas=2, shared_spill=True,
            server=ServerConfig(cache_dir=str(tmp_path),
                                spill_max_bytes=1 << 20, cache_bytes=0)))
        try:
            model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
            fleet.register_model("m", model, PoissonProblem2D(16))
            om = np.linspace(0.2, 0.8, 4)
            u1 = fleet.predict("m", om)
            u2 = fleet.predict("m", om)     # second hit comes from spill
            np.testing.assert_array_equal(u1, u2)
        finally:
            fleet.close()
        # Flat shared directory: entries deduplicate across replicas.
        assert not [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(list(tmp_path.glob("*.npz"))) >= 1
        assert (tmp_path / LEDGER_NAME).exists()

    def test_fleet_private_dirs_without_flag(self, tmp_path):
        from repro import MGDiffNet, PoissonProblem2D
        fleet = ShardedFleet(FleetConfig(
            shards=2, replicas=2,
            server=ServerConfig(cache_dir=str(tmp_path), cache_bytes=0)))
        try:
            model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
            fleet.register_model("m", model, PoissonProblem2D(16))
            fleet.predict("m", np.linspace(0.2, 0.8, 4))
        finally:
            fleet.close()
        subdirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert subdirs == ["shard-00", "shard-01"]
