"""Micro-batching policy and the prediction server front-ends."""

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.serve import (
    MicroBatcher, ModelRegistry, PredictRequest, PredictionServer,
    ServerConfig,
)

RNG = np.random.default_rng(11)


def _request(name="m", resolution=16, omega=None):
    omega = np.zeros(4) if omega is None else omega
    return PredictRequest(model_name=name, omega=omega,
                         resolution=resolution, future=Future())


@pytest.fixture(scope="module")
def served():
    problem = PoissonProblem2D(16)
    model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=1)
    registry = ModelRegistry()
    registry.register_model("m", model, problem)
    return model, problem, registry


class TestMicroBatcher:
    def test_coalesces_up_to_max_batch(self):
        q = queue.Queue()
        for _ in range(5):
            q.put(_request())
        batch = MicroBatcher(max_batch=3, max_wait_ms=50).collect(q)
        assert len(batch) == 3
        assert q.qsize() == 2

    def test_respects_deadline(self):
        q = queue.Queue()
        q.put(_request())
        t0 = time.perf_counter()
        batch = MicroBatcher(max_batch=8, max_wait_ms=20).collect(q)
        waited = time.perf_counter() - t0
        assert len(batch) == 1
        assert waited < 0.5

    def test_zero_wait_serves_singletons(self):
        q = queue.Queue()
        q.put(_request())
        q.put(_request())
        batch = MicroBatcher(max_batch=8, max_wait_ms=0).collect(q)
        # Deadline already passed: drains what is queued, never waits.
        assert 1 <= len(batch) <= 2

    def test_stop_returns_empty(self):
        stop = threading.Event()
        stop.set()
        batch = MicroBatcher(max_batch=4, max_wait_ms=1).collect(
            queue.Queue(), stop=stop, poll_s=0.01)
        assert batch == []

    def test_grouping_splits_incompatible_requests(self):
        batch = [_request(resolution=16), _request(resolution=32),
                 _request(resolution=16), _request(name="other")]
        groups = MicroBatcher.group_compatible(batch)
        assert [len(g) for g in groups] == [2, 1, 1]
        assert groups[0][0] is batch[0] and groups[0][1] is batch[2]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_ms=-1)


class TestSyncFrontend:
    def test_matches_predict_batch(self, served):
        model, problem, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        ref = predict_batch(model, problem, omega)[0]
        np.testing.assert_allclose(server.predict("m", omega), ref,
                                   atol=1e-6)

    def test_cache_hit_on_repeat(self, served):
        *_, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        first = server.predict("m", omega)
        again = server.predict("m", omega)
        np.testing.assert_array_equal(first, again)
        assert server.stats.cache_hits == 1
        assert server.cache.stats.hits == 1

    def test_quantized_omegas_share_cache_entry(self, served):
        *_, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        server.predict("m", omega)
        server.predict("m", omega + 1e-8)
        assert server.stats.cache_hits == 1

    def test_wrong_arity_omega_rejected_at_submit(self, served):
        # Must fail fast in submit: inside a worker it would poison the
        # fused np.stack of its whole micro-batch group.
        *_, registry = served
        server = PredictionServer(registry)
        with pytest.raises(ValueError, match="length 4"):
            server.submit("m", np.zeros(3))

    def test_served_fields_read_only_on_miss_and_hit(self, served):
        *_, registry = served
        server = PredictionServer(registry)
        omega = RNG.uniform(-3, 3, 4)
        miss = server.predict("m", omega)
        hit = server.predict("m", omega)
        for u in (miss, hit):
            with pytest.raises(ValueError):
                u[0, 0] = 1.0

    def test_unknown_model_raises(self, served):
        *_, registry = served
        from repro.serve import RegistryError

        with pytest.raises(RegistryError, match="no model named"):
            PredictionServer(registry).predict("nope", np.zeros(4))


class TestWorkerFrontend:
    def test_coalesced_results_match_individual(self, served):
        """Micro-batch coalescing determinism: fused forward == per-call."""
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(12, 4))
        ref = predict_batch(model, problem, omegas)
        server = PredictionServer(registry, ServerConfig(
            max_batch=6, max_wait_ms=50, workers=1, cache_bytes=0))
        with server:
            futures = [server.submit("m", w) for w in omegas]
            got = np.stack([f.result(timeout=30) for f in futures])
        np.testing.assert_allclose(got, ref, atol=1e-6)
        assert server.stats.batches < len(omegas)  # coalescing happened
        assert server.stats.mean_batch_size > 1.0

    def test_predict_many_roundtrip(self, served):
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(5, 4))
        ref = predict_batch(model, problem, omegas)
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=10, workers=2))
        with server:
            got = server.predict_many("m", omegas, timeout=30)
        np.testing.assert_allclose(got, ref, atol=1e-6)

    def test_stop_drains_pending_requests(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=4, max_wait_ms=5, workers=1, cache_bytes=0))
        server.start()
        futures = [server.submit("m", RNG.uniform(-3, 3, 4))
                   for _ in range(6)]
        server.stop(drain=True)
        assert all(f.done() for f in futures)
        assert not server.running

    def test_submit_error_propagates_via_future(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=2, max_wait_ms=5, workers=1))
        with server:
            future = server.submit("m", np.zeros(4), resolution=7)  # odd: invalid
            with pytest.raises(ValueError):
                future.result(timeout=30)
        assert server.stats.errors == 1

    def test_in_flight_dedup_attaches_to_twin(self, served):
        """Identical requests queued behind a slow twin share one future
        and one compute."""
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        forward = server._forward
        started = threading.Event()
        release = threading.Event()

        def slow_forward(entry, omegas, resolution):
            started.set()
            release.wait(timeout=30)
            return forward(entry, omegas, resolution)

        server._forward = slow_forward
        omega = RNG.uniform(-3, 3, 4)
        try:
            with server:
                first = server.submit("m", omega)
                assert started.wait(timeout=30)
                twins = [server.submit("m", omega) for _ in range(3)]
                release.set()
                results = [f.result(timeout=30) for f in [first] + twins]
        finally:
            release.set()
        assert all(f is first for f in twins)
        assert server.stats.dedup_hits == 3
        for u in results[1:]:
            np.testing.assert_array_equal(u, results[0])
        # Exactly one forward computed all four requests.
        assert server.stats.batched_requests == 1
        assert not server._inflight

    def test_distinct_omegas_not_deduped(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(cache_bytes=0))
        a = server.submit("m", RNG.uniform(-3, 3, 4))
        b = server.submit("m", RNG.uniform(-3, 3, 4))
        assert a is not b
        assert server.stats.dedup_hits == 0

    def test_inflight_cleared_after_error(self, served):
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(cache_bytes=0))
        with pytest.raises(ValueError):
            server.predict("m", np.zeros(4), resolution=7)
        assert not server._inflight
        # A retry is a fresh computation, not an attach to a dead future.
        with pytest.raises(ValueError):
            server.predict("m", np.zeros(4), resolution=7)
        assert server.stats.dedup_hits == 0
        assert server.stats.errors == 2

    def test_undrained_stop_releases_inflight_keys(self, served):
        """A request abandoned by stop(drain=False) must not leave its
        dedup key behind — a later identical submit would attach to a
        future no worker will ever resolve."""
        model, problem, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        omega = RNG.uniform(-3, 3, 4)
        key = server._key(registry.get("m"), omega, 16)
        server.start()
        server._inflight[key] = Future()  # an abandoned queued twin
        server.stop(drain=False)
        assert key not in server._inflight
        # The retry computes fresh on the sync path instead of hanging.
        u = server.predict("m", omega)
        ref = predict_batch(model, problem, omega)[0]
        np.testing.assert_allclose(u, ref, atol=1e-6)
        server.close()

    def test_quantized_twins_dedup(self, served):
        """Dedup uses the cache key, so ω within the quantization step
        attach to each other exactly like cache hits would."""
        *_, registry = served
        server = PredictionServer(registry, ServerConfig(
            max_batch=1, max_wait_ms=0, workers=1, cache_bytes=0))
        release = threading.Event()
        forward = server._forward

        def slow_forward(entry, omegas, resolution):
            release.wait(timeout=30)
            return forward(entry, omegas, resolution)

        server._forward = slow_forward
        omega = RNG.uniform(-3, 3, 4)
        try:
            with server:
                first = server.submit("m", omega)
                twin = server.submit("m", omega + 1e-8)
                release.set()
                first.result(timeout=30)
        finally:
            release.set()
        assert twin is first
        assert server.stats.dedup_hits == 1

    def test_tiled_path_engages_above_threshold(self, served):
        model, problem, registry = served
        omegas = RNG.uniform(-3, 3, size=(3, 4))
        ref = predict_batch(model, problem, omegas)
        server = PredictionServer(registry, ServerConfig(
            tile_threshold_voxels=64, tile=8))  # 16^2 = 256 > 64
        got = server.predict_many("m", omegas)
        np.testing.assert_allclose(got, ref, atol=1e-5)
        assert server.stats.tiled_forwards >= 1
