"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def t64(array_or_shape, rng: np.random.Generator | None = None,
        requires_grad: bool = True) -> Tensor:
    """Build a float64 tensor for gradcheck-grade tests."""
    if isinstance(array_or_shape, tuple):
        assert rng is not None
        data = rng.standard_normal(array_or_shape)
    else:
        data = np.asarray(array_or_shape, dtype=np.float64)
    return Tensor(data, requires_grad=requires_grad, dtype=np.float64)
