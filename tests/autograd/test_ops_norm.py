"""Batch-norm op tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, batch_norm, gradcheck

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestTrainingMode:
    def test_output_standardized(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 6, 6)) * 4 + 2, dtype=np.float64)
        g = Tensor(np.ones(3, dtype=np.float64))
        b = Tensor(np.zeros(3, dtype=np.float64))
        y = batch_norm(x, g, b).data
        for c in range(3):
            assert y[:, c].mean() == pytest.approx(0.0, abs=1e-10)
            assert y[:, c].std() == pytest.approx(1.0, rel=1e-3)

    def test_gamma_beta_applied(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 5, 5)), dtype=np.float64)
        g = Tensor(np.array([2.0, 3.0]))
        b = Tensor(np.array([-1.0, 1.0]))
        y = batch_norm(x, g, b).data
        assert y[:, 0].mean() == pytest.approx(-1.0, abs=1e-6)
        assert y[:, 1].std() == pytest.approx(3.0, rel=1e-2)

    def test_gradcheck_2d(self, rng):
        x = t64((3, 2, 4, 4), rng)
        g = t64(rng.uniform(0.5, 2.0, 2))
        b = t64((2,), rng)
        gradcheck(lambda x, g, b: batch_norm(x, g, b), [x, g, b],
                  rtol=1e-3, atol=1e-5)

    def test_gradcheck_3d(self, rng):
        x = t64((2, 2, 3, 3, 3), rng)
        g = t64(rng.uniform(0.5, 2.0, 2))
        b = t64((2,), rng)
        gradcheck(lambda x, g, b: batch_norm(x, g, b), [x, g, b],
                  rtol=1e-3, atol=1e-5)


class TestInferenceMode:
    def test_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)), dtype=np.float64)
        g = Tensor(np.ones(2, dtype=np.float64))
        b = Tensor(np.zeros(2, dtype=np.float64))
        mean = np.array([1.0, -1.0])
        var = np.array([4.0, 9.0])
        y = batch_norm(x, g, b, running_mean=mean, running_var=var,
                       training=False).data
        expected = (x.data - mean.reshape(1, 2, 1, 1)) / np.sqrt(
            var.reshape(1, 2, 1, 1) + 1e-5)
        np.testing.assert_allclose(y, expected, rtol=1e-6)

    def test_missing_stats_raises(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 3, 3)))
        g = Tensor(np.ones(2))
        b = Tensor(np.zeros(2))
        with pytest.raises(ValueError):
            batch_norm(x, g, b, training=False)

    def test_inference_gradcheck(self, rng):
        x = t64((2, 2, 3, 3), rng)
        g = t64(rng.uniform(0.5, 2.0, 2))
        b = t64((2,), rng)
        mean = np.zeros(2)
        var = np.ones(2)
        gradcheck(lambda x, g, b: batch_norm(
            x, g, b, running_mean=mean, running_var=var, training=False),
            [x, g, b], rtol=1e-3, atol=1e-6)
