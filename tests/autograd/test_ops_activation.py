"""Activation/transcendental op tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, softplus

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestGradchecks:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp(), [t64((4, 4), rng)])

    def test_log(self, rng):
        a = t64(rng.uniform(0.5, 3.0, (4,)))
        gradcheck(lambda a: a.log(), [a])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid(), [t64((5, 5), rng)], rtol=1e-3)

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh(), [t64((5,), rng)], rtol=1e-3)

    def test_relu(self, rng):
        a = t64((6, 6), rng)
        a.data[np.abs(a.data) < 0.05] = 0.5  # keep away from the kink
        gradcheck(lambda a: a.relu(), [a])

    def test_leaky_relu(self, rng):
        a = t64((6, 6), rng)
        a.data[np.abs(a.data) < 0.05] = 0.5
        gradcheck(lambda a: a.leaky_relu(0.1), [a])

    def test_abs(self, rng):
        a = t64((6,), rng)
        a.data[np.abs(a.data) < 0.05] = 0.5
        gradcheck(lambda a: a.abs(), [a])

    def test_softplus(self, rng):
        gradcheck(lambda a: softplus(a), [t64((5,), rng)], rtol=1e-3)


class TestNumericalStability:
    def test_sigmoid_extreme_inputs(self):
        x = Tensor(np.array([-500.0, 0.0, 500.0]))
        y = x.sigmoid().data
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softplus_large_input_no_overflow(self):
        x = Tensor(np.array([800.0]))
        assert np.isfinite(softplus(x).data).all()

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(x.leaky_relu(0.1).data, [-0.2, 3.0])

    def test_relu_zero_has_zero_grad(self):
        x = Tensor(np.array([0.0]), requires_grad=True, dtype=np.float64)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0])
