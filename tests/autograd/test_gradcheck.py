"""The gradient checker itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.function import Context, Function


class _WrongGrad(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a)
        return a * a

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        return (grad * a,)  # wrong: should be 2 * a * grad


def test_gradcheck_catches_wrong_gradient():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
    with pytest.raises(AssertionError):
        gradcheck(lambda x: _WrongGrad.apply(x), [x])


def test_gradcheck_returns_false_without_raise():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
    assert not gradcheck(lambda x: _WrongGrad.apply(x), [x],
                         raise_on_fail=False)


def test_gradcheck_requires_float64():
    x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
    with pytest.raises(ValueError):
        gradcheck(lambda x: x * 2.0, [x])


def test_gradcheck_passes_correct_gradient():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
    assert gradcheck(lambda x: (x * x).sum(), [x])
