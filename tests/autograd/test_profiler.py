"""Autograd profiler tests."""

import numpy as np

from repro.autograd import Tensor, conv_nd
from repro.autograd.function import Function
from repro.autograd.profiler import profile


class TestProfiler:
    def test_records_forward_ops(self):
        with profile() as prof:
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            y = (x * 2.0 + 1.0).sum()
        assert prof.forward["Mul"].calls == 1
        assert prof.forward["Add"].calls == 1
        assert prof.forward["Sum"].calls == 1
        assert prof.total_seconds() > 0

    def test_records_backward_ops(self):
        with profile() as prof:
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            (x * 3.0).sum().backward()
        assert prof.backward["Mul"].calls == 1
        assert prof.backward["Sum"].calls == 1

    def test_conv_dominates_network_time(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((2, 4, 16, 16)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((8, 4, 3, 3)).astype(np.float32),
                   requires_grad=True)
        with profile() as prof:
            for _ in range(3):
                conv_nd(x, w, padding=1).sum().backward()
        assert prof.forward["ConvNd"].calls == 3
        assert prof.backward["ConvNd"].calls == 3

    def test_apply_restored_after_exit(self):
        orig = Function.apply.__func__
        with profile():
            pass
        assert Function.apply.__func__ is orig

    def test_restored_even_on_exception(self):
        orig = Function.apply.__func__
        try:
            with profile():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert Function.apply.__func__ is orig

    def test_table_renders(self):
        with profile() as prof:
            x = Tensor(np.ones(4), requires_grad=True)
            (x * x).sum().backward()
        table = prof.table()
        assert "Mul" in table
        assert "%" in table

    def test_no_recording_outside_context(self):
        with profile() as prof:
            pass
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        assert "Mul" not in prof.forward
