"""Reduction op tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestSum:
    def test_all(self, rng):
        a = t64((3, 4), rng)
        gradcheck(lambda a: a.sum(), [a])

    def test_axis(self, rng):
        a = t64((3, 4, 5), rng)
        gradcheck(lambda a: a.sum(axis=1), [a])
        gradcheck(lambda a: a.sum(axis=(0, 2)), [a])

    def test_keepdims(self, rng):
        a = t64((3, 4), rng)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 4)
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), [a])

    def test_negative_axis(self, rng):
        a = t64((3, 4), rng)
        np.testing.assert_allclose(a.sum(axis=-1).data, a.data.sum(axis=-1))


class TestMean:
    def test_all(self, rng):
        a = t64((4, 4), rng)
        gradcheck(lambda a: a.mean(), [a])

    def test_axis_keepdims(self, rng):
        a = t64((2, 3, 4), rng)
        gradcheck(lambda a: a.mean(axis=(1, 2), keepdims=True), [a])

    def test_value(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3))
        assert a.mean().item() == pytest.approx(2.5)


class TestMaxMin:
    def test_max_all(self, rng):
        a = t64(rng.permutation(20).astype(np.float64))
        gradcheck(lambda a: a.max(), [a])

    def test_max_axis(self, rng):
        a = t64(rng.permutation(24).astype(np.float64).reshape(4, 6))
        gradcheck(lambda a: a.max(axis=1), [a])
        gradcheck(lambda a: a.max(axis=0, keepdims=True), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True,
                   dtype=np.float64)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])

    def test_min(self, rng):
        from repro.autograd import min as amin

        a = t64(rng.permutation(12).astype(np.float64).reshape(3, 4))
        gradcheck(lambda a: amin(a, axis=1), [a])
        np.testing.assert_allclose(amin(a).data, a.data.min())
