"""Convolution family: shape algebra, reference values, gradients,
adjointness of conv / conv-transpose."""

import numpy as np
import pytest

from repro.autograd import (Tensor, conv_nd, conv_transpose_nd, max_pool_nd,
                            avg_pool_nd, conv_output_shape,
                            conv_transpose_output_shape, gradcheck, tuplify)

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestShapeAlgebra:
    @pytest.mark.parametrize("s,k,st,p,expected", [
        (8, 3, 1, 1, 8),    # 'same'
        (8, 3, 1, 0, 6),    # valid
        (8, 2, 2, 0, 4),    # downsample x2
        (9, 3, 2, 1, 5),
    ])
    def test_conv_output(self, s, k, st, p, expected):
        assert conv_output_shape((s,), (k,), (st,), (p,)) == (expected,)

    def test_conv_output_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape((2,), (5,), (1,), (0,))

    @pytest.mark.parametrize("s,k,st,p,op,expected", [
        (4, 2, 2, 0, 0, 8),     # upsample x2
        (4, 3, 1, 1, 0, 4),     # 'same'
        (4, 4, 2, 1, 0, 8),
    ])
    def test_transpose_output(self, s, k, st, p, op, expected):
        assert conv_transpose_output_shape((s,), (k,), (st,), (p,), (op,)) == (expected,)

    def test_tuplify(self):
        assert tuplify(3, 2) == (3, 3)
        assert tuplify((1, 2), 2) == (1, 2)
        with pytest.raises(ValueError):
            tuplify((1, 2, 3), 2)


class TestConvReference:
    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float64)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv_nd(Tensor(x), Tensor(w), padding=1)
        np.testing.assert_allclose(out.data, x, atol=1e-12)

    def test_averaging_kernel_constant_input(self):
        x = np.full((1, 1, 6, 6), 2.0)
        w = np.full((1, 1, 3, 3), 1.0 / 9)
        out = conv_nd(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, 2.0, rtol=1e-6)

    def test_matches_scipy_correlate_2d(self, rng):
        from scipy.signal import correlate

        x = rng.standard_normal((4, 5)).astype(np.float64)
        w = rng.standard_normal((3, 3)).astype(np.float64)
        ours = conv_nd(Tensor(x[None, None]), Tensor(w[None, None])).data[0, 0]
        ref = correlate(x, w, mode="valid")
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_matches_scipy_correlate_3d(self, rng):
        from scipy.signal import correlate

        x = rng.standard_normal((4, 4, 5)).astype(np.float64)
        w = rng.standard_normal((2, 3, 2)).astype(np.float64)
        ours = conv_nd(Tensor(x[None, None]), Tensor(w[None, None])).data[0, 0]
        ref = correlate(x, w, mode="valid")
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_multi_channel_sums_inputs(self, rng):
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float64)
        w = rng.standard_normal((2, 3, 1, 1)).astype(np.float64)
        out = conv_nd(Tensor(x), Tensor(w)).data
        ref = np.einsum("ncij,ocmn->noij", x, w)
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_bias_broadcast(self, rng):
        x = Tensor(rng.standard_normal((2, 1, 4, 4)))
        w = Tensor(np.zeros((3, 1, 1, 1)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        out = conv_nd(x, w, b).data
        for c in range(3):
            np.testing.assert_allclose(out[:, c], c + 1.0, rtol=1e-6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        w = Tensor(rng.standard_normal((1, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv_nd(x, w)


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_conv2d(self, rng, stride, padding):
        x = t64((2, 2, 6, 5), rng)
        w = t64((3, 2, 3, 3), rng)
        b = t64((3,), rng)
        gradcheck(lambda x, w, b: conv_nd(x, w, b, stride=stride,
                                          padding=padding), [x, w, b])

    def test_conv3d(self, rng):
        x = t64((1, 2, 4, 4, 4), rng)
        w = t64((2, 2, 3, 3, 3), rng)
        gradcheck(lambda x, w: conv_nd(x, w, padding=1), [x, w])

    def test_conv1_kernel(self, rng):
        x = t64((2, 3, 4, 4), rng)
        w = t64((2, 3, 1, 1), rng)
        gradcheck(lambda x, w: conv_nd(x, w), [x, w])


class TestConvTranspose:
    def test_upsample_shape_2d(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 2, 2, 2)).astype(np.float32))
        assert conv_transpose_nd(x, w, stride=2).shape == (1, 2, 10, 10)

    def test_upsample_shape_3d(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 3, 3, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((2, 1, 2, 2, 2)).astype(np.float32))
        assert conv_transpose_nd(x, w, stride=2).shape == (1, 1, 6, 6, 6)

    def test_gradcheck(self, rng):
        x = t64((1, 2, 3, 3), rng)
        w = t64((2, 2, 2, 2), rng)
        b = t64((2,), rng)
        gradcheck(lambda x, w, b: conv_transpose_nd(x, w, b, stride=2),
                  [x, w, b])

    def test_stride1_padding(self, rng):
        x = t64((1, 1, 5, 5), rng)
        w = t64((1, 1, 3, 3), rng)
        out = conv_transpose_nd(x, w, stride=1, padding=1)
        assert out.shape == (1, 1, 5, 5)
        gradcheck(lambda x, w: conv_transpose_nd(x, w, stride=1, padding=1),
                  [x, w])

    def test_adjointness(self, rng):
        """conv_transpose(.; W) is the adjoint of conv(.; W):
        <conv(x), y> == <x, conv_transpose(y)> for a stride-2 conv."""
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((3, 2, 2, 2))  # (Cout, Cin, k, k)
        y = rng.standard_normal((1, 3, 4, 4))
        cx = conv_nd(Tensor(x), Tensor(w), stride=2).data
        cty = conv_transpose_nd(Tensor(y), Tensor(w), stride=2).data
        lhs = float((cx * y).sum())
        rhs = float((x * cty).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)
        # And it equals the autograd input-gradient of the conv.
        np.testing.assert_allclose(cty, _manual_adjoint(y, w), atol=1e-12)

    def test_invalid_padding_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((1, 1, 2, 2)).astype(np.float32))
        with pytest.raises(ValueError):
            conv_transpose_nd(x, w, stride=2, padding=3)


def _manual_adjoint(y: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Adjoint of stride-2 conv via autograd backward (ground truth)."""
    x = Tensor(np.zeros((1, w.shape[1], 8, 8)), requires_grad=True,
               dtype=np.float64)
    out = conv_nd(x, Tensor(w), stride=2)
    out.backward(y)
    return x.grad


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool_nd(Tensor(x), 2).data[0, 0]
        np.testing.assert_allclose(out, [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool_nd(Tensor(x), 2).data[0, 0]
        np.testing.assert_allclose(out, [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_grad(self, rng):
        x = t64(rng.permutation(32).astype(np.float64).reshape(1, 2, 4, 4))
        gradcheck(lambda x: max_pool_nd(x, 2), [x])

    def test_avgpool_grad_3d(self, rng):
        x = t64((1, 1, 4, 4, 4), rng)
        gradcheck(lambda x: avg_pool_nd(x, 2), [x])

    def test_indivisible_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 4)).astype(np.float32))
        with pytest.raises(ValueError):
            max_pool_nd(x, 2)
        with pytest.raises(ValueError):
            avg_pool_nd(x, 2)
