"""Tensor fundamentals: construction, dtypes, graph mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_from_list_uses_default_dtype(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32

    def test_ndarray_dtype_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_numpy_scalar_dtype_preserved(self):
        # Regression: np.float64 scalars must not be demoted to float32.
        t = Tensor(np.float64(1.5))
        assert t.dtype == np.float64

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert np.issubdtype(t.dtype, np.floating)

    def test_explicit_dtype_cast(self):
        t = Tensor(np.zeros(3, dtype=np.float64), dtype=np.float32)
        assert t.dtype == np.float32

    def test_from_tensor_shares_nothing_on_astype(self):
        a = Tensor(np.ones(3))
        b = a.astype(np.float64)
        b.data[0] = 5
        assert a.data[0] == 1.0

    def test_shape_size_ndim(self):
        t = Tensor.zeros(2, 3, 4)
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3

    def test_constructors(self):
        assert np.all(Tensor.ones(2, 2).data == 1)
        assert np.all(Tensor.zeros(2, 2).data == 0)
        r = Tensor.randn(5, 5, rng=np.random.default_rng(0))
        assert r.shape == (5, 5)


class TestBackward:
    def test_scalar_backward(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_on_leaf_raises_without_flag(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward(np.array([1.0]))
        (x * 3.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_diamond_graph_accumulation(self):
        # x feeds two paths that rejoin: grad must be summed once each.
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        y = (a + b).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_reused_node_in_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * x      # a = x^2
        y = (a * a).sum()  # y = x^4 -> dy/dx = 4 x^3 = 32
        y.backward()
        np.testing.assert_allclose(x.grad, [32.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x.sum()).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_severs_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        z = (y * 3.0)
        assert not z.requires_grad


class TestNoGrad:
    def test_no_grad_context(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._fn is None

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestOperators:
    def test_radd_rsub_rmul_rdiv(self):
        x = Tensor(np.array([2.0]))
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((5.0 - x).data, [3.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((8.0 / x).data, [4.0])

    def test_neg_pow_sqrt(self):
        x = Tensor(np.array([4.0]))
        np.testing.assert_allclose((-x).data, [-4.0])
        np.testing.assert_allclose((x ** 2).data, [16.0])
        np.testing.assert_allclose(x.sqrt().data, [2.0])

    def test_scalar_operand_matches_tensor_dtype(self):
        x = Tensor(np.ones(2, dtype=np.float64))
        y = x * 0.5
        assert y.dtype == np.float64

    def test_getitem(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        y = x[0, 1:]
        np.testing.assert_allclose(y.data, [1.0, 2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1, 1], [0, 0, 0]])

    def test_len_repr_item(self):
        x = Tensor(np.zeros((4, 2)))
        assert len(x) == 4
        assert "shape=(4, 2)" in repr(x)
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
