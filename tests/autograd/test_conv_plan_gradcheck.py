"""Parametrized gradchecks for ``conv_nd``/``conv_transpose_nd`` across
stride/padding/3D combinations on *both* conv-plan execution paths, plus
end-to-end numerical parity between the paths through the autograd layer.

This is the certification that the planning conv engine is a pure
performance decision: analytic gradients match finite differences on
every path, and the two paths agree with each other to float64 precision
for values *and* gradients.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, conv_nd, conv_transpose_nd, gradcheck
from repro.backend.conv_plan import clear_plan_cache, set_conv_plan_mode

from tests.conftest import t64


@pytest.fixture(autouse=True)
def _fresh_planner():
    clear_plan_cache()
    yield
    set_conv_plan_mode("auto")
    clear_plan_cache()


CONV_CASES = [
    # (x_shape, w_shape, stride, padding)
    ((2, 2, 6, 6), (3, 2, 3, 3), 1, 0),
    ((2, 2, 6, 6), (3, 2, 3, 3), 1, 1),
    ((1, 3, 7, 7), (2, 3, 3, 3), 2, 1),
    ((2, 2, 6, 6), (3, 2, 2, 2), 2, 0),
    ((1, 2, 5, 5, 5), (2, 2, 3, 3, 3), 1, 1),       # 3D 'same'
    ((1, 2, 5, 5, 5), (3, 2, 2, 2, 2), 2, 0),       # 3D strided
    ((1, 2, 6, 5), (2, 2, 3, 2), (2, 1), (1, 0)),   # anisotropic
]

TRANSPOSE_CASES = [
    # (x_shape, w_shape (Cin, Cout, *K), stride, padding, output_padding)
    ((2, 3, 4, 4), (3, 2, 2, 2), 2, 0, 0),
    ((1, 2, 5, 5), (2, 3, 3, 3), 1, 1, 0),
    ((1, 2, 4, 4), (2, 2, 3, 3), 2, 1, 1),
    ((1, 2, 3, 3, 3), (2, 2, 2, 2, 2), 2, 0, 0),    # 3D upsample
]

PATHS = ["tensordot", "im2col"]


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("x_shape,w_shape,stride,padding", CONV_CASES)
def test_conv_nd_gradcheck(path, x_shape, w_shape, stride, padding, rng):
    set_conv_plan_mode(path)
    x = t64(x_shape, rng)
    w = t64(w_shape, rng)
    b = t64((w_shape[0],), rng)
    gradcheck(lambda a, ww, bb: conv_nd(a, ww, bb, stride=stride,
                                        padding=padding), [x, w, b])


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("x_shape,w_shape,stride,padding,outpad",
                         TRANSPOSE_CASES)
def test_conv_transpose_nd_gradcheck(path, x_shape, w_shape, stride, padding,
                                     outpad, rng):
    set_conv_plan_mode(path)
    x = t64(x_shape, rng)
    w = t64(w_shape, rng)
    gradcheck(lambda a, ww: conv_transpose_nd(a, ww, stride=stride,
                                              padding=padding,
                                              output_padding=outpad), [x, w])


@pytest.mark.parametrize("x_shape,w_shape,stride,padding", CONV_CASES)
def test_paths_agree_on_values_and_gradients(x_shape, w_shape, stride,
                                             padding, rng):
    """The plan is invisible to numerics: outputs and every input gradient
    must agree between the two engines to float64 round-off."""
    x_data = rng.standard_normal(x_shape)
    w_data = rng.standard_normal(w_shape)
    b_data = rng.standard_normal((w_shape[0],))

    results = {}
    for path in PATHS:
        set_conv_plan_mode(path)
        x = Tensor(x_data.copy(), requires_grad=True, dtype=np.float64)
        w = Tensor(w_data.copy(), requires_grad=True, dtype=np.float64)
        b = Tensor(b_data.copy(), requires_grad=True, dtype=np.float64)
        out = conv_nd(x, w, b, stride=stride, padding=padding)
        out.sum().backward()
        results[path] = (out.data, x.grad, w.grad, b.grad)

    for ref, fast in zip(results["tensordot"], results["im2col"]):
        np.testing.assert_allclose(fast, ref, rtol=1e-11, atol=1e-11)


@pytest.mark.parametrize("path", PATHS)
def test_unet_forward_backward_on_both_paths(path, rng):
    """A full 2D U-Net step runs on either forced path (smoke)."""
    from repro.nn.unet import UNet

    set_conv_plan_mode(path)
    net = UNet(ndim=2, in_channels=2, base_filters=4, depth=2, rng=3)
    x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32),
               requires_grad=False)
    out = net(x)
    out.sum().backward()
    grads = [p.grad for p in net.parameters() if p.grad is not None]
    assert grads and all(np.isfinite(g).all() for g in grads)
