"""Gradcheck every basic op, including broadcasting paths."""

import numpy as np
import pytest

from repro.autograd import (Tensor, gradcheck, concat, pad, flip, where, clip,
                            zero_stuff, moveaxis)

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestArithmetic:
    def test_add_same_shape(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng)
        gradcheck(lambda a, b: a + b, [a, b])

    def test_add_broadcast_row(self, rng):
        a, b = t64((3, 4), rng), t64((1, 4), rng)
        gradcheck(lambda a, b: a + b, [a, b])

    def test_add_broadcast_scalar_shape(self, rng):
        a, b = t64((2, 3), rng), t64((1,), rng)
        gradcheck(lambda a, b: a + b, [a, b])

    def test_sub(self, rng):
        a, b = t64((2, 5), rng), t64((2, 5), rng)
        gradcheck(lambda a, b: a - b, [a, b])

    def test_mul_broadcast(self, rng):
        a, b = t64((4, 3), rng), t64((3,), rng)
        gradcheck(lambda a, b: a * b, [a, b])

    def test_div(self, rng):
        a = t64((3, 3), rng)
        b = t64(rng.uniform(0.5, 2.0, (3, 3)))
        gradcheck(lambda a, b: a / b, [a, b])

    def test_div_broadcast_denominator(self, rng):
        a = t64((3, 3), rng)
        b = t64(rng.uniform(0.5, 2.0, (1, 3)))
        gradcheck(lambda a, b: a / b, [a, b])

    def test_neg(self, rng):
        a = t64((5,), rng)
        gradcheck(lambda a: -a, [a])

    def test_power(self, rng):
        a = t64(rng.uniform(0.5, 2.0, (4,)))
        gradcheck(lambda a: a ** 3, [a])
        gradcheck(lambda a: a ** 0.5, [a], rtol=1e-3)


class TestMatmul:
    def test_2d_2d(self, rng):
        a, b = t64((3, 4), rng), t64((4, 5), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched(self, rng):
        a, b = t64((2, 3, 4), rng), t64((2, 4, 5), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched_broadcast(self, rng):
        a, b = t64((2, 3, 4), rng), t64((4, 5), rng)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_vec_vec(self, rng):
        a, b = t64((4,), rng), t64((4,), rng)
        gradcheck(lambda a, b: a @ b, [a, b])


class TestShapes:
    def test_reshape(self, rng):
        a = t64((2, 6), rng)
        gradcheck(lambda a: a.reshape(3, 4), [a])

    def test_reshape_tuple_arg(self, rng):
        a = t64((2, 6), rng)
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_transpose_default(self, rng):
        a = t64((2, 3, 4), rng)
        gradcheck(lambda a: a.transpose(), [a])
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_axes(self, rng):
        a = t64((2, 3, 4), rng)
        gradcheck(lambda a: a.transpose(1, 0, 2), [a])

    def test_moveaxis(self, rng):
        a = t64((2, 3, 4), rng)
        out = moveaxis(a, 0, -1)
        assert out.shape == (3, 4, 2)
        gradcheck(lambda a: moveaxis(a, 0, -1), [a])

    def test_flip(self, rng):
        a = t64((3, 4), rng)
        gradcheck(lambda a: flip(a, axis=1), [a])
        gradcheck(lambda a: flip(a, axis=(0, 1)), [a])

    def test_pad(self, rng):
        a = t64((2, 3), rng)
        gradcheck(lambda a: pad(a, [(1, 2), (0, 1)]), [a])
        assert pad(a, [(1, 2), (0, 1)]).shape == (5, 4)

    def test_pad_value(self):
        a = Tensor(np.zeros((1, 1)))
        out = pad(a, [(1, 1), (1, 1)], value=7.0)
        assert out.data[0, 0] == 7.0

    def test_concat(self, rng):
        a, b, c = t64((2, 2), rng), t64((3, 2), rng), t64((1, 2), rng)
        out = concat([a, b, c], axis=0)
        assert out.shape == (6, 2)
        gradcheck(lambda a, b, c: concat([a, b, c], axis=0), [a, b, c])

    def test_concat_axis1(self, rng):
        a, b = t64((2, 2), rng), t64((2, 3), rng)
        gradcheck(lambda a, b: concat([a, b], axis=1), [a, b])


class TestSelection:
    def test_getitem_slice_grad(self, rng):
        a = t64((4, 5), rng)
        gradcheck(lambda a: a[1:3, ::2], [a])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
        y = a[np.array([0, 0, 1])]
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0])

    def test_where(self, rng):
        cond = rng.standard_normal((3, 3)) > 0
        a, b = t64((3, 3), rng), t64((3, 3), rng)
        gradcheck(lambda a, b: where(cond, a, b), [a, b])

    def test_clip(self, rng):
        a = t64(rng.uniform(-2, 2, (10,)))
        # Keep away from clip boundaries for finite differences.
        a.data[np.abs(np.abs(a.data) - 1.0) < 0.05] = 0.0
        gradcheck(lambda a: clip(a, -1.0, 1.0), [a])


class TestZeroStuff:
    def test_shape(self):
        x = Tensor(np.ones((1, 1, 3, 3)))
        out = zero_stuff(x, (2, 2))
        assert out.shape == (1, 1, 5, 5)

    def test_values(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2))
        out = zero_stuff(x, (2, 2)).data[0, 0]
        expected = np.array([[0, 0, 1], [0, 0, 0], [2, 0, 3]], dtype=np.float32)
        np.testing.assert_allclose(out, expected)

    def test_grad(self, rng):
        x = t64((1, 2, 3, 3), rng)
        gradcheck(lambda x: zero_stuff(x, (2, 2)), [x])
