"""End-to-end integration: training pipelines reproduce the paper's
qualitative claims at downscaled sizes."""

import numpy as np
import pytest

from repro import (MGDiffNet, PoissonProblem2D, PoissonProblem3D,
                   Trainer, TrainConfig, MultigridTrainer, MGTrainConfig)
from repro.core import compare_fields
from repro.distributed import DataParallelTrainer, DPConfig


class TestTrainingApproachesFEM:
    @pytest.mark.slow
    def test_2d_training_approaches_fem_solution(self):
        """The data-free variational training drives predictions toward
        the FEM reference (Tables 3/4 claim, downscaled)."""
        problem = PoissonProblem2D(16)
        dataset = problem.make_dataset(4)
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=11)
        trainer = Trainer(model, problem, dataset,
                          TrainConfig(batch_size=4, lr=3e-3, patience=15,
                                      min_delta=1e-4))
        trainer.train_until_converged(16, max_epochs=150)

        errs = []
        for omega in dataset.omegas:
            pred = model.predict(problem, omega)
            ref = problem.fem_solve(omega)
            errs.append(compare_fields(pred, ref).rel_l2)
        assert float(np.mean(errs)) < 0.12

    @pytest.mark.slow
    def test_multigrid_final_loss_close_to_base(self):
        """Table 1 claim: MG strategies converge to a loss comparable to
        full training at the finest resolution."""
        problem = PoissonProblem2D(16)
        dataset = problem.make_dataset(8)
        cfg = MGTrainConfig(batch_size=4, lr=3e-3, restriction_epochs=3,
                            max_epochs_per_level=60, patience=8,
                            min_delta=5e-4)

        base_model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=21)
        base_tr = MultigridTrainer(base_model, problem, dataset,
                                   strategy="half_v", levels=2, config=cfg)
        base = base_tr.train_baseline()

        mg_model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=21)
        mg_tr = MultigridTrainer(mg_model, problem, dataset,
                                 strategy="half_v", levels=2, config=cfg)
        mg = mg_tr.train()

        assert mg.final_loss <= base.best_loss * 1.25

    def test_3d_pipeline_runs(self):
        """3D code path exercised end to end (tiny)."""
        problem = PoissonProblem3D(8)
        dataset = problem.make_dataset(4)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=2)
        tr = MultigridTrainer(model, problem, dataset, strategy="half_v",
                              levels=2,
                              config=MGTrainConfig(batch_size=4, lr=3e-3,
                                                   restriction_epochs=1,
                                                   max_epochs_per_level=3,
                                                   patience=2))
        res = tr.train()
        assert np.isfinite(res.final_loss)
        u = model.predict(problem, dataset.omegas[0])
        assert u.shape == (8, 8, 8)


class TestDistributedIntegration:
    def test_distributed_equals_serial_after_training(self):
        """Eq. 15 at integration scale: full training loop, p=1 vs p=2."""
        problem = PoissonProblem2D(8)
        dataset = problem.make_dataset(8)

        def factory():
            return MGDiffNet(ndim=2, base_filters=4, depth=1,
                             use_batchnorm=False, rng=5)

        res = {}
        for p in (1, 2):
            t = DataParallelTrainer(factory, problem, dataset,
                                    DPConfig(world_size=p, batch_size=4,
                                             lr=1e-3))
            res[p] = (t.train_epochs(8, 3), t.model.state_dict())
        np.testing.assert_allclose(res[1][0].losses, res[2][0].losses,
                                   rtol=1e-5)
        for k in res[1][1]:
            np.testing.assert_allclose(res[1][1][k], res[2][1][k], atol=2e-5)

    def test_virtual_speedup_increases_with_workers(self):
        """Simulated cluster shows decreasing virtual epoch time in p
        (Figs. 9/10 shape at micro scale)."""
        from repro.perf import AZURE_NDV2, ring_allreduce_time

        problem = PoissonProblem2D(8)
        dataset = problem.make_dataset(8)

        def factory():
            return MGDiffNet(ndim=2, base_filters=4, depth=1, rng=5)

        times = {}
        for p in (1, 4):
            t = DataParallelTrainer(
                factory, problem, dataset,
                DPConfig(world_size=p, batch_size=8, lr=1e-3),
                comm_time_model=lambda nbytes, ws: ring_allreduce_time(
                    nbytes, ws, AZURE_NDV2),
                compute_time_per_sample=0.1)
            r = t.train_epochs(8, 1)
            times[p] = r.virtual_compute_seconds + r.virtual_comm_seconds
        assert times[4] < times[1] / 3.0
