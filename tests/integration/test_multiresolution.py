"""Multi-resolution transfer: the premise of multigrid training (Fig. 1).

A fully convolutional network trained at a coarse resolution must be a
useful warm start at finer resolutions — 'the forward pass of the
coefficients through the network itself becomes an excellent starting
point for ... solving the PDE at a higher resolution' (Sec. 3.1.2).
"""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, Trainer, TrainConfig
from repro.multigrid import restrict_field


@pytest.fixture(scope="module")
def setup():
    problem = PoissonProblem2D(16)
    dataset = problem.make_dataset(8)
    return problem, dataset


class TestCoarseToFineTransfer:
    def test_coarse_training_lowers_fine_loss(self, setup):
        """Training only at 8^2 improves the (never-seen) 16^2 loss."""
        problem, dataset = setup
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=17)
        trainer = Trainer(model, problem, dataset,
                          TrainConfig(batch_size=8, lr=3e-3))
        fine_loss_before = trainer.evaluate_loss(16)
        trainer.train_epochs(8, 40)  # coarse-only training
        fine_loss_after = trainer.evaluate_loss(16)
        assert fine_loss_after < fine_loss_before * 0.8

    def test_fine_training_lowers_coarse_loss(self, setup):
        """The transfer works in the restriction direction too."""
        problem, dataset = setup
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=18)
        trainer = Trainer(model, problem, dataset,
                          TrainConfig(batch_size=8, lr=3e-3))
        coarse_before = trainer.evaluate_loss(8)
        trainer.train_epochs(16, 40)
        coarse_after = trainer.evaluate_loss(8)
        assert coarse_after < coarse_before * 0.8

    def test_predictions_consistent_across_resolutions(self, setup):
        """After training at both levels, the fine prediction restricted
        to the coarse grid correlates strongly with the coarse
        prediction (they approximate the same continuous field)."""
        problem, dataset = setup
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=19)
        trainer = Trainer(model, problem, dataset,
                          TrainConfig(batch_size=8, lr=3e-3))
        trainer.train_epochs(8, 25)
        trainer.train_epochs(16, 25)
        omega = dataset.omegas[0]
        u_fine = model.predict(problem, omega, resolution=16)
        u_coarse = model.predict(problem, omega, resolution=8)
        u_fine_restricted = restrict_field(u_fine)
        corr = np.corrcoef(u_fine_restricted.ravel(), u_coarse.ravel())[0, 1]
        assert corr > 0.9

    def test_warm_start_converges_faster_at_fine(self, setup):
        """Epochs-to-threshold at 16^2: coarse-pretrained vs cold."""
        problem, dataset = setup

        def epochs_to(threshold, pretrain):
            model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=20)
            trainer = Trainer(model, problem, dataset,
                              TrainConfig(batch_size=8, lr=3e-3))
            if pretrain:
                trainer.train_epochs(8, 30)
            for epoch in range(1, 61):
                loss = trainer.run_epoch(16)
                if loss <= threshold:
                    return epoch
            return 61

        # Threshold chosen as what the cold run reaches mid-training.
        cold_model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=20)
        cold_tr = Trainer(cold_model, problem, dataset,
                          TrainConfig(batch_size=8, lr=3e-3))
        losses = [cold_tr.run_epoch(16) for _ in range(40)]
        threshold = losses[-1]

        warm_epochs = epochs_to(threshold, pretrain=True)
        cold_epochs = epochs_to(threshold, pretrain=False)
        assert warm_epochs < cold_epochs
