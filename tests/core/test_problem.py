"""PoissonProblem tests: mask algebra, caching, FEM reference."""

import numpy as np
import pytest

from repro import PoissonProblem2D, PoissonProblem3D
from repro.core.problem import PoissonProblem


class TestConstruction:
    def test_2d_3d_helpers(self):
        assert PoissonProblem2D(16).ndim == 2
        assert PoissonProblem3D(8).ndim == 3

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            PoissonProblem(4, 16)

    def test_repr(self):
        assert "2d" in repr(PoissonProblem2D(16))


class TestCaching:
    def test_grid_cache(self):
        p = PoissonProblem2D(16)
        assert p.grid() is p.grid(16)
        assert p.grid(8) is p.grid(8)
        assert p.grid(8) is not p.grid(16)

    def test_energy_cache_by_reduction(self):
        p = PoissonProblem2D(16)
        assert p.energy(8) is p.energy(8)
        assert p.energy(8, "sum") is not p.energy(8, "mean")

    def test_masks_cache_by_dtype(self):
        p = PoissonProblem2D(16)
        a, _ = p.masks(8, dtype=np.float32)
        b, _ = p.masks(8, dtype=np.float32)
        c, _ = p.masks(8, dtype=np.float64)
        assert a is b
        assert a.dtype == np.float32 and c.dtype == np.float64


class TestMasks:
    @pytest.mark.parametrize("res", [8, 16])
    def test_partition_of_unity(self, res):
        p = PoissonProblem2D(16)
        chi_int, _ = p.masks(res)
        bc = p.bc(res)
        np.testing.assert_allclose(
            chi_int[0, 0] + bc.boundary_indicator(), 1.0)

    def test_u_bc_values(self):
        p = PoissonProblem2D(16)
        _, u_bc = p.masks(16)
        assert np.all(u_bc[0, 0, 0] == 1.0)    # x = 0 face
        assert np.all(u_bc[0, 0, -1] == 0.0)   # x = 1 face
        assert np.all(u_bc[0, 0, 1:-1] == 0.0)  # interior

    def test_masks_shape(self):
        p = PoissonProblem3D(8)
        chi_int, u_bc = p.masks()
        assert chi_int.shape == (1, 1, 8, 8, 8)
        assert u_bc.shape == (1, 1, 8, 8, 8)


class TestFEMReference:
    def test_constant_nu_linear(self):
        p = PoissonProblem2D(17)
        u = p.fem_solve(np.zeros(4))  # omega=0 -> nu=1
        x = p.grid().coordinates()[0]
        np.testing.assert_allclose(u, 1 - x, atol=1e-9)

    def test_nu_positive(self):
        p = PoissonProblem2D(9)
        nu = p.nu(np.array([1.0, -2.0, 0.5, 3.0]))
        assert nu.min() > 0

    def test_fem_solve_at_other_resolution(self):
        p = PoissonProblem2D(16)
        u = p.fem_solve(np.zeros(4), resolution=8)
        assert u.shape == (8, 8)

    def test_make_dataset(self):
        p = PoissonProblem2D(16)
        ds = p.make_dataset(6)
        assert len(ds) == 6
        assert ds.ndim == 2
