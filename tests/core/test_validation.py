"""Validator tests."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, Trainer, TrainConfig
from repro.core.validation import Validator


@pytest.fixture(scope="module")
def problem():
    return PoissonProblem2D(16)


class TestValidator:
    def test_holdout_disjoint_from_training(self, problem):
        train = problem.make_dataset(16)
        val = Validator(problem, n_samples=8)
        # No validation omega appears in the training set.
        for omega in val.omegas:
            assert not np.any(np.all(np.isclose(train.omegas, omega), axis=1))

    def test_references_cached(self, problem):
        val = Validator(problem, n_samples=2)
        refs = val.references
        assert val.references is refs
        assert refs[0].shape == (16, 16)

    def test_evaluate_fields(self, problem):
        model = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=0)
        val = Validator(problem, n_samples=3)
        res = val.evaluate(model)
        assert res.n_samples == 3
        assert res.resolution == 16
        assert np.isfinite(res.mean_energy)
        assert 0 <= res.mean_rel_l2 <= res.max_rel_l2
        assert "relL2" in str(res)

    def test_training_improves_validation(self, problem):
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=3)
        val = Validator(problem, n_samples=4)
        before = val.evaluate(model)
        dataset = problem.make_dataset(8)
        Trainer(model, problem, dataset,
                TrainConfig(batch_size=8, lr=3e-3)).train_epochs(16, 40)
        after = val.evaluate(model)
        assert after.mean_rel_l2 < before.mean_rel_l2
        assert after.mean_energy < before.mean_energy

    def test_evaluate_preserves_training_mode(self, problem):
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
        model.train()
        Validator(problem, n_samples=1).evaluate(model)
        assert model.training

    def test_custom_resolution(self, problem):
        val = Validator(problem, n_samples=1, resolution=8)
        model = MGDiffNet(ndim=2, base_filters=4, depth=1, rng=0)
        assert val.evaluate(model).resolution == 8
