"""Boundary-penalty loss tests."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.penalty import BoundaryPenaltyLoss
from repro.fem import UniformGrid, EnergyLoss, canonical_bc


@pytest.fixture
def setup():
    grid = UniformGrid(2, 8)
    bc = canonical_bc(grid)
    energy = EnergyLoss(grid, reduction="mean")
    return grid, bc, energy


class TestPenaltyLoss:
    def test_zero_weight_equals_energy(self, setup):
        grid, bc, energy = setup
        rng = np.random.default_rng(0)
        u = Tensor(rng.standard_normal((2, 1) + grid.shape), dtype=np.float64)
        nu = np.exp(0.1 * rng.standard_normal((2, 1) + grid.shape))
        loss = BoundaryPenaltyLoss(energy, bc, weight=0.0)
        assert float(loss(u, nu).data) == pytest.approx(
            float(energy(u, nu).data), rel=1e-12)

    def test_penalty_positive_when_bc_violated(self, setup):
        grid, bc, energy = setup
        u = Tensor(np.zeros((1, 1) + grid.shape), dtype=np.float64)  # u=0 != 1 at x=0
        nu = np.ones((1, 1) + grid.shape)
        l0 = BoundaryPenaltyLoss(energy, bc, weight=0.0)
        l1 = BoundaryPenaltyLoss(energy, bc, weight=10.0)
        assert float(l1(u, nu).data) > float(l0(u, nu).data)

    def test_penalty_zero_when_bc_satisfied(self, setup):
        grid, bc, energy = setup
        u_np = bc.lift()[None, None].copy()
        u = Tensor(u_np, dtype=np.float64)
        nu = np.ones((1, 1) + grid.shape)
        l0 = BoundaryPenaltyLoss(energy, bc, weight=0.0)
        l1 = BoundaryPenaltyLoss(energy, bc, weight=100.0)
        assert float(l1(u, nu).data) == pytest.approx(float(l0(u, nu).data))

    def test_gradient_flows_to_boundary(self, setup):
        grid, bc, energy = setup
        u = Tensor(np.zeros((1, 1) + grid.shape), requires_grad=True,
                   dtype=np.float64)
        nu = np.ones((1, 1) + grid.shape)
        loss = BoundaryPenaltyLoss(energy, bc, weight=5.0)
        loss(u, nu).backward()
        # Penalty pushes boundary values toward the data.
        assert np.abs(u.grad[0, 0][bc.mask]).max() > 0

    def test_violation_metric(self, setup):
        grid, bc, energy = setup
        loss = BoundaryPenaltyLoss(energy, bc, weight=1.0)
        u = np.zeros((1, 1) + grid.shape)
        v = loss.boundary_violation(u)
        # Half the Dirichlet nodes sit at g=1, half at g=0.
        assert v == pytest.approx(np.sqrt(0.5), rel=1e-6)

    def test_negative_weight_rejected(self, setup):
        grid, bc, energy = setup
        with pytest.raises(ValueError):
            BoundaryPenaltyLoss(energy, bc, weight=-1.0)

    def test_penalty_minimization_approaches_dirichlet(self, setup):
        """Large lambda drives the solution toward the exact-BC one —
        but only approximately, which is the paper's motivation."""
        from repro.nn import Parameter
        from repro.optim import Adam
        from repro.fem import FEMSolver

        grid, bc, energy_mean = setup
        energy = EnergyLoss(grid, reduction="sum")
        nu = np.ones(grid.shape)
        ref = FEMSolver(grid).solve(nu, bc)

        theta = Parameter(np.full((1, 1) + grid.shape, 0.5, dtype=np.float64))
        loss = BoundaryPenaltyLoss(energy, bc, weight=200.0)
        opt = Adam([theta], lr=0.05)
        for _ in range(300):
            j = loss(theta, nu[None, None])
            opt.zero_grad()
            j.backward()
            opt.step()
        err = np.abs(theta.data[0, 0] - ref).max()
        violation = loss.boundary_violation(theta.data)
        assert err < 0.15          # close, but...
        assert violation > 1e-5    # ...the BCs are never exact
