"""Checkpoint save/restore tests."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, Trainer, TrainConfig
from repro.core.checkpoint import (
    CheckpointError, load_checkpoint, save_checkpoint,
)
from repro.optim import Adam


@pytest.fixture
def problem():
    return PoissonProblem2D(8)


@pytest.fixture
def dataset(problem):
    return problem.make_dataset(4)


def _model(rng=0):
    return MGDiffNet(ndim=2, base_filters=4, depth=1, rng=rng)


class TestRoundtrip:
    def test_model_state_restored(self, tmp_path):
        m1, m2 = _model(0), _model(99)
        save_checkpoint(tmp_path / "ck.npz", m1, epoch=7)
        meta = load_checkpoint(tmp_path / "ck.npz", m2)
        assert meta["epoch"] == 7
        s1, s2 = m1.state_dict(), m2.state_dict()
        for k in s1:
            np.testing.assert_array_equal(s1[k], s2[k])

    def test_optimizer_state_restored(self, tmp_path):
        m1 = _model(0)
        opt1 = Adam(m1.parameters(), lr=2e-3)
        for p in m1.parameters():
            p.grad = np.ones_like(p.data)
        opt1.step()
        save_checkpoint(tmp_path / "ck.npz", m1, opt1, epoch=1)

        m2 = _model(0)
        opt2 = Adam(m2.parameters(), lr=1e-5)
        load_checkpoint(tmp_path / "ck.npz", m2, opt2)
        assert opt2.lr == pytest.approx(2e-3)
        assert opt2._step_count == 1
        for i in opt1.state:
            np.testing.assert_allclose(opt2.state[i]["m"], opt1.state[i]["m"])
            assert opt2.state[i]["t"] == opt1.state[i]["t"]

    def test_extra_metadata(self, tmp_path):
        m = _model(0)
        save_checkpoint(tmp_path / "ck.npz", m, epoch=3,
                        extra={"resolution": 16, "loss": 0.125})
        meta = load_checkpoint(tmp_path / "ck.npz", _model(0))
        assert meta["resolution"] == 16
        assert meta["loss"] == pytest.approx(0.125)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(tmp_path / "a" / "b" / "ck.npz", _model(0))
        assert path.exists()


class TestMismatchErrors:
    def test_shape_mismatch_names_key_and_path(self, tmp_path):
        wide = MGDiffNet(ndim=2, base_filters=8, depth=1, rng=0)
        save_checkpoint(tmp_path / "wide.npz", wide, epoch=1)
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(tmp_path / "wide.npz", _model(0))
        message = str(err.value)
        assert "wide.npz" in message
        assert "shape mismatch" in message
        # The offending parameter keys are spelled out.
        assert "net." in message

    def test_depth_mismatch_reports_missing_and_unexpected(self, tmp_path):
        deep = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=0)
        save_checkpoint(tmp_path / "deep.npz", deep, epoch=1)
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(tmp_path / "deep.npz", _model(0))
        assert "unexpected keys" in str(err.value)

    def test_missing_keys_reported(self, tmp_path):
        shallow = _model(0)
        save_checkpoint(tmp_path / "shallow.npz", shallow, epoch=1)
        deep = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=0)
        with pytest.raises(CheckpointError, match="missing keys"):
            load_checkpoint(tmp_path / "shallow.npz", deep)

    def test_matching_checkpoint_still_loads(self, tmp_path):
        save_checkpoint(tmp_path / "ok.npz", _model(0), epoch=5)
        meta = load_checkpoint(tmp_path / "ok.npz", _model(1))
        assert meta["epoch"] == 5


class TestResumeEquivalence:
    def test_resumed_training_matches_uninterrupted(self, tmp_path, problem,
                                                    dataset):
        """Train 4 epochs straight vs 2 + checkpoint + restore + 2."""
        cfg = TrainConfig(batch_size=4, lr=1e-3, seed=3)

        # Uninterrupted run.
        t_full = Trainer(_model(7), problem, dataset, cfg)
        t_full.train_epochs(8, 4)
        ref = t_full.model.state_dict()

        # Interrupted run.
        t_a = Trainer(_model(7), problem, dataset, cfg)
        t_a.train_epochs(8, 2)
        save_checkpoint(tmp_path / "ck.npz", t_a.model, t_a.optimizer,
                        epoch=t_a.global_epoch)

        t_b = Trainer(_model(123), problem, dataset, cfg)  # different init
        meta = load_checkpoint(tmp_path / "ck.npz", t_b.model, t_b.optimizer)
        t_b.global_epoch = meta["epoch"]
        t_b.train_epochs(8, 2)

        resumed = t_b.model.state_dict()
        for k in ref:
            np.testing.assert_allclose(resumed[k], ref[k], atol=1e-6)
