"""Trainer and MultigridTrainer behaviour."""

import numpy as np
import pytest

from repro import (MGDiffNet, PoissonProblem2D, Trainer, TrainConfig,
                   MultigridTrainer, MGTrainConfig)


@pytest.fixture(scope="module")
def problem():
    return PoissonProblem2D(16)


@pytest.fixture(scope="module")
def dataset(problem):
    return problem.make_dataset(8)


def _model():
    return MGDiffNet(ndim=2, base_filters=4, depth=2, rng=13)


class TestTrainer:
    def test_loss_decreases(self, problem, dataset):
        t = Trainer(_model(), problem, dataset,
                    TrainConfig(batch_size=4, lr=3e-3))
        r = t.train_epochs(16, 8)
        assert r.losses[-1] < r.losses[0]
        assert r.epochs_run == 8
        assert len(r.epoch_times) == 8
        assert r.wall_time > 0

    def test_early_stopping_triggers(self, problem, dataset):
        # lr=tiny so loss plateaus immediately.
        t = Trainer(_model(), problem, dataset,
                    TrainConfig(batch_size=4, lr=1e-12, patience=2,
                                min_delta=1e-3, min_epochs=0))
        r = t.train_until_converged(16, max_epochs=50)
        assert r.stopped_early
        assert r.epochs_run <= 10

    def test_max_time_budget(self, problem, dataset):
        t = Trainer(_model(), problem, dataset,
                    TrainConfig(batch_size=4, max_time=0.0))
        r = t.train_epochs(16, 100)
        assert r.epochs_run == 1  # stops after the first epoch check

    def test_deterministic_given_seed(self, problem, dataset):
        r1 = Trainer(_model(), problem, dataset,
                     TrainConfig(batch_size=4, seed=5)).train_epochs(16, 2)
        r2 = Trainer(_model(), problem, dataset,
                     TrainConfig(batch_size=4, seed=5)).train_epochs(16, 2)
        np.testing.assert_allclose(r1.losses, r2.losses, rtol=1e-6)

    def test_evaluate_loss_no_update(self, problem, dataset):
        m = _model()
        t = Trainer(m, problem, dataset, TrainConfig(batch_size=4))
        before = m.state_dict()
        val = t.evaluate_loss(16)
        after = m.state_dict()
        assert np.isfinite(val)
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_trains_at_multiple_resolutions(self, problem, dataset):
        t = Trainer(_model(), problem, dataset, TrainConfig(batch_size=4))
        r8 = t.train_epochs(8, 1)
        r16 = t.train_epochs(16, 1)
        assert r8.resolution == 8 and r16.resolution == 16

    def test_unknown_optimizer_raises(self, problem, dataset):
        with pytest.raises(ValueError):
            Trainer(_model(), problem, dataset,
                    TrainConfig(optimizer="newton"))


class TestMultigridTrainer:
    def _cfg(self):
        return MGTrainConfig(batch_size=4, lr=3e-3, restriction_epochs=2,
                             max_epochs_per_level=4, patience=2)

    @pytest.mark.parametrize("strategy", ["v", "w", "f", "half_v"])
    def test_schedule_executed(self, problem, dataset, strategy):
        tr = MultigridTrainer(_model(), problem, dataset, strategy=strategy,
                              levels=2, config=self._cfg())
        res = tr.train()
        assert [r.level for r in res.records] == [
            s.level for s in tr.schedule]
        assert res.total_time > 0
        assert np.isfinite(res.final_loss)

    def test_resolutions_match_levels(self, problem, dataset):
        tr = MultigridTrainer(_model(), problem, dataset, strategy="half_v",
                              levels=2, config=self._cfg())
        res = tr.train()
        assert [(r.level, r.resolution) for r in res.records] == [
            (2, 8), (1, 16)]

    def test_time_accounting(self, problem, dataset):
        tr = MultigridTrainer(_model(), problem, dataset, strategy="v",
                              levels=2, config=self._cfg())
        res = tr.train()
        per = res.time_per_level()
        assert set(per) == {1, 2}
        frac = res.time_fraction_per_level()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_loss_history_monotone_time(self, problem, dataset):
        tr = MultigridTrainer(_model(), problem, dataset, strategy="half_v",
                              levels=2, config=self._cfg())
        res = tr.train()
        hist = res.loss_history()
        times = [t for _, t, _ in hist]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_adaptation_on_refinement(self, problem, dataset):
        model = _model()
        n0 = model.num_weights
        tr = MultigridTrainer(model, problem, dataset, strategy="half_v",
                              levels=2, config=self._cfg(), adapt=True,
                              adapt_rng=1)
        res = tr.train()
        assert model.num_weights > n0
        assert any(r.adapted for r in res.records)
        # Adaptation fires exactly when moving 2 -> 1.
        assert res.records[1].adapted and not res.records[0].adapted

    def test_baseline_training(self, problem, dataset):
        tr = MultigridTrainer(_model(), problem, dataset, strategy="half_v",
                              levels=2, config=self._cfg())
        base = tr.train_baseline()
        assert base.resolution == 16

    def test_hierarchy_respects_model_min_resolution(self, problem, dataset):
        model = MGDiffNet(ndim=2, base_filters=4, depth=3, rng=0)  # min res 8
        with pytest.raises(ValueError):
            MultigridTrainer(model, problem, dataset, levels=3,
                             config=self._cfg())
