"""Metrics and inference timing."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.core import (compare_fields, relative_l2, linf_error, mae,
                        time_inference_vs_fem, predict_batch)


class TestMetrics:
    def test_zero_error(self):
        a = np.ones((4, 4))
        e = compare_fields(a, a)
        assert e.rel_l2 == 0 and e.linf == 0 and e.mae == 0

    def test_relative_l2(self):
        ref = np.array([3.0, 4.0])
        pred = np.array([3.0, 4.0]) * 1.1
        assert relative_l2(pred, ref) == pytest.approx(0.1)

    def test_linf_mae(self):
        ref = np.zeros(4)
        pred = np.array([0.0, -2.0, 1.0, 0.0])
        assert linf_error(pred, ref) == 2.0
        assert mae(pred, ref) == pytest.approx(0.75)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_fields(np.zeros(3), np.zeros(4))

    def test_str_format(self):
        e = compare_fields(np.ones(4), np.ones(4) * 2)
        assert "rel_L2" in str(e)
        assert e.ref_range == (2.0, 2.0)


class TestInference:
    @pytest.fixture(scope="class")
    def setup(self):
        problem = PoissonProblem2D(16)
        model = MGDiffNet(ndim=2, base_filters=4, depth=2, rng=1)
        return problem, model

    def test_timing_fields(self, setup):
        problem, model = setup
        t = time_inference_vs_fem(model, problem, np.zeros(4), repeats=1)
        assert t.inference_seconds > 0
        assert t.fem_seconds > 0
        assert t.speedup == pytest.approx(t.fem_seconds / t.inference_seconds)
        assert t.resolution == 16

    def test_predict_batch(self, setup):
        problem, model = setup
        omegas = np.zeros((3, 4))
        out = predict_batch(model, problem, omegas)
        assert out.shape == (3, 16, 16)
        # Identical omegas -> identical predictions.
        np.testing.assert_allclose(out[0], out[1], atol=1e-7)

    def test_predict_batch_single_omega(self, setup):
        problem, model = setup
        out = predict_batch(model, problem, np.zeros(4))
        assert out.shape == (1, 16, 16)

    def test_predict_batch_matches_predict(self, setup):
        problem, model = setup
        omega = np.array([0.5, -1.0, 0.2, 0.1])
        single = model.predict(problem, omega)
        batch = predict_batch(model, problem, omega[None])[0]
        np.testing.assert_allclose(single, batch, atol=1e-6)
