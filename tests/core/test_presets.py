"""Paper-preset tests: the documented configurations match the paper text."""

import numpy as np
import pytest

from repro.core.presets import (PAPER_CPU_SCALING, PAPER_GPU_SCALING,
                                paper_multigrid_config, paper_unet)


class TestPaperUNet:
    def test_architecture_matches_sec41(self):
        model = paper_unet(ndim=2, rng=0)
        net = model.net
        assert net.depth == 3                      # 'depth of 3'
        assert net.base_filters == 16              # 'starting filter size is 16'
        # 'double the number of filters as the depth increases'
        assert [b.conv.out_channels for b in net.enc_blocks] == [16, 32, 64]
        assert net.negative_slope == 0.01          # LeakyReLU layers
        from repro.nn import Sigmoid

        assert isinstance(net.final_act, Sigmoid)  # 'final layer has Sigmoid'

    def test_3d_variant_constructs_and_runs(self):
        model = paper_unet(ndim=3, rng=0)
        u = model.predict.__self__  # sanity: bound method exists
        from repro import PoissonProblem3D

        problem = PoissonProblem3D(8)
        assert model.predict(problem, np.zeros(4)).shape == (8, 8, 8)

    def test_parameter_count_scale(self):
        """The 3D paper net is a ~1M-parameter model (sanity bound)."""
        model = paper_unet(ndim=3, rng=0)
        assert 3e5 < model.num_weights < 3e6


class TestPaperConfigs:
    def test_multigrid_study_hyperparameters(self):
        cfg = paper_multigrid_config()
        assert cfg.batch_size == 64
        assert cfg.lr == pytest.approx(1e-5)
        assert cfg.optimizer == "adam"

    def test_gpu_scaling_setup(self):
        s = PAPER_GPU_SCALING
        assert s.resolution == 256
        assert s.n_samples == 1024
        assert s.local_batch == 2
        assert s.lr == pytest.approx(1e-4)
        assert s.max_workers == 512
        assert s.devices_per_node == 8
        # 64 nodes x 8 GPUs (the Fig. 9 bar labels).
        assert s.max_workers // s.devices_per_node == 64

    def test_cpu_scaling_setup(self):
        s = PAPER_CPU_SCALING
        assert s.resolution == 512
        assert s.max_workers == 128
        assert s.devices_per_node == 1  # '1 process per node'
