"""MGDiffNet: exact BC imposition and inference."""

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, PoissonProblem3D
from repro.autograd import Tensor


@pytest.fixture(scope="module")
def problem():
    return PoissonProblem2D(16)


@pytest.fixture()
def model():
    return MGDiffNet(ndim=2, base_filters=4, depth=2, rng=3)


class TestBCImposition:
    def test_dirichlet_exact_regardless_of_weights(self, problem, model):
        """Algorithm 1 line 8: output is exactly the BC data on the
        Dirichlet faces no matter what the network produces."""
        x = Tensor(np.random.default_rng(0).standard_normal(
            (2, 1, 16, 16)).astype(np.float32))
        chi_int, u_bc = problem.masks(16)
        u = model(x, chi_int, u_bc).data
        np.testing.assert_array_equal(u[:, 0, 0, :], 1.0)
        np.testing.assert_array_equal(u[:, 0, -1, :], 0.0)

    def test_interior_in_unit_interval(self, problem, model):
        x = Tensor(np.random.default_rng(1).standard_normal(
            (1, 1, 16, 16)).astype(np.float32))
        chi_int, u_bc = problem.masks(16)
        u = model(x, chi_int, u_bc).data
        assert u.min() >= 0.0 and u.max() <= 1.0

    def test_gradient_blocked_on_boundary(self, problem, model):
        """Masking stops gradients from flowing into boundary predictions
        (BCs are data, not learnable)."""
        x = Tensor(np.random.default_rng(2).standard_normal(
            (1, 1, 16, 16)).astype(np.float32))
        chi_int, u_bc = problem.masks(16)
        u = model(x, chi_int, u_bc)
        # Loss only on boundary entries -> zero gradient everywhere.
        mask = np.zeros_like(u.data)
        mask[:, :, 0, :] = 1.0
        (u * Tensor(mask)).sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert all(np.abs(g).max() < 1e-12 for g in grads)


class TestPredict:
    def test_predict_shape_and_bcs(self, problem, model):
        u = model.predict(problem, np.zeros(4))
        assert u.shape == (16, 16)
        np.testing.assert_array_equal(u[0], 1.0)
        np.testing.assert_array_equal(u[-1], 0.0)

    def test_predict_at_other_resolution(self, problem, model):
        assert model.predict(problem, np.zeros(4), resolution=8).shape == (8, 8)

    def test_predict_restores_training_mode(self, problem, model):
        model.train()
        model.predict(problem, np.zeros(4))
        assert model.training

    def test_predict_3d(self):
        problem = PoissonProblem3D(8)
        model = MGDiffNet(ndim=3, base_filters=4, depth=1, rng=0)
        u = model.predict(problem, np.zeros(4))
        assert u.shape == (8, 8, 8)
        np.testing.assert_array_equal(u[0], 1.0)

    def test_num_weights(self, model):
        assert model.num_weights == model.num_parameters() > 0

    def test_adapt_increases_weights(self, model):
        n0 = model.num_weights
        model.adapt(rng=1)
        assert model.num_weights > n0
