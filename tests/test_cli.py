"""CLI tests (in-process invocation of repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main, build_parser


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_omega_parsing(self):
        args = build_parser().parse_args(
            ["solve", "--omega", "1,2,3,4"])
        np.testing.assert_array_equal(args.omega, [1, 2, 3, 4])

    def test_omega_wrong_arity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--omega", "1,2"])


class TestInfo:
    def test_info_prints_version(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "SC 2021" in out


class TestSolve:
    def test_direct_solve(self, capsys):
        assert main(["solve", "--resolution", "9"]) == 0
        out = capsys.readouterr().out
        assert "solution range" in out

    def test_gmg_solve(self, capsys):
        assert main(["solve", "--resolution", "33", "--solver", "gmg"]) == 0
        out = capsys.readouterr().out
        assert "GMG" in out

    def test_vti_export(self, tmp_path, capsys):
        out_path = tmp_path / "u.vti"
        assert main(["solve", "--resolution", "9",
                     "--output", str(out_path)]) == 0
        assert out_path.exists()
        from repro.utils.vtk import read_vti

        fields, _ = read_vti(out_path)
        assert "u" in fields and "nu" in fields


class TestScaling:
    @pytest.mark.parametrize("cluster", ["azure", "bridges2"])
    def test_scaling_table(self, capsys, cluster):
        assert main(["scaling", "--cluster", cluster,
                     "--max-workers", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "8" in out


class TestTrainPredict:
    def test_train_then_predict_roundtrip(self, tmp_path, capsys):
        ck = tmp_path / "model.npz"
        assert main(["train", "--resolution", "8", "--samples", "4",
                     "--levels", "1", "--base-filters", "4", "--depth", "1",
                     "--max-epochs", "3", "--batch-size", "4",
                     "--checkpoint", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "trained half_v" in out
        assert ck.exists()

        assert main(["predict", "--checkpoint", str(ck),
                     "--compare-fem"]) == 0
        out = capsys.readouterr().out
        assert "predicted field" in out
        assert "rel_L2" in out

    def test_train_with_validation(self, capsys):
        assert main(["train", "--resolution", "8", "--samples", "4",
                     "--levels", "1", "--base-filters", "4", "--depth", "1",
                     "--max-epochs", "2", "--batch-size", "4",
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "val[" in out

    def test_predict_vti_export(self, tmp_path, capsys):
        ck = tmp_path / "model.npz"
        main(["train", "--resolution", "8", "--samples", "4",
              "--levels", "1", "--base-filters", "4", "--depth", "1",
              "--max-epochs", "1", "--batch-size", "4",
              "--checkpoint", str(ck)])
        capsys.readouterr()
        out_vti = tmp_path / "pred.vti"
        assert main(["predict", "--checkpoint", str(ck),
                     "--output", str(out_vti)]) == 0
        assert out_vti.exists()


@pytest.fixture(scope="module")
def trained_checkpoint(tmp_path_factory):
    ck = tmp_path_factory.mktemp("serve") / "model.npz"
    assert main(["train", "--resolution", "8", "--samples", "4",
                 "--levels", "1", "--base-filters", "4", "--depth", "1",
                 "--max-epochs", "1", "--batch-size", "4",
                 "--checkpoint", str(ck)]) == 0
    return ck


class TestServe:
    def test_predict_tiled_matches_full(self, trained_checkpoint, capsys):
        assert main(["predict", "--checkpoint",
                     str(trained_checkpoint)]) == 0
        full = capsys.readouterr().out
        assert main(["predict", "--checkpoint", str(trained_checkpoint),
                     "--tile", "4"]) == 0
        tiled = capsys.readouterr().out
        assert full.splitlines()[-1] == tiled.splitlines()[-1]

    def test_predict_bad_checkpoint_fails_cleanly(self, tmp_path, capsys):
        assert main(["predict", "--checkpoint",
                     str(tmp_path / "missing.npz")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_synthetic_load(self, trained_checkpoint, capsys):
        assert main(["serve", "--checkpoint",
                     f"demo={trained_checkpoint}",
                     "--requests", "8", "--max-batch", "4",
                     "--workers", "2", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 16 requests" in out
        assert "QPS" in out and "p99" in out
        assert "cache:" in out and "8 hits" in out

    def test_serve_omega_file(self, trained_checkpoint, tmp_path, capsys):
        omega_file = tmp_path / "omegas.csv"
        omega_file.write_text("0.1,0.2,0.3,0.4\n-1.0,2.0,0.0,1.0\n")
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--omega-file", str(omega_file)]) == 0
        assert "served 2 requests" in capsys.readouterr().out

    def test_serve_missing_checkpoint_fails_cleanly(self, tmp_path, capsys):
        assert main(["serve", "--checkpoint",
                     str(tmp_path / "nope.npz")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_predict_misaligned_tile_fails_cleanly(self, trained_checkpoint,
                                                   capsys):
        assert main(["predict", "--checkpoint", str(trained_checkpoint),
                     "--tile", "5"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_wrong_arity_omega_file_fails_cleanly(
            self, trained_checkpoint, tmp_path, capsys):
        omega_file = tmp_path / "bad.csv"
        omega_file.write_text("0.1,0.2\n")
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--omega-file", str(omega_file)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_explicit_tile_forces_tiling(self, trained_checkpoint,
                                               capsys):
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "4", "--tile", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 tiled forwards" not in out
        assert "tiled forwards" in out

    def test_serve_bounded_queue_completes_under_backpressure(
            self, trained_checkpoint, capsys):
        # A tiny queue forces rejections; the CLI client backs off and
        # retries, so the run still serves every request.
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "12", "--max-batch", "2",
                     "--max-pending", "2", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "served 12 requests" in out
        assert "backpressure rejections" in out

    def test_serve_default_deadline_reports_expiries(
            self, trained_checkpoint, capsys):
        # An impossible budget expires every non-hit request; the run
        # must finish cleanly and report them instead of crashing.
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "6", "--default-deadline", "0",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "6 expired deadlines" in out

    def test_serve_spill_budget(self, trained_checkpoint, tmp_path,
                                capsys):
        cache_dir = tmp_path / "spill"
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "6", "--cache-dir", str(cache_dir),
                     "--spill-mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "spill writes" in out
        assert cache_dir.exists()


class TestServeFleet:
    def test_serve_sharded_fleet(self, trained_checkpoint, capsys):
        assert main(["serve", "--checkpoint", f"demo={trained_checkpoint}",
                     "--requests", "8", "--max-batch", "4",
                     "--shards", "3", "--replicas", "2",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "replicas ['shard-" in out       # write fan-out reported
        assert "served 16 of 16 requests" in out
        assert "across 3 shards" in out
        assert "lost: 0" in out                 # conservation law
        assert "interconnect (simulated)" in out
        assert out.count("[up]") == 3

    def test_serve_fleet_omega_file(self, trained_checkpoint, tmp_path,
                                    capsys):
        omega_file = tmp_path / "omegas.csv"
        omega_file.write_text("0.1,0.2,0.3,0.4\n-1.0,2.0,0.0,1.0\n")
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--omega-file", str(omega_file),
                     "--shards", "2", "--replicas", "1"]) == 0
        assert "served 2 of 2 requests" in capsys.readouterr().out

    def test_serve_fleet_missing_checkpoint_fails_cleanly(
            self, tmp_path, capsys):
        assert main(["serve", "--checkpoint", str(tmp_path / "nope.npz"),
                     "--shards", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_priority_aging_flag_accepted(self, trained_checkpoint,
                                                capsys):
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "4", "--priority-aging", "0.5"]) == 0
        assert "served 4 requests" in capsys.readouterr().out

    def test_priority_aging_zero_means_strict(self, trained_checkpoint,
                                              capsys):
        # 0 is a natural spelling of "strict priority" — it must behave
        # like the default, not crash server construction.
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "4", "--priority-aging", "0"]) == 0
        assert "served 4 requests" in capsys.readouterr().out

    def test_negative_priority_aging_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--checkpoint", "x.npz",
                                       "--priority-aging", "-1"])

    def test_zero_shards_or_replicas_rejected_by_parser(self):
        for flag in ("--shards", "--replicas"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--checkpoint", "x.npz",
                                           flag, "0"])


class TestServeResilience:
    def test_full_resilience_stack_over_fleet(self, trained_checkpoint,
                                              capsys):
        assert main(["serve", "--checkpoint", f"demo={trained_checkpoint}",
                     "--requests", "8", "--shards", "3", "--replicas", "2",
                     "--retries", "2", "--retry-budget", "4:8",
                     "--hedge", "--breaker-after", "3",
                     "--breaker-reset", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "served 8 of 8 requests" in out
        assert "lost: 0" in out
        assert "resilience:" in out              # the policy counters line
        assert "breaker deflections" in out

    def test_hedge_flag_defaults_its_quantile(self, trained_checkpoint,
                                              capsys):
        # Bare --hedge (no value) installs the policy at the default
        # p95; no retry/breaker flags means those seams stay empty.
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--requests", "4", "--shards", "2",
                     "--hedge"]) == 0
        out = capsys.readouterr().out
        assert "resilience: 0 retried" in out

    def test_bad_hedge_quantile_fails_cleanly(self, trained_checkpoint,
                                              capsys):
        assert main(["serve", "--checkpoint", str(trained_checkpoint),
                     "--shards", "2", "--hedge", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_retry_budget_rejected_by_parser(self):
        for bad in ("0:5", "4:0.5", "nope"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--checkpoint", "x.npz",
                                           "--retry-budget", bad])

    def test_predict_retries_flag(self, trained_checkpoint, capsys):
        assert main(["predict", "--checkpoint", str(trained_checkpoint),
                     "--retries", "2"]) == 0
        assert capsys.readouterr().out
