"""LR schedulers and early stopping."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (SGD, StepLR, ExponentialLR, CosineAnnealingLR,
                         EarlyStopping)


def _opt(lr=1.0):
    return SGD([Parameter(np.ones(1))], lr=lr)


class TestSchedulers:
    def test_step_lr(self):
        opt = _opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_exponential(self):
        opt = _opt()
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_cosine_endpoints(self):
        opt = _opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decrease(self):
        opt = _opt()
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        es = EarlyStopping(patience=3, min_delta=1e-3)
        stops = [es.update(1.0) for _ in range(4)]
        assert stops == [False, False, False, True]

    def test_improvement_resets_counter(self):
        es = EarlyStopping(patience=2, min_delta=0.0)
        assert not es.update(1.0)
        assert not es.update(1.0)   # count 1
        assert not es.update(0.5)   # improvement resets
        assert not es.update(0.5)   # count 1
        assert es.update(0.5)       # count 2 -> stop

    def test_min_delta_relative(self):
        es = EarlyStopping(patience=1, min_delta=0.1)
        assert not es.update(1.0)
        # 5% improvement < 10% threshold -> counts as plateau.
        assert es.update(0.95)

    def test_min_epochs_respected(self):
        es = EarlyStopping(patience=1, min_epochs=5)
        for i in range(4):
            assert not es.update(1.0)
        assert es.update(1.0)

    def test_best_tracked(self):
        es = EarlyStopping(patience=10)
        es.update(3.0)
        es.update(1.0)
        es.update(2.0)
        assert es.best == 1.0
        assert es.best_epoch == 2

    def test_reset(self):
        es = EarlyStopping(patience=1)
        es.update(1.0)
        es.update(1.0)
        assert es.stopped
        es.reset()
        assert not es.stopped
        assert es.epoch == 0

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
