"""Optimizer tests: convergence on quadratics, state handling."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam


def _quadratic_params(rng):
    """min ||p - target||^2, grad = 2 (p - target)."""
    p = Parameter(rng.standard_normal(8).astype(np.float64))
    target = rng.standard_normal(8)
    return p, target


def _grad_step(p, target):
    p.grad = 2.0 * (p.data - target)


class TestSGD:
    def test_converges_on_quadratic(self):
        rng = np.random.default_rng(0)
        p, target = _quadratic_params(rng)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            _grad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        rng = np.random.default_rng(0)
        p1, target = _quadratic_params(rng)
        p2 = Parameter(p1.data.copy())
        plain = SGD([p1], lr=0.01)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            _grad_step(p1, target); plain.step()
            _grad_step(p2, target); mom.step()
        assert np.linalg.norm(p2.data - target) < np.linalg.norm(p1.data - target)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(4, dtype=np.float64))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(4)
        opt.step()
        assert np.all(p.data < 1.0)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2, dtype=np.float64))
        SGD([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, 1.0)

    def test_invalid_hyperparams(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        rng = np.random.default_rng(1)
        p, target = _quadratic_params(rng)
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            _grad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, |first step| ~= lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.zeros(1, dtype=np.float64))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-5)

    def test_invalid_betas(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))

    def test_state_per_parameter(self):
        p1 = Parameter(np.zeros(2, dtype=np.float64))
        p2 = Parameter(np.zeros(3, dtype=np.float64))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        p2.grad = np.ones(3)
        opt.step()
        assert opt.state[0]["m"].shape == (2,)
        assert opt.state[1]["m"].shape == (3,)

    def test_sync_params_preserves_state(self):
        """After architectural adaptation, surviving params keep moments."""
        from repro.nn import UNet

        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        opt = Adam(net.parameters(), lr=0.01)
        for p in net.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()
        kept = net.enc_blocks[0].conv.weight
        kept_idx = next(i for i, p in enumerate(opt.params) if p is kept)
        m_before = opt.state[kept_idx]["m"].copy()

        net.adapt_decoder(rng=1)
        opt.sync_params(net)
        new_idx = next(i for i, p in enumerate(opt.params) if p is kept)
        np.testing.assert_array_equal(opt.state[new_idx]["m"], m_before)
        assert len(opt.params) == len(list(net.parameters()))
