"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Module, Parameter, Sequential, ModuleList, Conv2d, BatchNorm


class _Toy(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3, dtype=np.float32))
        self.child = Sequential(Conv2d(1, 2, kernel_size=3, rng=0))
        self.register_buffer("counter", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return x


class TestRegistration:
    def test_parameters_collected_depth_first(self):
        m = _Toy()
        names = [n for n, _ in m.named_parameters()]
        assert names[0] == "w"
        assert any(n.startswith("child.0.") for n in names)

    def test_num_parameters(self):
        m = _Toy()
        conv = m.child[0]
        expected = 3 + conv.weight.size + conv.bias.size
        assert m.num_parameters() == expected

    def test_reassignment_replaces(self):
        m = _Toy()
        m.w = Parameter(np.zeros(5, dtype=np.float32))
        assert dict(m.named_parameters())["w"].size == 5

    def test_non_module_attr_not_registered(self):
        m = _Toy()
        m.some_config = 42
        assert "some_config" not in dict(m.named_parameters())

    def test_buffers(self):
        m = _Toy()
        names = [n for n, _ in m.named_buffers()]
        assert "counter" in names

    def test_update_buffer_unknown_raises(self):
        m = _Toy()
        with pytest.raises(KeyError):
            m.update_buffer("nope", np.zeros(1))

    def test_modules_iteration(self):
        m = _Toy()
        mods = list(m.modules())
        assert m in mods
        assert any(isinstance(x, Conv2d) for x in mods)


class TestModes:
    def test_train_eval_propagates(self):
        m = _Toy()
        assert m.training
        m.eval()
        assert not m.training
        assert not m.child.training
        m.train()
        assert m.child[0].training

    def test_zero_grad(self):
        m = _Toy()
        for p in m.parameters():
            p.grad = np.ones_like(p.data)
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = _Toy(), _Toy()
        # Perturb m1 and transfer to m2.
        for p in m1.parameters():
            p.data += 1.0
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        m = _Toy()
        state = m.state_dict()
        state["w"] += 99
        assert m.w.data[0] == 1.0

    def test_missing_key_strict_raises(self):
        m = _Toy()
        state = m.state_dict()
        del state["w"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = _Toy()
        state = m.state_dict()
        state["w"] = np.zeros(7, dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_buffers_roundtrip(self):
        m1, m2 = _Toy(), _Toy()
        m1.update_buffer("counter", np.array([5.0], dtype=np.float32))
        m2.load_state_dict(m1.state_dict())
        assert m2.counter[0] == 5.0

    def test_batchnorm_running_stats_roundtrip(self):
        bn1, bn2 = BatchNorm(2), BatchNorm(2)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 2, 3, 3)).astype(np.float32))
        bn1(x)
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_allclose(bn1.running_mean, bn2.running_mean)
        np.testing.assert_allclose(bn1.running_var, bn2.running_var)


class TestContainers:
    def test_sequential_order(self):
        from repro.nn import LeakyReLU

        s = Sequential(LeakyReLU(0.1), LeakyReLU(0.2))
        assert len(s) == 2
        assert s[0].negative_slope == 0.1
        assert s[-1].negative_slope == 0.2

    def test_sequential_forward(self):
        from repro.nn import ReLU

        s = Sequential(ReLU(), ReLU())
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(s(x).data, [0.0, 2.0])

    def test_sequential_append(self):
        from repro.nn import ReLU

        s = Sequential(ReLU())
        s.append(ReLU())
        assert len(s) == 2

    def test_modulelist_set_get(self):
        from repro.nn import ReLU, Sigmoid

        ml = ModuleList([ReLU(), ReLU()])
        ml[1] = Sigmoid()
        assert isinstance(ml[1], Sigmoid)
        assert len(list(iter(ml))) == 2

    def test_modulelist_forward_raises(self):
        ml = ModuleList([])
        with pytest.raises(RuntimeError):
            ml()

    def test_modulelist_index_error(self):
        from repro.nn import ReLU

        ml = ModuleList([ReLU()])
        with pytest.raises(IndexError):
            ml[3]
