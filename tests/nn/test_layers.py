"""Layer behaviour: conv wrappers, batchnorm module, activations, pooling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (Conv2d, Conv3d, ConvTranspose2d, ConvTranspose3d,
                      BatchNorm, LeakyReLU, Sigmoid, MaxPool, AvgPool, init)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestConvLayers:
    def test_conv2d_shape(self, rng):
        layer = Conv2d(1, 4, kernel_size=3, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 8, 8)).astype(np.float32))
        assert layer(x).shape == (2, 4, 8, 8)

    def test_conv3d_stride(self, rng):
        layer = Conv3d(2, 3, kernel_size=2, stride=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 8, 8, 8)).astype(np.float32))
        assert layer(x).shape == (1, 3, 4, 4, 4)

    def test_wrong_rank_raises(self, rng):
        layer = Conv2d(1, 1, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 1, 4, 4, 4), dtype=np.float32)))

    def test_no_bias(self, rng):
        layer = Conv2d(1, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_transpose2d_upsamples(self, rng):
        layer = ConvTranspose2d(4, 2, kernel_size=2, stride=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        assert layer(x).shape == (1, 2, 10, 10)

    def test_transpose3d_upsamples(self, rng):
        layer = ConvTranspose3d(2, 1, kernel_size=2, stride=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 4, 4, 4)).astype(np.float32))
        assert layer(x).shape == (1, 1, 8, 8, 8)

    def test_transpose_wrong_rank_raises(self, rng):
        layer = ConvTranspose2d(1, 1, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 1, 4), dtype=np.float32)))

    def test_deterministic_init_by_seed(self):
        l1 = Conv2d(2, 3, rng=99)
        l2 = Conv2d(2, 3, rng=99)
        np.testing.assert_array_equal(l1.weight.data, l2.weight.data)


class TestBatchNormModule:
    def test_running_stats_update(self, rng):
        bn = BatchNorm(2, momentum=0.5)
        x = Tensor((rng.standard_normal((8, 2, 4, 4)) * 3 + 1).astype(np.float32))
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)
        assert int(bn.num_batches_tracked) == 1

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm(2, momentum=1.0)  # running stats = last batch stats
        x = Tensor(rng.standard_normal((16, 2, 5, 5)).astype(np.float32))
        y_train = bn(x).data
        bn.eval()
        y_eval = bn(x).data
        # momentum=1 makes running stats equal batch stats (up to the
        # biased/unbiased variance correction) so outputs nearly agree.
        np.testing.assert_allclose(y_train, y_eval, atol=1e-2)

    def test_channel_mismatch_raises(self, rng):
        bn = BatchNorm(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32)))


class TestActivationsPooling:
    def test_leaky_relu_layer(self):
        act = LeakyReLU(0.2)
        x = Tensor(np.array([-1.0, 1.0]))
        np.testing.assert_allclose(act(x).data, [-0.2, 1.0])

    def test_sigmoid_range(self, rng):
        act = Sigmoid()
        y = act(Tensor(rng.standard_normal(100).astype(np.float32))).data
        assert np.all((y > 0) & (y < 1))

    def test_maxpool_layer(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        assert MaxPool(2)(x).shape == (1, 1, 2, 2)

    def test_avgpool_layer_3d(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4, 4)).astype(np.float32))
        assert AvgPool(2)(x).shape == (1, 1, 2, 2, 2)


class TestInit:
    def test_fan_conv(self):
        assert init.calculate_fan((8, 4, 3, 3), "fan_in") == 4 * 9
        assert init.calculate_fan((8, 4, 3, 3), "fan_out") == 8 * 9

    def test_fan_requires_2d(self):
        with pytest.raises(ValueError):
            init.calculate_fan((5,))

    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((256, 128, 3, 3), rng)
        expected = np.sqrt(2.0 / (128 * 9))
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((64, 32, 3, 3), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / (32 * 9))
        assert np.abs(w).max() <= bound

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((64, 32), rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.abs(w).max() <= bound

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0)
