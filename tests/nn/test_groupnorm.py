"""GroupNorm tests, including the batch-size-independence property that
motivates it for local-batch-2 training."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn.groupnorm import GroupNorm

from tests.conftest import t64


@pytest.fixture
def rng():
    return np.random.default_rng(44)


class TestForward:
    def test_normalizes_per_group(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor((rng.standard_normal((3, 4, 5, 5)) * 3 + 1)
                   .astype(np.float64))
        y = gn(x).data
        for n in range(3):
            for g in range(2):
                block = y[n, 2 * g:2 * g + 2]
                assert block.mean() == pytest.approx(0.0, abs=1e-6)
                assert block.std() == pytest.approx(1.0, rel=1e-3)

    def test_instance_norm_special_case(self, rng):
        gn = GroupNorm(4, 4)  # groups == channels
        x = Tensor(rng.standard_normal((2, 4, 6, 6)).astype(np.float64))
        y = gn(x).data
        for n in range(2):
            for c in range(4):
                assert y[n, c].mean() == pytest.approx(0.0, abs=1e-6)

    def test_batch_size_independence(self, rng):
        """The core property: per-sample normalization means each sample's
        output is the same whether it appears in a batch of 1 or 8."""
        gn = GroupNorm(2, 4)
        x8 = rng.standard_normal((8, 4, 5, 5)).astype(np.float64)
        y8 = gn(Tensor(x8)).data
        y1 = gn(Tensor(x8[:1])).data
        np.testing.assert_allclose(y8[:1], y1, atol=1e-12)

    def test_3d_input(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.standard_normal((1, 4, 4, 4, 4)).astype(np.float32))
        assert gn(x).shape == (1, 4, 4, 4, 4)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)
        gn = GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(np.zeros((1, 6, 4, 4), dtype=np.float32)))


class TestBackward:
    def test_gradcheck(self, rng):
        x = t64((2, 4, 3, 3), rng)
        gn = GroupNorm(2, 4)
        gn.gamma.data = gn.gamma.data.astype(np.float64)
        gn.beta.data = gn.beta.data.astype(np.float64)
        gn.gamma.data[:] = rng.uniform(0.5, 2.0, 4)
        gn.beta.data[:] = rng.standard_normal(4)
        gradcheck(lambda x: gn(x), [x], rtol=1e-3, atol=1e-5)

    def test_gamma_beta_gradients(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.standard_normal((2, 4, 3, 3)).astype(np.float32))
        gn(x).sum().backward()
        assert gn.gamma.grad is not None
        assert gn.beta.grad is not None
        # d(sum)/d(beta_c) = number of positions per channel.
        np.testing.assert_allclose(gn.beta.grad, 2 * 9, rtol=1e-5)
