"""U-Net architecture tests: shape algebra, resolution agnosticism,
architectural adaptation (paper Sec. 3.1.2, 4.1.2)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import UNet


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def _x(rng, shape):
    return Tensor(rng.standard_normal(shape).astype(np.float32))


class TestShapes:
    @pytest.mark.parametrize("ndim,spatial", [(2, (16, 16)), (3, (8, 8, 8))])
    def test_output_matches_input_resolution(self, rng, ndim, spatial):
        net = UNet(ndim=ndim, base_filters=4, depth=2, rng=0)
        x = _x(rng, (2, 1) + spatial)
        assert net(x).shape == (2, 1) + spatial

    def test_resolution_agnostic(self, rng):
        """Property 1 of Sec. 3.1.2: one network, many resolutions."""
        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        for r in (8, 16, 32):
            assert net(_x(rng, (1, 1, r, r))).shape == (1, 1, r, r)

    def test_indivisible_resolution_raises(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=3, rng=0)
        with pytest.raises(ValueError):
            net(_x(rng, (1, 1, 12, 12)))

    def test_wrong_rank_raises(self, rng):
        net = UNet(ndim=3, base_filters=4, depth=1, rng=0)
        with pytest.raises(ValueError):
            net(_x(rng, (1, 1, 8, 8)))

    def test_min_resolution(self):
        assert UNet(ndim=2, depth=3, rng=0).min_resolution == 8

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            UNet(ndim=4, rng=0)
        with pytest.raises(ValueError):
            UNet(ndim=2, depth=0, rng=0)
        with pytest.raises(ValueError):
            UNet(ndim=2, downsample="bilinear", rng=0)
        with pytest.raises(ValueError):
            UNet(ndim=2, final_activation="tanh", rng=0)


class TestBehaviour:
    def test_sigmoid_output_range(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=1, rng=0)
        y = net(_x(rng, (2, 1, 8, 8))).data
        assert np.all((y >= 0) & (y <= 1))

    def test_no_final_activation(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=1, final_activation=None, rng=0)
        y = net(_x(rng, (4, 1, 8, 8))).data
        assert y.min() < 0 or y.max() > 1  # unconstrained head

    def test_maxpool_downsample_variant(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, downsample="maxpool", rng=0)
        assert net(_x(rng, (1, 1, 16, 16))).shape == (1, 1, 16, 16)

    def test_no_batchnorm_variant(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, use_batchnorm=False, rng=0)
        assert net(_x(rng, (1, 1, 8, 8))).shape == (1, 1, 8, 8)
        assert not any("bn" in n for n, _ in net.named_parameters())

    def test_gradients_reach_all_parameters(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        y = net(_x(rng, (2, 1, 8, 8)))
        ((y - 0.5) ** 2).mean().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"

    def test_filter_doubling(self):
        net = UNet(ndim=2, base_filters=8, depth=3, rng=0)
        assert net.enc_blocks[0].conv.out_channels == 8
        assert net.enc_blocks[1].conv.out_channels == 16
        assert net.enc_blocks[2].conv.out_channels == 32
        assert net.bottleneck.conv.out_channels == 64


class TestAdaptation:
    def test_adds_parameters(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        n0 = net.num_parameters()
        net.adapt_decoder(rng=1)
        assert net.num_parameters() > n0
        assert net.num_adaptations == 1

    def test_swaps_last_upconv(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        old = net.ups[len(net.ups) - 1].upconv
        net.adapt_decoder(rng=1)
        assert net.ups[len(net.ups) - 1].upconv is not old

    def test_forward_still_resolution_preserving(self, rng):
        net = UNet(ndim=3, base_filters=4, depth=1, rng=0)
        net.adapt_decoder(rng=1)
        net.adapt_decoder(rng=2)
        assert net(_x(rng, (1, 1, 8, 8, 8))).shape == (1, 1, 8, 8, 8)

    def test_adaptation_layer_counts(self, rng):
        """+2 transpose convs (1 fresh swap + 1 refinement), +1 conv."""
        from repro.nn import ConvTransposeNd, ConvNd

        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        def count(cls):
            return sum(isinstance(m, cls) for m in net.modules())
        tc0, c0 = count(ConvTransposeNd), count(ConvNd)
        net.adapt_decoder(rng=1)
        assert count(ConvTransposeNd) == tc0 + 1   # refinement tconv (swap replaces one)
        assert count(ConvNd) == c0 + 1             # refinement conv block

    def test_trained_encoder_preserved(self, rng):
        net = UNet(ndim=2, base_filters=4, depth=2, rng=0)
        enc_w = net.enc_blocks[0].conv.weight.data.copy()
        net.adapt_decoder(rng=1)
        np.testing.assert_array_equal(net.enc_blocks[0].conv.weight.data, enc_w)
