"""Neural-network layers built on :mod:`repro.autograd`.

Provides the Module/Parameter system, convolution / normalization /
activation / pooling layers, containers, initialization schemes, and the
dimension-agnostic :class:`UNet` used by MGDiffNet.
"""

from .module import Module, Parameter
from .container import Sequential, ModuleList
from .conv import (ConvNd, Conv2d, Conv3d, ConvTransposeNd,
                   ConvTranspose2d, ConvTranspose3d)
from .norm import BatchNorm
from .groupnorm import GroupNorm
from .activation import LeakyReLU, ReLU, Sigmoid, Tanh
from .pooling import MaxPool, AvgPool
from .unet import UNet, ConvBlock, UpBlock, RefinementBlock
from . import init

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "ConvNd", "Conv2d", "Conv3d",
    "ConvTransposeNd", "ConvTranspose2d", "ConvTranspose3d",
    "BatchNorm", "GroupNorm", "LeakyReLU", "ReLU", "Sigmoid", "Tanh",
    "MaxPool", "AvgPool",
    "UNet", "ConvBlock", "UpBlock", "RefinementBlock",
    "init",
]
