"""Dimension-agnostic U-Net — the Gnn architecture of MGDiffNet.

Satisfies the three properties of Sec. 3.1.2 of the paper:

1. all connections are convolutions / transposed convolutions;
2. every down/up-sampling changes resolution by exactly a factor of two;
3. 'same' padding wards off fence effects.

Because kernels are resolution independent, one instance processes inputs
at every multigrid level.  The encoder starts at ``base_filters`` and
doubles the channel count per depth, mirroring the paper's configuration
(base 16, depth 3, LeakyReLU inner activations, Sigmoid output).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..utils.seeding import make_rng, spawn_rngs
from .activation import LeakyReLU, Sigmoid
from .container import ModuleList, Sequential
from .conv import ConvNd, ConvTransposeNd
from .module import Module
from .norm import BatchNorm
from .pooling import MaxPool

__all__ = ["ConvBlock", "UpBlock", "RefinementBlock", "UNet"]


class ConvBlock(Module):
    """Conv(k3, same) -> norm -> LeakyReLU — the paper's basic block.

    ``use_batchnorm`` selects the paper's BatchNorm; pass
    ``norm='group'`` instead for the batch-size-robust GroupNorm variant
    (relevant at the paper's local batch of 2).
    """

    def __init__(self, ndim: int, in_channels: int, out_channels: int,
                 rng: np.random.Generator, negative_slope: float = 0.01,
                 use_batchnorm: bool = True, norm: str | None = None) -> None:
        super().__init__()
        self.conv = ConvNd(ndim, in_channels, out_channels, kernel_size=3,
                           padding=1, rng=rng, negative_slope=negative_slope)
        if norm is None:
            norm = "batch" if use_batchnorm else "none"
        if norm == "batch":
            self.bn: Module | None = BatchNorm(out_channels)
        elif norm == "group":
            from .groupnorm import GroupNorm

            groups = min(4, out_channels)
            while out_channels % groups:
                groups -= 1
            self.bn = GroupNorm(groups, out_channels)
        elif norm == "none":
            self.bn = None
        else:
            raise ValueError(f"unknown norm {norm!r}")
        self.act = LeakyReLU(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv(x)
        if self.bn is not None:
            x = self.bn(x)
        return self.act(x)


class UpBlock(Module):
    """ConvTranspose(x2) -> concat skip -> ConvBlock."""

    def __init__(self, ndim: int, in_channels: int, skip_channels: int,
                 out_channels: int, rng: np.random.Generator,
                 negative_slope: float = 0.01, use_batchnorm: bool = True) -> None:
        super().__init__()
        self.upconv = ConvTransposeNd(ndim, in_channels, out_channels,
                                      kernel_size=2, stride=2, rng=rng)
        self.block = ConvBlock(ndim, out_channels + skip_channels, out_channels,
                               rng, negative_slope, use_batchnorm)

    def forward(self, x: Tensor, skip: Tensor) -> Tensor:
        x = self.upconv(x)
        x = concat([x, skip], axis=1)
        return self.block(x)


class RefinementBlock(Module):
    """Resolution-preserving refinement added by architectural adaptation.

    One stride-1 transposed convolution followed by one convolution block —
    together with the transpose conv swapped into the last
    :class:`UpBlock`, a single adaptation step adds exactly *one conv layer
    and two transpose conv layers* while removing *one learned transpose
    conv layer* (Sec. 4.1.2 of the paper).
    """

    def __init__(self, ndim: int, channels: int, rng: np.random.Generator,
                 negative_slope: float = 0.01, use_batchnorm: bool = True) -> None:
        super().__init__()
        self.tconv = ConvTransposeNd(ndim, channels, channels, kernel_size=3,
                                     stride=1, padding=1, rng=rng)
        self.act = LeakyReLU(negative_slope)
        self.block = ConvBlock(ndim, channels, channels, rng,
                               negative_slope, use_batchnorm)

    def forward(self, x: Tensor) -> Tensor:
        return self.block(self.act(self.tconv(x)))


class UNet(Module):
    """Fully convolutional encoder/decoder with skip connections.

    Parameters
    ----------
    ndim:
        Spatial dimensionality, 2 or 3.
    in_channels, out_channels:
        Field channels (1 -> 1 for the scalar Poisson problem).
    base_filters:
        Channels of the first encoder stage; doubled per depth (paper: 16).
    depth:
        Number of down/up-sampling stages (paper: 3).  Input spatial sizes
        must be divisible by ``2**depth``.
    downsample:
        ``"conv"`` uses a stride-2 convolution, ``"maxpool"`` a 2x pool.
    final_activation:
        ``"sigmoid"`` (paper) or ``None`` for unconstrained output.
    """

    def __init__(self, ndim: int, in_channels: int = 1, out_channels: int = 1,
                 base_filters: int = 16, depth: int = 3,
                 negative_slope: float = 0.01, downsample: str = "conv",
                 use_batchnorm: bool = True,
                 final_activation: str | None = "sigmoid",
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        rng = make_rng(rng)
        if ndim not in (2, 3):
            raise ValueError("UNet supports ndim in {2, 3}")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.ndim = ndim
        self.depth = depth
        self.base_filters = base_filters
        self.negative_slope = negative_slope
        self.use_batchnorm = use_batchnorm
        self._adaptations = 0

        filters = [base_filters * (2 ** i) for i in range(depth + 1)]
        rngs = iter(spawn_rngs(rng, 4 * depth + 8))

        self.enc_blocks = ModuleList()
        self.downs = ModuleList()
        c_in = in_channels
        for i in range(depth):
            self.enc_blocks.append(ConvBlock(
                ndim, c_in, filters[i], next(rngs), negative_slope, use_batchnorm))
            if downsample == "conv":
                self.downs.append(ConvNd(ndim, filters[i], filters[i],
                                         kernel_size=2, stride=2, rng=next(rngs)))
            elif downsample == "maxpool":
                self.downs.append(MaxPool(2))
            else:
                raise ValueError(f"unknown downsample {downsample!r}")
            c_in = filters[i]

        self.bottleneck = ConvBlock(ndim, filters[depth - 1], filters[depth],
                                    next(rngs), negative_slope, use_batchnorm)

        self.ups = ModuleList()
        for i in reversed(range(depth)):
            self.ups.append(UpBlock(ndim, filters[i + 1], filters[i], filters[i],
                                    next(rngs), negative_slope, use_batchnorm))

        self.refinements = ModuleList()
        self.out_conv = ConvNd(ndim, filters[0], out_channels, kernel_size=1,
                               rng=next(rngs))
        if final_activation == "sigmoid":
            self.final_act: Module | None = Sigmoid()
        elif final_activation is None:
            self.final_act = None
        else:
            raise ValueError(f"unknown final activation {final_activation!r}")

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        self.check_input(x)
        skips: list[Tensor] = []
        for i in range(self.depth):
            x = self.enc_blocks[i](x)
            skips.append(x)
            x = self.downs[i](x)
        x = self.bottleneck(x)
        for i, up in enumerate(self.ups):
            x = up(x, skips[self.depth - 1 - i])
        for ref in self.refinements:
            x = ref(x)
        x = self.out_conv(x)
        if self.final_act is not None:
            x = self.final_act(x)
        return x

    def check_input(self, x: Tensor) -> None:
        if x.ndim != self.ndim + 2:
            raise ValueError(
                f"expected (N, C, {'x'.join(['S'] * self.ndim)}) input, "
                f"got shape {x.shape}")
        div = 2 ** self.depth
        for s in x.shape[2:]:
            if s % div:
                raise ValueError(
                    f"spatial size {s} not divisible by 2**depth={div}")

    @property
    def min_resolution(self) -> int:
        """Smallest spatial size the network accepts."""
        return 2 ** self.depth

    # ------------------------------------------------------------------ #
    def adapt_decoder(self, rng: np.random.Generator | int | None = None) -> None:
        """Architectural adaptation (paper Sec. 4.1.2).

        Swaps the last learned up-convolution for a freshly initialized one
        and appends a resolution-preserving :class:`RefinementBlock` — net
        effect: +1 conv layer, +2 transpose conv layers, −1 learned
        transpose conv layer.  Loss transiently rises and recovers within a
        few dozen minibatches (Table 2 discussion).
        """
        rng = make_rng(rng)
        last: UpBlock = self.ups[len(self.ups) - 1]
        fresh = ConvTransposeNd(self.ndim, last.upconv.in_channels,
                                last.upconv.out_channels, kernel_size=2,
                                stride=2, rng=rng)
        last.upconv = fresh
        self.refinements.append(RefinementBlock(
            self.ndim, self.base_filters, rng, self.negative_slope,
            self.use_batchnorm))
        self._adaptations += 1

    @property
    def num_adaptations(self) -> int:
        return self._adaptations
