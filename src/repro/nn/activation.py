"""Activation layers."""

from __future__ import annotations

from ..autograd import Tensor
from ..autograd import ops_activation as oa
from .module import Module

__all__ = ["LeakyReLU", "ReLU", "Sigmoid", "Tanh"]


class LeakyReLU(Module):
    """LeakyReLU — the intermediate activation of the paper's U-Net."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return oa.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU({self.negative_slope})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return oa.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Sigmoid — the final activation of the paper's U-Net; its [0, 1]
    range matches the Dirichlet data ``u(0,·)=1, u(1,·)=0``."""

    def forward(self, x: Tensor) -> Tensor:
        return oa.sigmoid(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return oa.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"
