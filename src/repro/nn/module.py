"""Module / Parameter system (the minimal subset of the torch.nn contract
needed by MGDiffNet: parameter registration, train/eval modes, state dicts).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A Tensor that is registered as a trainable weight of a Module."""

    def __init__(self, data: Any, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network layers and containers.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement ``forward``.  Registration is automatic via
    ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            # Re-assignments may shadow earlier registrations.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Parameter]:
        """All trainable parameters in registration order (depth first)."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for mname, m in self._modules.items():
            yield from m.named_buffers(prefix=f"{prefix}{mname}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's ``Nw``)."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Modes
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[f"buffer:{name}"] = np.asarray(b).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        for name, p in own_params.items():
            if name in state:
                if p.data.shape != state[name].shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
                p.data = state[name].astype(p.data.dtype).copy()
            elif strict:
                raise KeyError(f"missing parameter {name!r} in state dict")
        # Buffers are restored by walking modules with matching prefixes.
        buf_state = {k[len("buffer:"):]: v for k, v in state.items()
                     if k.startswith("buffer:")}
        self._load_buffers(buf_state, prefix="", strict=strict)

    def _load_buffers(self, buf_state: dict[str, np.ndarray], prefix: str,
                      strict: bool) -> None:
        for name in list(self._buffers):
            full = f"{prefix}{name}"
            if full in buf_state:
                self.update_buffer(name, buf_state[full].copy())
            elif strict:
                raise KeyError(f"missing buffer {full!r} in state dict")
        for mname, m in self._modules.items():
            m._load_buffers(buf_state, prefix=f"{prefix}{mname}.", strict=strict)

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, m in self._modules.items():
            sub = repr(m).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else (
            f"{self.__class__.__name__}()")
