"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..autograd import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, m in enumerate(modules):
            setattr(self, str(i), m)
        self._n = len(modules)

    def forward(self, x: Tensor) -> Tensor:
        for i in range(self._n):
            x = getattr(self, str(i))(x)
        return x

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, str(i)) for i in range(self._n))

    def __getitem__(self, i: int) -> Module:
        if not -self._n <= i < self._n:
            raise IndexError(i)
        return getattr(self, str(i % self._n))

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(self._n), module)
        object.__setattr__(self, "_n", self._n + 1)
        return self


class ModuleList(Module):
    """List of modules registered as children (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._n = 0
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._n), module)
        object.__setattr__(self, "_n", self._n + 1)
        return self

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, str(i)) for i in range(self._n))

    def __getitem__(self, i: int) -> Module:
        if not -self._n <= i < self._n:
            raise IndexError(i)
        return getattr(self, str(i % self._n))

    def __setitem__(self, i: int, module: Module) -> None:
        if not -self._n <= i < self._n:
            raise IndexError(i)
        setattr(self, str(i % self._n), module)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList has no forward; iterate over it")
