"""Pooling layers (factor-of-two downsampling, Sec. 3.1.2 property 2)."""

from __future__ import annotations

from ..autograd import Tensor, max_pool_nd, avg_pool_nd
from .module import Module

__all__ = ["MaxPool", "AvgPool"]


class MaxPool(Module):
    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return max_pool_nd(x, self.kernel)

    def __repr__(self) -> str:
        return f"MaxPool({self.kernel})"


class AvgPool(Module):
    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool_nd(x, self.kernel)

    def __repr__(self) -> str:
        return f"AvgPool({self.kernel})"
