"""Convolution layers (dimension-agnostic) for the fully convolutional
MGDiffNet.  Because the kernels are resolution independent, the same layer
instance can be applied at every multigrid level (Sec. 3.1.2, property 1).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, conv_nd, conv_transpose_nd, tuplify
from ..backend.conv_plan import ConvPlan, plan_conv
from ..utils.seeding import make_rng
from . import init
from .module import Module, Parameter

__all__ = ["ConvNd", "Conv2d", "Conv3d", "ConvTransposeNd",
           "ConvTranspose2d", "ConvTranspose3d"]


class ConvNd(Module):
    """N-dimensional convolution layer.

    Parameters
    ----------
    ndim:
        Spatial dimensionality (2 or 3 for MGDiffNet).
    in_channels, out_channels, kernel_size, stride, padding:
        Standard conv hyperparameters; scalars broadcast over axes.
    bias:
        Whether to learn an additive bias per output channel.
    """

    def __init__(self, ndim: int, in_channels: int, out_channels: int,
                 kernel_size: int | tuple[int, ...] = 3,
                 stride: int | tuple[int, ...] = 1,
                 padding: int | tuple[int, ...] = 0,
                 bias: bool = True,
                 rng: np.random.Generator | int | None = None,
                 negative_slope: float = 0.0) -> None:
        super().__init__()
        rng = make_rng(rng)
        self.ndim = ndim
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuplify(kernel_size, ndim)
        self.stride = tuplify(stride, ndim)
        self.padding = tuplify(padding, ndim)
        wshape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(init.kaiming_normal(
            wshape, rng, negative_slope=negative_slope))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != self.ndim + 2:
            raise ValueError(
                f"expected {self.ndim + 2}-d input (N, C, spatial), got {x.ndim}-d")
        return conv_nd(x, self.weight, self.bias,
                       stride=self.stride, padding=self.padding)

    def plan_for(self, x_shape: tuple[int, ...], dtype=None) -> ConvPlan:
        """The (memoized) execution plan this layer uses for an input shape.

        Exposes the backend conv planner for profiling and tests: the same
        plan object drives :func:`repro.autograd.conv_nd` at call time.
        ``dtype`` is the *input* dtype (plans are dtype-sensitive — patch
        bytes double in float64); defaults to the weight dtype, which is
        correct whenever inputs and weights share precision.
        """
        return plan_conv(x_shape, self.weight.shape, self.stride,
                         self.padding, dtype or self.weight.dtype)

    def __repr__(self) -> str:
        return (f"ConvNd({self.ndim}d, {self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class ConvTransposeNd(Module):
    """N-dimensional transposed convolution (learned upsampling)."""

    def __init__(self, ndim: int, in_channels: int, out_channels: int,
                 kernel_size: int | tuple[int, ...] = 2,
                 stride: int | tuple[int, ...] = 2,
                 padding: int | tuple[int, ...] = 0,
                 output_padding: int | tuple[int, ...] = 0,
                 bias: bool = True,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        rng = make_rng(rng)
        self.ndim = ndim
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuplify(kernel_size, ndim)
        self.stride = tuplify(stride, ndim)
        self.padding = tuplify(padding, ndim)
        self.output_padding = tuplify(output_padding, ndim)
        wshape = (in_channels, out_channels, *self.kernel_size)
        self.weight = Parameter(init.kaiming_normal(wshape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != self.ndim + 2:
            raise ValueError(
                f"expected {self.ndim + 2}-d input (N, C, spatial), got {x.ndim}-d")
        return conv_transpose_nd(x, self.weight, self.bias,
                                 stride=self.stride, padding=self.padding,
                                 output_padding=self.output_padding)

    def __repr__(self) -> str:
        return (f"ConvTransposeNd({self.ndim}d, "
                f"{self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride})")


class Conv2d(ConvNd):
    def __init__(self, in_channels: int, out_channels: int, **kwargs) -> None:
        super().__init__(2, in_channels, out_channels, **kwargs)


class Conv3d(ConvNd):
    def __init__(self, in_channels: int, out_channels: int, **kwargs) -> None:
        super().__init__(3, in_channels, out_channels, **kwargs)


class ConvTranspose2d(ConvTransposeNd):
    def __init__(self, in_channels: int, out_channels: int, **kwargs) -> None:
        super().__init__(2, in_channels, out_channels, **kwargs)


class ConvTranspose3d(ConvTransposeNd):
    def __init__(self, in_channels: int, out_channels: int, **kwargs) -> None:
        super().__init__(3, in_channels, out_channels, **kwargs)
