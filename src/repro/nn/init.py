"""Weight initialization schemes.

Kaiming (He) initialization is the default for conv layers feeding
LeakyReLU activations, per common U-Net practice.
"""

from __future__ import annotations

import math

import numpy as np

from ..backend.dtype import get_default_dtype

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "calculate_fan"]


def calculate_fan(shape: tuple[int, ...], mode: str = "fan_in") -> int:
    """Fan-in/out for a conv weight (C_out, C_in, *kernel) or dense (out, in)."""
    if len(shape) < 2:
        raise ValueError("fan requires at least 2 dims")
    receptive = math.prod(shape[2:]) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in if mode == "fan_in" else fan_out


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator,
                   negative_slope: float = 0.0, mode: str = "fan_in",
                   dtype=None) -> np.ndarray:
    """He-normal init: std = gain / sqrt(fan)."""
    dtype = dtype or get_default_dtype()
    fan = calculate_fan(shape, mode)
    gain = math.sqrt(2.0 / (1.0 + negative_slope ** 2))
    std = gain / math.sqrt(fan)
    return (rng.standard_normal(shape) * std).astype(dtype)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                    negative_slope: float = 0.0, mode: str = "fan_in",
                    dtype=None) -> np.ndarray:
    dtype = dtype or get_default_dtype()
    fan = calculate_fan(shape, mode)
    gain = math.sqrt(2.0 / (1.0 + negative_slope ** 2))
    bound = gain * math.sqrt(3.0 / fan)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   dtype=None) -> np.ndarray:
    dtype = dtype or get_default_dtype()
    fan_in = calculate_fan(shape, "fan_in")
    fan_out = calculate_fan(shape, "fan_out")
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=dtype or get_default_dtype())
