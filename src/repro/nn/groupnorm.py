"""Group normalization — the batch-size-robust alternative to batch norm.

The paper's scaling runs use a *local batch of 2* (memory bound), where
batch-norm statistics are extremely noisy and differ per data-parallel
rank.  GroupNorm (Wu & He, 2018) normalizes over channel groups within
each sample, making the model's behaviour independent of (local) batch
size — a natural robustness extension for the megavoxel regime.
"""

from __future__ import annotations

import math

import numpy as np

from ..backend import ops as B
from ..backend.dtype import get_default_dtype
from ..autograd import Tensor
from ..autograd.function import Context, Function
from .module import Module, Parameter

__all__ = ["GroupNorm"]


class _GroupNormFn(Function):
    @staticmethod
    def forward(ctx: Context, x: np.ndarray, gamma: np.ndarray,
                beta: np.ndarray, num_groups: int, eps: float) -> np.ndarray:
        n, c = x.shape[:2]
        spatial = x.shape[2:]
        g = num_groups
        xg = x.reshape(n, g, c // g, *spatial)
        axes = tuple(range(2, xg.ndim))
        mean = xg.mean(axis=axes, keepdims=True)
        var = xg.var(axis=axes, keepdims=True)
        inv_std = 1.0 / B.sqrt(var + eps)
        xhat = ((xg - mean) * inv_std).reshape(x.shape)
        gshape = (1, c) + (1,) * len(spatial)
        out = gamma.reshape(gshape) * xhat + beta.reshape(gshape)
        m = math.prod(xg.shape[2:])
        ctx.meta.update(xhat=xhat, inv_std=inv_std, g=g, m=m,
                        gamma=gamma, gshape=gshape, x_shape=x.shape)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        xhat = ctx.meta["xhat"]
        inv_std = ctx.meta["inv_std"]
        g = ctx.meta["g"]
        m = ctx.meta["m"]
        gshape = ctx.meta["gshape"]
        gamma = ctx.meta["gamma"].reshape(gshape)
        x_shape = ctx.meta["x_shape"]
        n, c = x_shape[:2]
        spatial = x_shape[2:]

        reduce_axes = (0,) + tuple(range(2, len(x_shape)))
        dgamma = (grad * xhat).sum(axis=reduce_axes)
        dbeta = grad.sum(axis=reduce_axes)

        dxhat = (grad * gamma).reshape(n, g, c // g, *spatial)
        xh = xhat.reshape(n, g, c // g, *spatial)
        axes = tuple(range(2, dxhat.ndim))
        sum_dx = dxhat.sum(axis=axes, keepdims=True)
        sum_dx_xh = (dxhat * xh).sum(axis=axes, keepdims=True)
        dx = inv_std / m * (m * dxhat - sum_dx - xh * sum_dx_xh)
        return dx.reshape(x_shape), dgamma, dbeta, None, None


class GroupNorm(Module):
    """Normalize over channel groups per sample.

    Parameters
    ----------
    num_groups:
        Number of channel groups; must divide ``num_channels``.
        ``num_groups == num_channels`` is InstanceNorm,
        ``num_groups == 1`` is LayerNorm over (C, spatial).
    """

    def __init__(self, num_groups: int, num_channels: int,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"channels {num_channels} not divisible by groups {num_groups}")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        dtype = get_default_dtype()
        self.gamma = Parameter(np.ones(num_channels, dtype=dtype))
        self.beta = Parameter(np.zeros(num_channels, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm expected {self.num_channels} channels, "
                f"got {x.shape[1]}")
        return _GroupNormFn.apply(x, self.gamma, self.beta,
                                  self.num_groups, self.eps)

    def __repr__(self) -> str:
        return (f"GroupNorm(groups={self.num_groups}, "
                f"channels={self.num_channels})")
