"""Batch normalization layer with running statistics."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, batch_norm
from ..backend.dtype import get_default_dtype
from .module import Module, Parameter
from . import init

__all__ = ["BatchNorm"]


class BatchNorm(Module):
    """Batch normalization over (N, *spatial) per channel.

    Training mode normalizes with batch statistics and updates exponential
    running averages; evaluation mode uses the running averages — matching
    the behaviour assumed by the paper's U-Net blocks.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        dtype = get_default_dtype()
        self.gamma = Parameter(np.ones(num_features, dtype=dtype))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm expected {self.num_features} channels, got {x.shape[1]}")
        if self.training:
            nd = x.ndim - 2
            axes = (0,) + tuple(range(2, 2 + nd))
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            m = self.momentum
            stat_dtype = np.asarray(self.running_mean).dtype
            self.update_buffer(
                "running_mean",
                ((1 - m) * self.running_mean + m * batch_mean).astype(stat_dtype))
            # Unbiased variance for the running estimate (torch convention).
            n = x.data.size // x.shape[1]
            unbiased = batch_var * (n / max(n - 1, 1))
            self.update_buffer(
                "running_var",
                ((1 - m) * self.running_var + m * unbiased).astype(stat_dtype))
            self.update_buffer("num_batches_tracked",
                               self.num_batches_tracked + 1)
            return batch_norm(x, self.gamma, self.beta, training=True, eps=self.eps)
        return batch_norm(x, self.gamma, self.beta,
                          running_mean=self.running_mean,
                          running_var=self.running_var,
                          training=False, eps=self.eps)

    def __repr__(self) -> str:
        return f"BatchNorm({self.num_features}, eps={self.eps}, momentum={self.momentum})"
