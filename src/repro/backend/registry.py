"""Backend registry: named backends, the active-backend switch and the
module-level op dispatcher.

``set_backend("numpy")`` activates a registered backend; every op call
made through :data:`ops` after that resolves against it.  The active
backend is thread-local so a worker thread can pin a different backend
without perturbing the main loop.  ``REPRO_BACKEND`` selects the initial
backend for the whole process.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterator

from .base import ArrayBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "register_backend", "available_backends", "set_backend", "get_backend",
    "use_backend", "ops",
]

_REGISTRY_LOCK = threading.Lock()
_BACKENDS: dict[str, ArrayBackend | Callable[[], ArrayBackend]] = {}


class _ActiveBackend(threading.local):
    def __init__(self) -> None:
        self.backend: ArrayBackend | None = None


_active = _ActiveBackend()


def register_backend(name: str,
                     backend: ArrayBackend | Callable[[], ArrayBackend],
                     ) -> None:
    """Register a backend instance (or zero-arg factory) under ``name``."""
    with _REGISTRY_LOCK:
        _BACKENDS[name] = backend


def available_backends() -> tuple[str, ...]:
    with _REGISTRY_LOCK:
        return tuple(sorted(_BACKENDS))


def _resolve(name: str) -> ArrayBackend:
    with _REGISTRY_LOCK:
        entry = _BACKENDS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown backend {name!r}; registered: {available_backends()}")
    if isinstance(entry, ArrayBackend):
        return entry
    instance = entry()
    if not isinstance(instance, ArrayBackend):
        raise TypeError(f"backend factory for {name!r} returned {type(instance)}")
    # Memoize the factory result so repeated set_backend calls share state
    # (notably the buffer pool).
    with _REGISTRY_LOCK:
        _BACKENDS[name] = instance
    return instance


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Activate a backend by registered name (or instance); returns it."""
    resolved = backend if isinstance(backend, ArrayBackend) else _resolve(backend)
    _active.backend = resolved
    return resolved


def get_backend() -> ArrayBackend:
    """The active backend, initialising from ``REPRO_BACKEND`` (default
    ``numpy``) on first use."""
    backend = _active.backend
    if backend is None:
        backend = set_backend(os.environ.get("REPRO_BACKEND", "numpy"))
    return backend


class use_backend:
    """Context manager temporarily activating a backend.

    ::

        with use_backend("numpy"):
            ...
    """

    def __init__(self, backend: str | ArrayBackend) -> None:
        self._target = backend
        self._prev: ArrayBackend | None = None

    def __enter__(self) -> ArrayBackend:
        self._prev = _active.backend
        return set_backend(self._target)

    def __exit__(self, *exc: Any) -> None:
        _active.backend = self._prev


class _OpDispatcher:
    """Attribute access resolves op names against the active backend.

    Import it as ``B`` and call ``B.tensordot(...)``; each call looks up
    the op at call time, so ``set_backend`` switches running code too.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        return get_backend().op(name)

    def __dir__(self) -> Iterator[str]:  # pragma: no cover - REPL sugar
        return iter(get_backend().op_names())

    def __repr__(self) -> str:
        return f"<op dispatcher -> {get_backend().name!r}>"


ops = _OpDispatcher()

# The reference backend ships registered and ready.
register_backend("numpy", NumpyBackend())
