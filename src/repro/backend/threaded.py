"""Threaded backend: thread-pool tiling over the batch axis.

NumPy releases the GIL inside its BLAS/ufunc kernels, so splitting a
large contraction along an axis that is *not* contracted and running the
chunks on a thread pool gives real parallel speedup without any native
code.  This backend overrides exactly the three contraction ops that
dominate inference (``tensordot``, ``matmul``, ``einsum``); everything
else inherits the NumPy reference implementation through the op table.

Splitting is only legal along a *batch* axis — one that appears
unchanged in the output:

* ``tensordot``: axis 0 of ``a`` when it is not in ``axes[0]`` (it is
  then the leading free axis of the result);
* ``matmul``: axis 0 of stacked (ndim >= 3) operands;
* ``einsum``: the leading output subscript, splitting every operand that
  carries it.

Anything else — and anything smaller than ``_MIN_BYTES``, where pool
dispatch would cost more than it saves — falls back to plain NumPy, so
the backend is a drop-in semantic match for :class:`NumpyBackend`
(asserted by the parity tests).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["ThreadedBackend"]

# Below this operand volume the executor round-trip dominates any gain.
_MIN_BYTES = 1 << 20

_EXECUTOR: ThreadPoolExecutor | None = None


def _num_threads() -> int:
    env = os.environ.get("REPRO_THREADS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 2)


def _executor() -> ThreadPoolExecutor:
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = ThreadPoolExecutor(
            max_workers=_num_threads(), thread_name_prefix="repro-backend")
    return _EXECUTOR


def _chunk_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Split range(n) into <= parts contiguous, near-equal chunks."""
    parts = min(parts, n)
    base, extra = divmod(n, parts)
    bounds, start = [], 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _run_chunks(fn, n: int) -> list[np.ndarray]:
    """Map ``fn(start, stop)`` over batch chunks on the shared pool."""
    bounds = _chunk_bounds(n, _num_threads())
    if len(bounds) == 1:
        return [fn(*bounds[0])]
    return list(_executor().map(lambda b: fn(*b), bounds))


class ThreadedBackend(NumpyBackend):
    """NumPy semantics, batch-axis contractions fanned over threads."""

    name = "threaded"


def _normalize_tensordot_axes(a: np.ndarray, b: np.ndarray, axes
                              ) -> tuple[list[int], list[int]]:
    if isinstance(axes, (int, np.integer)):
        return (list(range(a.ndim - int(axes), a.ndim)),
                list(range(int(axes))))
    ax_a, ax_b = axes
    ax_a = [ax_a] if isinstance(ax_a, (int, np.integer)) else list(ax_a)
    ax_b = [ax_b] if isinstance(ax_b, (int, np.integer)) else list(ax_b)
    return ([a.ndim + ax if ax < 0 else ax for ax in ax_a],
            [b.ndim + ax if ax < 0 else ax for ax in ax_b])


@ThreadedBackend.register_op("tensordot")
def _threaded_tensordot(a, b, axes=2):
    a = np.asarray(a)
    b = np.asarray(b)
    ax_a, ax_b = _normalize_tensordot_axes(a, b, axes)
    if (0 in ax_a or a.ndim - len(ax_a) < 1 or a.shape[0] < 2
            or a.nbytes + b.nbytes < _MIN_BYTES):
        return np.tensordot(a, b, axes=(ax_a, ax_b))
    # Axis 0 of `a` is free, hence the leading axis of the result:
    # chunks along it concatenate back exactly.
    parts = _run_chunks(
        lambda lo, hi: np.tensordot(a[lo:hi], b, axes=(ax_a, ax_b)),
        a.shape[0])
    return np.concatenate(parts, axis=0)


@ThreadedBackend.register_op("matmul")
def _threaded_matmul(a, b, **kwargs):
    a = np.asarray(a)
    b = np.asarray(b)
    # Splitting axis 0 of `a` is only the leading axis of the result when
    # `b` contributes no extra batch dims (b.ndim <= a.ndim); equal-rank
    # operands must align on axis 0 (equal, or b broadcasting with 1).
    if (kwargs or a.ndim < 3 or a.shape[0] < 2 or b.ndim > a.ndim
            or (b.ndim == a.ndim and b.shape[0] not in (1, a.shape[0]))
            or a.nbytes + b.nbytes < _MIN_BYTES):
        return np.matmul(a, b, **kwargs)
    if b.ndim == a.ndim and b.shape[0] == a.shape[0]:
        fn = lambda lo, hi: np.matmul(a[lo:hi], b[lo:hi])
    else:
        fn = lambda lo, hi: np.matmul(a[lo:hi], b)
    return np.concatenate(_run_chunks(fn, a.shape[0]), axis=0)


def _parse_einsum(subscripts: str) -> tuple[list[str], str] | None:
    """Explicit-form einsum spec, or None when not splittable."""
    if "->" not in subscripts or "." in subscripts:
        return None
    lhs, out = subscripts.replace(" ", "").split("->")
    terms = lhs.split(",")
    if not out:
        return None
    return terms, out


@ThreadedBackend.register_op("einsum")
def _threaded_einsum(subscripts, *operands, **kwargs):
    parsed = _parse_einsum(subscripts) if isinstance(subscripts, str) else None
    if parsed is None or kwargs:
        return np.einsum(subscripts, *operands, **kwargs)
    terms, out = parsed
    arrays = [np.asarray(op) for op in operands]
    if len(terms) != len(arrays):
        return np.einsum(subscripts, *operands)
    batch = out[0]
    positions = []
    for term, arr in zip(terms, arrays):
        if term.count(batch) > 1:
            return np.einsum(subscripts, *operands)
        positions.append(term.index(batch) if batch in term else None)
    sizes = {arr.shape[p] for arr, p in zip(arrays, positions)
             if p is not None}
    if (len(sizes) != 1 or next(iter(sizes)) < 2
            or sum(a.nbytes for a in arrays) < _MIN_BYTES):
        return np.einsum(subscripts, *operands)
    n = next(iter(sizes))

    def chunk(lo: int, hi: int) -> np.ndarray:
        sliced = []
        for arr, p in zip(arrays, positions):
            if p is None:
                sliced.append(arr)
            else:
                index = [slice(None)] * arr.ndim
                index[p] = slice(lo, hi)
                sliced.append(arr[tuple(index)])
        return np.einsum(subscripts, *sliced)

    return np.concatenate(_run_chunks(chunk, n), axis=0)
