"""JIT-compile fused clusters to C via ``cc`` + ``ctypes``.

A fused cluster's signature (see :mod:`.schedule`) fully determines the
generated C: the expression tree, leaf dtypes and broadcast pattern,
output dtype, rank, and reduction kind.  Three loop shapes are emitted:

* **flat** — all leaves are full-shape contiguous: one ``for`` loop over
  ``n`` elements, trivially vectorizable;
* **strided** — some leaf broadcasts (bias epilogues) or is a view: a
  loop nest of the output rank with per-leaf element strides passed at
  runtime (stride 0 on broadcast axes);
* **reduce** — full reduction to a scalar with a ``double`` accumulator.

Scalar constants are runtime arguments, never baked into the source, so
one compiled kernel serves every ``omega`` the smoother is run with.
Shared objects live under a host-fingerprinted directory
(``REPRO_JIT_CACHE`` or ``~/.cache/repro/jit_kernels/``) next to their
``.c`` source, indexed by a :class:`~repro.backend.tuning.MeasurementCache`
— a second process dlopens the cached ``.so`` without invoking the
compiler, which the round-trip test asserts by counting ``compiles``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..tuning import MeasurementCache, host_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .schedule import _Cluster

__all__ = ["jit_enabled", "get_kernel", "run_kernel", "jit_stats",
           "reset_jit_stats", "jit_cache_dir", "kernel_index"]


# Bumped whenever render_source changes the emitted C for an unchanged
# cluster signature, so stale cached .so files are not reused.
# v2: NaN-propagating max/min reduction steps.
_RENDER_VERSION = 2

_LOCK = threading.RLock()
_kernels: dict[str, "Kernel"] = {}
_failed: set[str] = set()
_stats = {
    "compiles": 0,        # compiler subprocess invocations
    "kernel_loads": 0,    # dlopens of an already-on-disk .so
    "kernel_hits": 0,     # in-process kernel table hits
    "compile_failures": 0,
}
_index_cache: dict[Path, MeasurementCache] = {}


def _find_compiler() -> str | None:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


_COMPILER = _find_compiler()


def jit_enabled() -> bool:
    """True when a C compiler exists and the JIT isn't disabled."""
    if os.environ.get("REPRO_JIT_DISABLE"):
        return False
    return _COMPILER is not None


def jit_cache_dir() -> Path:
    env = os.environ.get("REPRO_JIT_CACHE")
    base = Path(env) if env else Path.home() / ".cache" / "repro" / "jit_kernels"
    return base / host_fingerprint()


def kernel_index() -> MeasurementCache:
    """The on-disk signature -> shared-object index for this cache dir."""
    path = jit_cache_dir() / "index.json"
    with _LOCK:
        idx = _index_cache.get(path)
        if idx is None:
            idx = MeasurementCache(default_path=path)
            _index_cache[path] = idx
        return idx


def jit_stats() -> dict[str, int]:
    with _LOCK:
        return dict(_stats)


def reset_jit_stats() -> None:
    with _LOCK:
        for k in _stats:
            _stats[k] = 0


@dataclass(frozen=True)
class Kernel:
    fn: ctypes._CFuncPtr  # type: ignore[name-defined]
    variant: str          # "flat" | "strided" | "reduce"
    rank: int
    so_path: Path
    _lib: ctypes.CDLL     # keep the dlopen handle alive


# --------------------------------------------------------------------- #
# C rendering
# --------------------------------------------------------------------- #

_UNARY_FUNCS = {"exp": "exp", "log": "log", "sqrt": "sqrt",
                "tanh": "tanh", "floor": "floor"}


def _render_expr(expr: tuple, loads: list[str], t: str, fsuf: str) -> str:
    kind = expr[0]
    if kind == "in":
        return loads[expr[1]]
    if kind == "const":
        return f"(({t})consts[{expr[1]}])"
    args = [_render_expr(c, loads, t, fsuf) for c in expr[1:]]
    if kind == "add":
        return f"({args[0]} + {args[1]})"
    if kind == "sub":
        return f"({args[0]} - {args[1]})"
    if kind == "mul":
        return f"({args[0]} * {args[1]})"
    if kind == "div":
        return f"({args[0]} / {args[1]})"
    if kind == "neg":
        return f"(-{args[0]})"
    if kind == "pow":
        return f"pow{fsuf}({args[0]}, {args[1]})"
    if kind in _UNARY_FUNCS:
        return f"{_UNARY_FUNCS[kind]}{fsuf}({args[0]})"
    if kind == "abs":
        return f"fabs{fsuf}({args[0]})"
    if kind == "sign":
        a = args[0]
        return f"({a} > 0 ? ({t})1 : ({a} < 0 ? ({t})-1 : {a}))"
    if kind == "maximum":
        return f"({args[0]} > {args[1]} ? {args[0]} : {args[1]})"
    if kind == "minimum":
        return f"({args[0]} < {args[1]} ? {args[0]} : {args[1]})"
    if kind == "where":
        return f"({args[0]} != 0 ? {args[1]} : {args[2]})"
    if kind == "clip":
        a, lo, hi = args
        return f"({a} < {lo} ? {lo} : ({a} > {hi} ? {hi} : {a}))"
    if kind == "logaddexp":
        a, b = args
        return (f"(({a} > {b} ? {a} : {b})"
                f" + log1p{fsuf}(exp{fsuf}(-fabs{fsuf}({a} - {b}))))")
    raise NotImplementedError(f"no C rendering for op {kind!r}")


def _leaf_loads(cluster: "_Cluster", variant: str, rank: int,
                t: str) -> list[str]:
    loads = []
    for i, leaf in enumerate(cluster.leaves):
        char = np.dtype(leaf.dtype).char
        ctype = {"f": "float", "d": "double", "?": "unsigned char"}[char]
        if variant in ("flat", "reduce"):
            idx = "j"
        else:
            idx = " + ".join(f"i{d} * st[{i * rank + d}]"
                             for d in range(rank)) or "0"
        load = f"((const {ctype}*)ins[{i}])[{idx}]"
        if char == "?":
            load = f"(({t})({load}))"
        loads.append(load)
    return loads


def render_source(cluster: "_Cluster", variant: str, fname: str,
                  sig: str) -> str:
    t = "float" if cluster.out_dtype.char == "f" else "double"
    fsuf = "f" if t == "float" else ""
    rank = len(cluster.iter_shape)
    loads = _leaf_loads(cluster, variant, rank, t)
    body = _render_expr(cluster.expr, loads, t, fsuf)
    lines = [
        "#include <math.h>",
        "#include <stdint.h>",
        f"/* signature: {sig} */",
    ]
    if variant == "flat":
        lines += [
            f"void {fname}(int64_t n, {t}* restrict out,",
            "        const double* restrict consts,",
            "        void* const* restrict ins) {",
            "    for (int64_t j = 0; j < n; ++j) {",
            f"        out[j] = {body};",
            "    }",
            "}",
        ]
    elif variant == "reduce":
        init = {"sum": "0.0", "mean": "0.0",
                "max": "-INFINITY", "min": "INFINITY"}[cluster.reduce]
        # max/min must propagate NaN like np.max/np.min (and the
        # interpreter fallback): v != v catches NaN, and once acc is NaN
        # no further comparison succeeds, so it sticks.
        step = {"sum": "acc += v;", "mean": "acc += v;",
                "max": "if (v > acc || v != v) acc = v;",
                "min": "if (v < acc || v != v) acc = v;"}[cluster.reduce]
        final = "acc / (double)n" if cluster.reduce == "mean" else "acc"
        lines += [
            f"void {fname}(int64_t n, {t}* restrict out,",
            "        const double* restrict consts,",
            "        void* const* restrict ins) {",
            f"    double acc = {init};",
            "    for (int64_t j = 0; j < n; ++j) {",
            f"        double v = (double)({body});",
            f"        {step}",
            "    }",
            f"    out[0] = ({t})({final});",
            "}",
        ]
    else:  # strided loop nest over the output rank
        lines += [
            f"void {fname}(const int64_t* restrict shape, {t}* restrict out,",
            "        const double* restrict consts,",
            "        void* const* restrict ins,",
            "        const int64_t* restrict st) {",
            "    int64_t oi = 0;",
        ]
        indent = "    "
        for d in range(rank):
            lines.append(f"{indent}for (int64_t i{d} = 0; "
                         f"i{d} < shape[{d}]; ++i{d}) {{")
            indent += "    "
        lines.append(f"{indent}out[oi] = {body};")
        lines.append(f"{indent}++oi;")
        for d in range(rank):
            indent = indent[:-4]
            lines.append(indent + "}")
        lines.append("}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Compile / load / cache
# --------------------------------------------------------------------- #

def _variant_for(cluster: "_Cluster") -> str:
    if cluster.reduce is not None:
        return "reduce"
    if all(l.shape == cluster.iter_shape and l.flags["C_CONTIGUOUS"]
           for l in cluster.leaves):
        return "flat"
    return "strided"


def _load_so(so_path: Path, fname: str, variant: str) -> tuple:
    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, fname)
    i64p = ctypes.POINTER(ctypes.c_int64)
    dp = ctypes.POINTER(ctypes.c_double)
    vpp = ctypes.POINTER(ctypes.c_void_p)
    if variant == "strided":
        fn.argtypes = [i64p, ctypes.c_void_p, dp, vpp, i64p]
    else:
        fn.argtypes = [ctypes.c_int64, ctypes.c_void_p, dp, vpp]
    fn.restype = None
    return fn, lib


def get_kernel(sig: str, cluster: "_Cluster") -> Kernel | None:
    """Return a compiled kernel for ``sig`` (compiling or loading from
    the host cache as needed); ``None`` means use the interpreter."""
    if not jit_enabled():
        return None
    with _LOCK:
        kernel = _kernels.get(sig)
        if kernel is not None:
            _stats["kernel_hits"] += 1
            return kernel
        if sig in _failed:
            return None

        variant = _variant_for(cluster)
        rank = len(cluster.iter_shape)
        key = hashlib.sha1(
            f"v{_RENDER_VERSION}|{sig}".encode()).hexdigest()[:16]
        fname = f"repro_k_{key}"
        cache_dir = jit_cache_dir()
        so_path = cache_dir / f"{fname}.so"
        try:
            if so_path.exists():
                fn, lib = _load_so(so_path, fname, variant)
                _stats["kernel_loads"] += 1
            else:
                source = render_source(cluster, variant, fname, sig)
                cache_dir.mkdir(parents=True, exist_ok=True)
                c_path = cache_dir / f"{fname}.c"
                c_path.write_text(source)
                tmp_so = cache_dir / f"{fname}.so.tmp.{os.getpid()}"
                cmd = [_COMPILER, "-O3", "-std=c99", "-shared", "-fPIC",
                       "-o", str(tmp_so), str(c_path), "-lm"]
                _stats["compiles"] += 1
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"cc failed ({proc.returncode}): {proc.stderr[:500]}")
                os.replace(tmp_so, so_path)
                kernel_index().setdefault(key, {
                    "signature": sig, "so": so_path.name,
                    "variant": variant, "rank": rank,
                })
                fn, lib = _load_so(so_path, fname, variant)
        except (OSError, RuntimeError, NotImplementedError,
                AttributeError):
            _stats["compile_failures"] += 1
            _failed.add(sig)
            return None
        kernel = Kernel(fn=fn, variant=variant, rank=rank,
                        so_path=so_path, _lib=lib)
        _kernels[sig] = kernel
        return kernel


def run_kernel(kernel: Kernel, cluster: "_Cluster") -> np.ndarray:
    n = 1
    for s in cluster.iter_shape:
        n *= s
    out = np.empty(cluster.out_shape, dtype=cluster.out_dtype)
    consts = (ctypes.c_double * max(1, len(cluster.consts)))(
        *cluster.consts)
    leaves = cluster.leaves
    ins = (ctypes.c_void_p * max(1, len(leaves)))(
        *[l.ctypes.data for l in leaves])
    if kernel.variant == "strided":
        rank = kernel.rank
        shape_arr = (ctypes.c_int64 * max(1, rank))(*cluster.iter_shape)
        strides: list[int] = []
        for l in leaves:
            bcast = np.broadcast_to(l, cluster.iter_shape)
            strides.extend(s // l.itemsize for s in bcast.strides)
        st_arr = (ctypes.c_int64 * max(1, len(strides)))(*strides)
        kernel.fn(shape_arr, out.ctypes.data, consts, ins, st_arr)
    else:
        kernel.fn(n, out.ctypes.data, consts, ins)
    return out
