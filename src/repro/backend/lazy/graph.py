"""The lazy op graph: :class:`LazyArray` nodes and recording machinery.

A :class:`LazyArray` is either a *source* (wrapping a concrete NumPy
buffer) or a *pending* node (an op name plus parent references).  Ops
dispatched through the lazy backend append pending nodes instead of
executing; :func:`realize` (called explicitly, or implicitly by
``__array__``/``float()``/item access/any boundary crossing into NumPy,
SciPy, serve or FEM code) hands the graph to the scheduler, which fuses
elementwise/reduce chains into single kernels before executing.

Semantics contract: a realized lazy computation must match the eager
NumPy backend to float tolerance (asserted by the equivalence suite).
Two rules keep mutation semantics eager-equivalent:

* **In-place mutation is a barrier.** ``x[idx] = v``, ``scatter_add``,
  ``copyto`` and ``fill`` first realize every pending node recorded by
  the calling thread, so no pending consumer can observe post-mutation
  values it would not have seen eagerly.
* **Aliasing is preserved.** Sources wrap buffers without copying, and
  ``__getitem__`` wraps NumPy views, so view/mutation aliasing behaves
  exactly as it does eagerly.

The per-thread registry of pending nodes holds weak references only:
dropping the last strong reference to an unrealized node simply discards
the computation, exactly like dropping an unread eager temporary.

**Threading constraint (hard).** The pending registry — and therefore
the mutation barrier — is per-thread.  A buffer mutated on thread A
while thread B still holds un-realized nodes reading that buffer is NOT
flushed by A's barrier, and B's later realization would observe
post-mutation values.  Do not share a buffer across threads while any
thread holds pending consumers of it: ``realize()``/``realize_all()``
on the recording thread before handing a value to another thread.  The
repo's own hot paths obey this — serve workers realize at the forward
boundary and never exchange pending nodes.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Iterable

import numpy as np

__all__ = [
    "LazyArray", "realize", "realize_all", "is_lazy",
    "ELEMENTWISE_OPS", "REDUCE_OPS",
]

# Ops recorded as pending elementwise nodes.  Arity is implied by the
# parent tuple; "where" is ternary, "clip" takes (x, lo, hi).
ELEMENTWISE_OPS = frozenset({
    "add", "sub", "mul", "div", "pow", "neg",
    "exp", "log", "sqrt", "tanh", "abs", "sign", "floor",
    "maximum", "minimum", "where", "clip", "logaddexp",
})

# Ops recorded as pending reduction nodes (extra: axis, keepdims).
REDUCE_OPS = frozenset({"sum", "mean", "max", "min"})


class _PendingRegistry(threading.local):
    """Per-thread weak set of pending nodes (for barrier flushes)."""

    def __init__(self) -> None:
        self.refs: list[weakref.ref] = []


_pending = _PendingRegistry()


def _register_pending(node: "LazyArray") -> None:
    refs = _pending.refs
    refs.append(weakref.ref(node))
    if len(refs) > 256:
        _pending.refs = [r for r in refs if r() is not None]


def realize_all() -> None:
    """Realize every pending node recorded by this thread (a barrier).

    Per-thread only: pending nodes recorded by *other* threads are not
    flushed.  See the module docstring's threading constraint — buffers
    must not be shared across threads while un-realized consumers exist.
    """
    refs, _pending.refs = _pending.refs, []
    for ref in refs:
        node = ref()
        if node is not None and node._buf is None:
            node._realize()


def is_lazy(x: Any) -> bool:
    return isinstance(x, LazyArray)


def realize(x: Any) -> Any:
    """Force a value to a concrete NumPy array (no-op for non-lazy)."""
    if isinstance(x, LazyArray):
        return x._realize()
    return x


def _result_dtype(parents: Iterable[Any]) -> np.dtype:
    args = [p.dtype if isinstance(p, LazyArray) else p for p in parents]
    return np.dtype(np.result_type(*args))


def _result_shape(parents: Iterable[Any]) -> tuple[int, ...]:
    shapes = [p.shape for p in parents if isinstance(p, LazyArray)]
    if not shapes:
        return ()
    return tuple(int(s) for s in np.broadcast_shapes(*shapes))


# Ufuncs NumPy may invoke on mixed ndarray/LazyArray expressions that we
# record instead of executing (populated after the class definition).
_UFUNC_OPS: dict[Any, str] = {}


class LazyArray:
    """A node of the lazy op graph presenting the NumPy-array subset the
    repo's hot paths use (operators, reduce methods, shape metadata)."""

    __slots__ = ("shape", "dtype", "_buf", "_op", "_parents", "_extra",
                 "_consumers", "__weakref__")

    # NumPy defers ufunc calls involving a LazyArray to this hook, so
    # mixed ndarray/LazyArray expressions record instead of erroring.
    __array_priority__ = 1000.0

    def __array_ufunc__(self, ufunc: Any, method: str, *inputs: Any,
                        **kwargs: Any) -> Any:
        op = _UFUNC_OPS.get(ufunc)
        if op is not None and method == "__call__" and not kwargs:
            return LazyArray.elementwise(op, *inputs)
        # Exotic calls (out=, reduce/accumulate, unmapped ufuncs) run
        # eagerly; an out= target is an in-place mutation, hence a
        # barrier (see module docstring).
        out = kwargs.get("out")
        if out is not None:
            realize_all()
            kwargs["out"] = tuple(
                o._writable_buffer() if isinstance(o, LazyArray) else o
                for o in out)
        inputs = tuple(realize(i) for i in inputs)
        return getattr(ufunc, method)(*inputs, **kwargs)

    def __init__(self, *, buf: np.ndarray | None = None,
                 op: str | None = None, parents: tuple = (),
                 shape: tuple[int, ...] | None = None,
                 dtype: Any = None, extra: dict | None = None) -> None:
        self._buf = buf
        self._op = op
        self._parents = parents
        self._extra = extra or {}
        self._consumers = 0
        if buf is not None:
            self.shape = buf.shape
            self.dtype = buf.dtype
        else:
            self.shape = shape
            self.dtype = np.dtype(dtype)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_buffer(buf: np.ndarray) -> "LazyArray":
        """Wrap a concrete array (no copy; aliasing preserved)."""
        return LazyArray(buf=np.asarray(buf))

    @staticmethod
    def record(op: str, parents: tuple, shape: tuple[int, ...],
               dtype: Any, **extra: Any) -> "LazyArray":
        """Append a pending node to the calling thread's graph."""
        node = LazyArray(op=op, parents=parents, shape=shape, dtype=dtype,
                         extra=extra)
        for p in parents:
            if isinstance(p, LazyArray):
                p._consumers += 1
        _register_pending(node)
        return node

    @staticmethod
    def elementwise(op: str, *operands: Any) -> "LazyArray":
        parents = tuple(_as_operand(o) for o in operands)
        dtype = _result_dtype(parents)
        if op == "div" and not np.issubdtype(dtype, np.floating):
            dtype = np.dtype(np.float64)     # true division promotes
        return LazyArray.record(op, parents, _result_shape(parents), dtype)

    def reduce(self, op: str, axis: Any = None,
               keepdims: bool = False) -> "LazyArray":
        if axis is None:
            axes: tuple[int, ...] = tuple(range(self.ndim))
        elif isinstance(axis, (int, np.integer)):
            axes = (int(axis) % max(self.ndim, 1),)
        else:
            axes = tuple(int(a) % self.ndim for a in axis)
        if keepdims:
            shape = tuple(1 if i in axes else s
                          for i, s in enumerate(self.shape))
        else:
            shape = tuple(s for i, s in enumerate(self.shape)
                          if i not in axes)
        dtype = self.dtype
        if op == "sum":
            # Eager np.sum promotes bool/small-int inputs to the platform
            # default int accumulator; recording the input dtype instead
            # would silently overflow on downcast. Ask NumPy directly.
            dtype = np.empty(0, dtype=self.dtype).sum().dtype
        elif op == "mean" and not np.issubdtype(self.dtype, np.floating):
            dtype = np.dtype(np.float64)
        return LazyArray.record(op, (self,), shape, dtype,
                                axis=axes, keepdims=bool(keepdims))

    # ------------------------------------------------------------------ #
    # Realization
    # ------------------------------------------------------------------ #
    def _realize(self) -> np.ndarray:
        if self._buf is None:
            from .schedule import realize_node

            realize_node(self)
        return self._buf

    def _collapse(self, buf: np.ndarray) -> None:
        """Become a source wrapping ``buf`` (called by the scheduler)."""
        self._buf = buf
        self._op = None
        self._parents = ()
        self._extra = {}

    def _writable_buffer(self) -> np.ndarray:
        """Realize for in-place mutation: flush the thread's pending
        graph first so eager observers cannot be bypassed."""
        realize_all()
        buf = self._realize()
        if not buf.flags.writeable:
            buf = buf.copy()
            self._collapse(buf)
        return buf

    def numpy(self) -> np.ndarray:
        """Concrete NumPy array for this node (realizes)."""
        return self._realize()

    def _pool_buffer(self) -> np.ndarray | None:
        """Realized buffer for :class:`~repro.backend.pool.BufferPool`
        recycling; ``None`` (drop, don't force) while pending."""
        return self._buf

    def __array__(self, dtype: Any = None) -> np.ndarray:
        buf = self._realize()
        return buf.astype(dtype) if dtype is not None else buf

    # ------------------------------------------------------------------ #
    # Shape metadata (no realization)
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def T(self) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().T)

    @property
    def flags(self):
        return self._realize().flags

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized object")
        return self.shape[0]

    def __repr__(self) -> str:
        state = "source" if self._buf is not None else f"pending:{self._op}"
        return (f"LazyArray(shape={self.shape}, dtype={self.dtype}, "
                f"{state})")

    # ------------------------------------------------------------------ #
    # Conversions / methods used by the hot paths
    # ------------------------------------------------------------------ #
    def astype(self, dtype: Any, **kwargs: Any) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().astype(dtype, **kwargs))

    def copy(self) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().copy())

    def reshape(self, *shape: Any) -> "LazyArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return LazyArray.from_buffer(self._realize().reshape(shape))

    def ravel(self) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().ravel())

    def flatten(self) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().flatten())

    def transpose(self, *axes: Any) -> "LazyArray":
        if len(axes) == 1 and (axes[0] is None
                               or isinstance(axes[0], (tuple, list))):
            axes = tuple(axes[0]) if axes[0] is not None else ()
        return LazyArray.from_buffer(
            self._realize().transpose(axes if axes else None))

    def squeeze(self, axis: Any = None) -> "LazyArray":
        return LazyArray.from_buffer(self._realize().squeeze(axis))

    def tolist(self) -> list:
        return self._realize().tolist()

    def fill(self, value: float) -> None:
        self._writable_buffer().fill(value)

    def item(self) -> float:
        return self._realize().item()

    def __float__(self) -> float:
        return float(self._realize())

    def __int__(self) -> int:
        return int(self._realize())

    def __bool__(self) -> bool:
        return bool(self._realize())

    # ------------------------------------------------------------------ #
    # Reductions (method form mirrors ndarray)
    # ------------------------------------------------------------------ #
    def sum(self, axis: Any = None, keepdims: bool = False, **kw: Any):
        if kw:
            return self._realize().sum(axis=axis, keepdims=keepdims, **kw)
        return self.reduce("sum", axis=axis, keepdims=keepdims)

    def mean(self, axis: Any = None, keepdims: bool = False, **kw: Any):
        if kw:
            return self._realize().mean(axis=axis, keepdims=keepdims, **kw)
        return self.reduce("mean", axis=axis, keepdims=keepdims)

    def max(self, axis: Any = None, keepdims: bool = False):
        return self.reduce("max", axis=axis, keepdims=keepdims)

    def min(self, axis: Any = None, keepdims: bool = False):
        return self.reduce("min", axis=axis, keepdims=keepdims)

    def var(self, *args: Any, **kwargs: Any):
        return self._realize().var(*args, **kwargs)

    def std(self, *args: Any, **kwargs: Any):
        return self._realize().std(*args, **kwargs)

    def argmax(self, *args: Any, **kwargs: Any):
        return self._realize().argmax(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Arithmetic operators (recorded lazily)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Any):
        return LazyArray.elementwise("add", self, other)

    def __radd__(self, other: Any):
        return LazyArray.elementwise("add", other, self)

    def __sub__(self, other: Any):
        return LazyArray.elementwise("sub", self, other)

    def __rsub__(self, other: Any):
        return LazyArray.elementwise("sub", other, self)

    def __mul__(self, other: Any):
        return LazyArray.elementwise("mul", self, other)

    def __rmul__(self, other: Any):
        return LazyArray.elementwise("mul", other, self)

    def __truediv__(self, other: Any):
        return LazyArray.elementwise("div", self, other)

    def __rtruediv__(self, other: Any):
        return LazyArray.elementwise("div", other, self)

    def __pow__(self, other: Any):
        return LazyArray.elementwise("pow", self, other)

    def __rpow__(self, other: Any):
        return LazyArray.elementwise("pow", other, self)

    def __neg__(self):
        return LazyArray.elementwise("neg", self)

    def __matmul__(self, other: Any):
        return np.matmul(self._realize(), realize(_unwrap(other)))

    def __rmatmul__(self, other: Any):
        return np.matmul(realize(_unwrap(other)), self._realize())

    def __mod__(self, other: Any):
        return self._realize() % realize(_unwrap(other))

    # ------------------------------------------------------------------ #
    # Comparisons and boolean algebra (eager: masks are control flow and
    # indexing inputs, not hot elementwise math)
    # ------------------------------------------------------------------ #
    def _cmp(self, other: Any, op: str) -> Any:
        a = self._realize()
        b = realize(_unwrap(other))
        return getattr(a, op)(b)

    def __eq__(self, other: Any):  # type: ignore[override]
        return self._cmp(other, "__eq__")

    def __ne__(self, other: Any):  # type: ignore[override]
        return self._cmp(other, "__ne__")

    def __lt__(self, other: Any):
        return self._cmp(other, "__lt__")

    def __le__(self, other: Any):
        return self._cmp(other, "__le__")

    def __gt__(self, other: Any):
        return self._cmp(other, "__gt__")

    def __ge__(self, other: Any):
        return self._cmp(other, "__ge__")

    def __and__(self, other: Any):
        return self._cmp(other, "__and__")

    def __or__(self, other: Any):
        return self._cmp(other, "__or__")

    def __xor__(self, other: Any):
        return self._cmp(other, "__xor__")

    def __invert__(self):
        return ~self._realize()

    __hash__ = object.__hash__

    # ------------------------------------------------------------------ #
    # Indexing.  Reads wrap NumPy views (aliasing preserved); writes are
    # barriers (see module docstring).
    # ------------------------------------------------------------------ #
    def __getitem__(self, idx: Any) -> Any:
        out = self._realize()[_realize_index(idx)]
        if isinstance(out, np.ndarray):
            return LazyArray.from_buffer(out)
        return out

    def __setitem__(self, idx: Any, value: Any) -> None:
        buf = self._writable_buffer()
        buf[_realize_index(idx)] = realize(_unwrap(value))


def _unwrap(x: Any) -> Any:
    return x


def _realize_index(idx: Any) -> Any:
    """Realize any lazy arrays used inside an index expression."""
    if isinstance(idx, LazyArray):
        return idx._realize()
    if isinstance(idx, tuple):
        return tuple(realize(i) for i in idx)
    return idx


_UFUNC_OPS.update({
    np.add: "add", np.subtract: "sub", np.multiply: "mul",
    np.true_divide: "div", np.power: "pow", np.negative: "neg",
    np.exp: "exp", np.log: "log", np.sqrt: "sqrt", np.tanh: "tanh",
    np.absolute: "abs", np.sign: "sign", np.floor: "floor",
    np.maximum: "maximum", np.minimum: "minimum",
    np.logaddexp: "logaddexp",
})


def _as_operand(x: Any) -> Any:
    """Normalize an elementwise operand: LazyArray, source wrap, or a
    Python scalar constant."""
    if isinstance(x, LazyArray):
        return x
    if isinstance(x, np.ndarray):
        return LazyArray.from_buffer(x)
    if isinstance(x, (bool, int, float, np.generic)):
        return x
    return LazyArray.from_buffer(np.asarray(x))
