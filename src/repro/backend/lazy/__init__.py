"""Lazy op-graph backend: record, fuse, JIT-compile, realize.

Public surface::

    from repro.backend.lazy import LazyBackend, LazyArray
    from repro.backend.lazy import realize, realize_all, is_lazy
    from repro.backend.lazy import lazy_stats, reset_lazy_stats

``lazy_stats()`` merges the scheduler's fusion counters with the JIT
cache's compile/load counters — the observability hook the determinism
and cache round-trip tests (and ``bench_lazy_fusion``) are built on.
"""

from .graph import LazyArray, is_lazy, realize, realize_all
from .ops_lazy import LazyBackend
from .schedule import schedule_stats as lazy_stats
from .schedule import reset_schedule_stats as reset_lazy_stats
from .cjit import jit_cache_dir, jit_enabled, kernel_index

__all__ = [
    "LazyBackend", "LazyArray", "realize", "realize_all", "is_lazy",
    "lazy_stats", "reset_lazy_stats",
    "jit_cache_dir", "jit_enabled", "kernel_index",
]
