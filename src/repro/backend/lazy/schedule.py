"""Schedule the lazy graph: fuse chains, pick an executor, run.

``realize_node`` turns one pending :class:`~.graph.LazyArray` into a
concrete buffer.  The only pending node kinds are elementwise and reduce
ops (everything else executes eagerly at record time), so scheduling is
cluster extraction: starting from the node, pending elementwise parents
with a single consumer are inlined into one fused expression; shared or
already-realized parents become kernel *inputs*.  A reduce node fuses
its whole elementwise input chain, so e.g. ``sqrt(sum(x*x))`` runs as
one pass over ``x``.

Each fused cluster carries a canonical **signature** — the expression
DAG shape, leaf dtypes and broadcast pattern, but *not* shapes or
constant values — so the same chain recorded anywhere (any iteration,
any process) maps to the same compiled kernel.  Clusters whose output
clears ``REPRO_JIT_MIN_SIZE`` are lowered to generated C via
:mod:`.cjit` when a compiler is present; everything else (and every
cluster when no compiler exists) runs on the NumPy interpreter, which
evaluates the same expression tree op by op — semantically identical,
just without the memory-traffic win.
"""

from __future__ import annotations

import os
import threading
from typing import Any

import numpy as np

from .graph import ELEMENTWISE_OPS, LazyArray, REDUCE_OPS

__all__ = ["realize_node", "schedule_stats", "reset_schedule_stats",
           "MIN_JIT_SIZE"]


def _min_jit_size() -> int:
    try:
        return int(os.environ.get("REPRO_JIT_MIN_SIZE", "4096"))
    except ValueError:  # pragma: no cover - env misconfiguration
        return 4096


MIN_JIT_SIZE = _min_jit_size()

_STATS_LOCK = threading.Lock()
_stats = {
    "clusters": 0,          # fused clusters executed (any executor)
    "fused_ops": 0,         # elementwise/reduce ops folded into clusters
    "jit_runs": 0,          # clusters executed by a compiled C kernel
    "interpreted_runs": 0,  # clusters executed by the NumPy interpreter
}
_recent_signatures: list[str] = []


def schedule_stats() -> dict[str, Any]:
    """Snapshot of scheduler counters plus the JIT cache's."""
    from . import cjit

    with _STATS_LOCK:
        out = dict(_stats)
        out["recent_signatures"] = list(_recent_signatures[-32:])
    out.update(cjit.jit_stats())
    return out


def reset_schedule_stats() -> None:
    from . import cjit

    with _STATS_LOCK:
        for k in _stats:
            _stats[k] = 0
        _recent_signatures.clear()
    cjit.reset_jit_stats()


# --------------------------------------------------------------------- #
# Cluster extraction
# --------------------------------------------------------------------- #

class _Cluster:
    """One fused computation: an expression DAG over concrete leaves."""

    __slots__ = ("expr", "leaves", "consts", "reduce", "axis", "keepdims",
                 "iter_shape", "out_shape", "out_dtype", "n_ops")

    def __init__(self) -> None:
        self.expr: tuple | None = None
        self.leaves: list[np.ndarray] = []
        self.consts: list[float] = []
        self.reduce: str | None = None
        self.axis: tuple[int, ...] = ()
        self.keepdims = False
        self.iter_shape: tuple[int, ...] = ()
        self.out_shape: tuple[int, ...] = ()
        self.out_dtype: np.dtype = np.dtype(np.float64)
        self.n_ops = 0

    def signature(self) -> str:
        """Canonical kernel identity: structure, not shapes or values."""
        leaf_sig = ",".join(
            f"{np.dtype(l.dtype).char}"
            f"{'F' if (l.shape == self.iter_shape and l.flags['C_CONTIGUOUS']) else 'B'}"
            for l in self.leaves)
        red = (f"|red:{self.reduce}" if self.reduce else "")
        return (f"{_expr_repr(self.expr)}|in:{leaf_sig}"
                f"|out:{np.dtype(self.out_dtype).char}"
                f"|rank:{len(self.iter_shape)}{red}")


def _expr_repr(expr: tuple) -> str:
    kind = expr[0]
    if kind in ("in", "const"):
        return f"{kind}{expr[1]}"
    return f"{kind}({','.join(_expr_repr(c) for c in expr[1:])})"


def _extract(node: LazyArray) -> _Cluster:
    """Build the fused cluster rooted at ``node``.

    Shared (multi-consumer) pending parents and reduce parents are
    realized recursively and enter as leaves; single-consumer pending
    elementwise parents are inlined.
    """
    cluster = _Cluster()
    leaf_index: dict[int, int] = {}

    def leaf(buf: np.ndarray) -> tuple:
        key = id(buf)
        idx = leaf_index.get(key)
        if idx is None:
            idx = len(cluster.leaves)
            cluster.leaves.append(buf)
            leaf_index[key] = idx
        return ("in", idx)

    def build(p: Any) -> tuple:
        if not isinstance(p, LazyArray):
            cluster.consts.append(float(p))
            return ("const", len(cluster.consts) - 1)
        if p._buf is not None:
            return leaf(p._buf)
        if p._op in ELEMENTWISE_OPS and p._consumers <= 1:
            cluster.n_ops += 1
            return (p._op,) + tuple(build(q) for q in p._parents)
        return leaf(realize_node(p))

    if node._op in REDUCE_OPS:
        (src,) = node._parents
        cluster.reduce = node._op
        cluster.axis = node._extra["axis"]
        cluster.keepdims = node._extra["keepdims"]
        cluster.n_ops += 1
        if isinstance(src, LazyArray):
            cluster.iter_shape = src.shape
            if src._buf is None and src._op in ELEMENTWISE_OPS \
                    and src._consumers <= 1:
                cluster.n_ops += 1
                cluster.expr = (src._op,) + tuple(
                    build(q) for q in src._parents)
            else:
                cluster.expr = build(src)
        else:  # pragma: no cover - reduce of a scalar
            cluster.expr = build(src)
    else:
        cluster.iter_shape = node.shape
        cluster.n_ops += 1
        cluster.expr = (node._op,) + tuple(build(q) for q in node._parents)
    cluster.out_shape = node.shape
    cluster.out_dtype = np.dtype(node.dtype)
    return cluster


# --------------------------------------------------------------------- #
# NumPy interpreter
# --------------------------------------------------------------------- #

_NUMPY_OPS = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "div": np.true_divide, "pow": np.power, "neg": np.negative,
    "exp": np.exp, "log": np.log, "sqrt": np.sqrt, "tanh": np.tanh,
    "abs": np.abs, "sign": np.sign, "floor": np.floor,
    "maximum": np.maximum, "minimum": np.minimum,
    "where": lambda c, a, b: np.where(c, a, b),
    "clip": lambda a, lo, hi: np.clip(a, lo, hi),
    "logaddexp": np.logaddexp,
}

# Ufuncs that accept ``out=`` — eligible for scratch-buffer reuse below.
_OUT_OPS = frozenset(_NUMPY_OPS) - {"where", "clip"}


def _interpret(cluster: _Cluster) -> np.ndarray:
    """Evaluate the expression tree with NumPy, reusing temporaries.

    ``ev`` returns ``(value, owned)`` where ``owned`` marks arrays this
    evaluation allocated (never leaves).  An op whose ufunc takes
    ``out=`` writes into an owned operand when shape and dtype already
    match exactly — a fused chain then streams through one or two
    scratch buffers instead of allocating per op, which is what lets the
    no-compiler fallback keep pace with (or beat) eager NumPy.
    """
    def ev(expr: tuple) -> tuple[Any, bool]:
        kind = expr[0]
        if kind == "in":
            return cluster.leaves[expr[1]], False
        if kind == "const":
            return cluster.consts[expr[1]], False
        vals = []
        owned_flags = []
        for child in expr[1:]:
            v, o = ev(child)
            vals.append(v)
            owned_flags.append(o)
        fn = _NUMPY_OPS[kind]
        if kind in _OUT_OPS:
            shape = np.broadcast_shapes(*(np.shape(v) for v in vals))
            dtype = np.result_type(*vals)
            for v, o in zip(vals, owned_flags):
                if o and isinstance(v, np.ndarray) \
                        and v.shape == shape and v.dtype == dtype:
                    return fn(*vals, out=v), True
        return fn(*vals), True

    out, _ = ev(cluster.expr)
    if cluster.reduce:
        fn = {"sum": np.sum, "mean": np.mean,
              "max": np.max, "min": np.min}[cluster.reduce]
        # cluster.axis is always a concrete tuple (record time expands
        # axis=None to every dim), so pass it through verbatim: axis=()
        # is eagerly the identity, not a full reduction.
        out = fn(out, axis=cluster.axis, keepdims=cluster.keepdims)
    out = np.asarray(out)
    if out.dtype != cluster.out_dtype:
        out = out.astype(cluster.out_dtype)
    if out.shape != cluster.out_shape:
        out = np.broadcast_to(out, cluster.out_shape).copy()
    return out


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #

def _jit_eligible(cluster: _Cluster) -> bool:
    from . import cjit

    if not cjit.jit_enabled():
        return False
    if cluster.out_dtype.char not in ("f", "d"):
        return False
    n = 1
    for s in cluster.iter_shape:
        n *= s
    if n < MIN_JIT_SIZE or len(cluster.iter_shape) > 8:
        return False
    if cluster.reduce is not None:
        # C reductions are full reductions to a scalar over flat
        # contiguous leaves only.
        if cluster.keepdims or set(cluster.axis) != set(
                range(len(cluster.iter_shape))):
            return False
        for l in cluster.leaves:
            if l.shape != cluster.iter_shape \
                    or not l.flags["C_CONTIGUOUS"]:
                return False
    for l in cluster.leaves:
        c = np.dtype(l.dtype).char
        if c not in ("f", "d", "?"):
            return False
        if c in ("f", "d") and np.dtype(l.dtype) != cluster.out_dtype:
            return False            # mixed precision: interpreter
        try:
            np.broadcast_shapes(l.shape, cluster.iter_shape)
        except ValueError:  # pragma: no cover - record-time guarantee
            return False
        if np.broadcast_shapes(l.shape, cluster.iter_shape) \
                != cluster.iter_shape:
            return False
    return True


def _execute(cluster: _Cluster) -> np.ndarray | None:
    """Try the C path; ``None`` means fall back to the interpreter."""
    from . import cjit

    kernel = cjit.get_kernel(cluster.signature(), cluster)
    if kernel is None:
        return None
    return cjit.run_kernel(kernel, cluster)


def realize_node(node: LazyArray) -> np.ndarray:
    """Realize one pending node (and, transitively, what it needs)."""
    if node._buf is not None:
        return node._buf
    cluster = _extract(node)
    out: np.ndarray | None = None
    if _jit_eligible(cluster):
        out = _execute(cluster)
    if out is not None:
        with _STATS_LOCK:
            _stats["jit_runs"] += 1
    else:
        out = _interpret(cluster)
        with _STATS_LOCK:
            _stats["interpreted_runs"] += 1
    with _STATS_LOCK:
        _stats["clusters"] += 1
        _stats["fused_ops"] += cluster.n_ops
        _recent_signatures.append(cluster.signature())
        if len(_recent_signatures) > 256:
            del _recent_signatures[:128]
    node._collapse(out)
    return out
