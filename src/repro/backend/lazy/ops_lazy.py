"""The ``"lazy"`` backend: the op table that records instead of runs.

:class:`LazyBackend` subclasses :class:`~repro.backend.numpy_backend.
NumpyBackend` and overrides three op families:

* **elementwise / reduce ops** append pending :class:`~.graph.LazyArray`
  nodes — this is where fusion opportunity is captured;
* **forced ops** (contractions, shape ops, constructors) realize their
  inputs, run the NumPy implementation, and wrap floating results as
  lazy *sources* so the downstream elementwise chain keeps recording;
* **mutation ops** (``copyto``, ``scatter_add``) are barriers: they
  flush the thread's pending graph first so eager-observable semantics
  are preserved (see :mod:`.graph`).

Everything not overridden inherits the NumPy op verbatim; those ops
still accept :class:`LazyArray` inputs because ``np.asarray`` realizes
through ``__array__``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..numpy_backend import NumpyBackend
from .graph import LazyArray, _realize_index, realize, realize_all

__all__ = ["LazyBackend"]


class LazyBackend(NumpyBackend):
    """Records the op graph; fuses and executes on realization."""

    name = "lazy"


def _concrete(x: Any) -> Any:
    """Realize lazy values (recursing into op-argument containers)."""
    if isinstance(x, LazyArray):
        return x._realize()
    if isinstance(x, (list, tuple)):
        return type(x)(_concrete(e) for e in x)
    return x


def _wrap(out: Any) -> Any:
    """Wrap floating ndarray results as lazy sources so downstream
    elementwise chains record; everything else stays concrete."""
    if isinstance(out, np.ndarray) and out.dtype.kind == "f":
        return LazyArray.from_buffer(out)
    return out


def _forced(np_fn: Callable, wrap: bool = False) -> Callable:
    """An op executed eagerly on realized inputs."""
    def op(*args: Any, **kwargs: Any) -> Any:
        out = np_fn(*(_concrete(a) for a in args),
                    **{k: _concrete(v) for k, v in kwargs.items()})
        if wrap and "out" not in kwargs:
            return _wrap(out)
        return out
    op.__name__ = f"lazy_forced_{np_fn.__name__}"
    return op


def _ew(op: str, np_fn: Callable, arity: int) -> Callable:
    """An elementwise op recorded as a pending graph node.

    Exotic call forms (``out=`` kwargs, ``clip`` with ``None`` bounds,
    one-argument ``where``) fall back to eager execution.
    """
    def fn(*args: Any, **kwargs: Any) -> Any:
        if kwargs or len(args) != arity or any(a is None for a in args):
            return np_fn(*(_concrete(a) for a in args),
                         **{k: _concrete(v) for k, v in kwargs.items()})
        return LazyArray.elementwise(op, *args)
    fn.__name__ = f"lazy_{op}"
    return fn


def _red(op: str, np_fn: Callable) -> Callable:
    def fn(a: Any, axis: Any = None, keepdims: bool = False,
           **kwargs: Any) -> Any:
        if kwargs or not isinstance(a, (LazyArray, np.ndarray)):
            return np_fn(_concrete(a), axis=axis, keepdims=keepdims,
                         **{k: _concrete(v) for k, v in kwargs.items()})
        node = a if isinstance(a, LazyArray) else LazyArray.from_buffer(a)
        return node.reduce(op, axis=axis, keepdims=keepdims)
    fn.__name__ = f"lazy_{op}"
    return fn


def _asarray(a: Any, dtype: Any = None, **kwargs: Any) -> Any:
    if isinstance(a, LazyArray) and not kwargs:
        if dtype is None or np.dtype(dtype) == a.dtype:
            return a
        return LazyArray.from_buffer(a._realize().astype(dtype))
    return _wrap(np.asarray(_concrete(a), dtype=dtype, **kwargs))


def _like(alloc: Callable, fill: bool = False) -> Callable:
    """``*_like`` constructors read shape/dtype off the graph node
    without forcing a pending prototype."""
    if fill:
        def fn(a: Any, value: Any, dtype: Any = None, **kw: Any) -> Any:
            if isinstance(a, LazyArray) and not kw:
                return _wrap(alloc(a.shape, _concrete(value),
                                   dtype=dtype or a.dtype))
            return _wrap(np.full_like(_concrete(a), _concrete(value),
                                      dtype=dtype, **kw))
    else:
        np_like = {np.zeros: np.zeros_like, np.ones: np.ones_like,
                   np.empty: np.empty_like}[alloc]

        def fn(a: Any, dtype: Any = None, **kw: Any) -> Any:
            if isinstance(a, LazyArray) and not kw:
                return _wrap(alloc(a.shape, dtype=dtype or a.dtype))
            return _wrap(np_like(_concrete(a), dtype=dtype, **kw))
    return fn


def _copyto(dst: Any, src: Any, **kwargs: Any) -> None:
    # Mutation barrier: pending nodes must not observe the new contents.
    if isinstance(dst, LazyArray):
        np.copyto(dst._writable_buffer(), _concrete(src), **kwargs)
        return
    realize_all()
    np.copyto(dst, _concrete(src), **kwargs)


def _scatter_add(target: Any, idx: Any, values: Any) -> Any:
    if isinstance(target, LazyArray):
        buf = target._writable_buffer()   # flushes the pending graph
        np.add.at(buf, _realize_index(idx), _concrete(values))
        return target
    realize_all()
    np.add.at(target, _realize_index(idx), _concrete(values))
    return target


LazyBackend.register_ops({
    # Constructors / conversion: eager allocation, lazily wrapped.
    "asarray": _asarray,
    "ascontiguousarray": _forced(np.ascontiguousarray, wrap=True),
    "zeros": _forced(np.zeros, wrap=True),
    "ones": _forced(np.ones, wrap=True),
    "empty": _forced(np.empty, wrap=True),
    "full": _forced(np.full, wrap=True),
    "zeros_like": _like(np.zeros),
    "ones_like": _like(np.ones),
    "empty_like": _like(np.empty),
    "full_like": _like(np.full, fill=True),
    "arange": _forced(np.arange, wrap=True),
    "linspace": _forced(np.linspace, wrap=True),
    "copyto": _copyto,
    # Elementwise math: recorded, fused at realize.
    "exp": _ew("exp", np.exp, 1),
    "log": _ew("log", np.log, 1),
    "logaddexp": _ew("logaddexp", np.logaddexp, 2),
    "sqrt": _ew("sqrt", np.sqrt, 1),
    "tanh": _ew("tanh", np.tanh, 1),
    "sign": _ew("sign", np.sign, 1),
    "abs": _ew("abs", np.abs, 1),
    "floor": _ew("floor", np.floor, 1),
    "maximum": _ew("maximum", np.maximum, 2),
    "minimum": _ew("minimum", np.minimum, 2),
    "clip": _ew("clip", np.clip, 3),
    "where": _ew("where", np.where, 3),
    # Contractions: forced (outputs seed the next lazy chain).
    "matmul": _forced(np.matmul, wrap=True),
    "dot": _forced(np.dot, wrap=True),
    "tensordot": _forced(np.tensordot, wrap=True),
    "einsum": _forced(np.einsum, wrap=True),
    "outer": _forced(np.outer, wrap=True),
    "norm": _forced(np.linalg.norm, wrap=True),
    # Shape manipulation: forced.
    "pad": _forced(np.pad, wrap=True),
    "moveaxis": _forced(np.moveaxis, wrap=True),
    "swapaxes": _forced(np.swapaxes, wrap=True),
    "transpose": _forced(np.transpose, wrap=True),
    "expand_dims": _forced(np.expand_dims, wrap=True),
    "broadcast_to": _forced(np.broadcast_to, wrap=True),
    "concatenate": _forced(np.concatenate, wrap=True),
    "stack": _forced(np.stack, wrap=True),
    "split": _forced(np.split),
    "flip": _forced(np.flip, wrap=True),
    "take": _forced(np.take, wrap=True),
    # Conv planner / ctypes consumers need the raw strided view.
    "sliding_window_view": _forced(
        np.lib.stride_tricks.sliding_window_view),
    # Reductions / predicates.
    "sum": _red("sum", np.sum),
    "mean": _red("mean", np.mean),
    "max": _red("max", np.max),
    "min": _red("min", np.min),
    "var": _forced(np.var),
    "std": _forced(np.std),
    "cumsum": _forced(np.cumsum),
    "argsort": _forced(np.argsort),
    "allclose": _forced(np.allclose),
    "any": _forced(np.any),
    "all": _forced(np.all),
    # Indexed updates (mutation barrier).
    "scatter_add": _scatter_add,
})
