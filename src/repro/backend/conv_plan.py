"""Planning conv engine: choose *how* to execute each convolution.

The N-d convolution dominates every epoch (``bench_fig2_epoch_time``),
and the best execution strategy depends on the (shape, kernel, stride)
signature:

* **per-offset tensordot** — ``k^d`` GEMMs of shape ``(N*So, Cin) @
  (Cin, Cout)``; peak memory stays O(input).  Wins for big kernels, tiny
  channel counts and megavoxel fields where the patch matrix would not
  fit.
* **im2col/GEMM** — one patch-matrix copy followed by a single
  ``(N*So, Cin*k^d) @ (Cin*k^d, Cout)`` GEMM.  Wins for the small-kernel
  /many-channel signatures of the U-Net trunk, where ``k^d`` separate
  thin GEMMs leave BLAS underfed.

``plan_conv`` maps a :class:`ConvSignature` to a :class:`ConvPlan` once
and memoizes it, so the per-call planning cost in the training loop is a
dict lookup.  The im2col scratch (the one large short-lived buffer) comes
from the active backend's :class:`~repro.backend.pool.BufferPool`.

``REPRO_CONV_PLAN`` (or :func:`set_conv_plan_mode`) forces ``im2col`` /
``tensordot`` globally — used by the parity tests to drive both engines
over identical inputs.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from itertools import product

import numpy as np

from .registry import get_backend, ops as B

__all__ = [
    "ConvSignature", "ConvPlan", "plan_conv", "clear_plan_cache",
    "plan_cache_info", "set_conv_plan_mode", "get_conv_plan_mode",
    "run_conv_forward", "run_conv_backward",
]

# Heuristic thresholds (see _decide): taps = prod(kernel).
IM2COL_MAX_TAPS = 64            # above: too many offsets, patch blows up
IM2COL_MIN_GEMM_COLS = 16       # below: Cin*taps GEMM too thin to pay for the copy
IM2COL_THIN_GEMM_COLS = 32      # at/below: per-offset GEMMs are so thin that
#                                 im2col wins even for non-resident patches
IM2COL_CACHE_PATCH_BYTES = 384 << 10  # patch must stay cache-resident (384 KiB)
#                                     unless the thin-GEMM rescue applies
IM2COL_MAX_PATCH_BYTES = 1 << 28    # 256 MiB absolute patch-matrix ceiling

_VALID_MODES = ("auto", "im2col", "tensordot")
_mode = os.environ.get("REPRO_CONV_PLAN", "auto")
if _mode not in _VALID_MODES:  # pragma: no cover - env misconfiguration
    _mode = "auto"

_CACHE_LOCK = threading.Lock()
_PLAN_CACHE: dict[tuple, "ConvPlan"] = {}
_cache_hits = 0
_cache_misses = 0


def set_conv_plan_mode(mode: str) -> None:
    """Force a conv path globally: 'auto' (default), 'im2col', 'tensordot'."""
    global _mode
    if mode not in _VALID_MODES:
        raise ValueError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
    _mode = mode


def get_conv_plan_mode() -> str:
    return _mode


def clear_plan_cache() -> None:
    global _cache_hits, _cache_misses
    with _CACHE_LOCK:
        _PLAN_CACHE.clear()
        _cache_hits = _cache_misses = 0


def plan_cache_info() -> dict[str, int]:
    with _CACHE_LOCK:
        return {"hits": _cache_hits, "misses": _cache_misses,
                "size": len(_PLAN_CACHE)}


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConvSignature:
    """Everything the planner needs to know about one conv call."""

    x_shape: tuple[int, ...]      # unpadded input (N, Cin, *spatial)
    w_shape: tuple[int, ...]      # (Cout, Cin, *kernel)
    stride: tuple[int, ...]
    padding: tuple[int, ...]
    dtype: str

    @property
    def kernel(self) -> tuple[int, ...]:
        return self.w_shape[2:]

    @property
    def taps(self) -> int:
        return math.prod(self.kernel)

    @property
    def padded_spatial(self) -> tuple[int, ...]:
        return tuple(s + 2 * p for s, p in zip(self.x_shape[2:], self.padding))

    @property
    def out_spatial(self) -> tuple[int, ...]:
        return tuple((s - k) // st + 1 for s, k, st in
                     zip(self.padded_spatial, self.kernel, self.stride))

    @property
    def patch_bytes(self) -> int:
        n, cin = self.x_shape[0], self.w_shape[1]
        itemsize = np.dtype(self.dtype).itemsize
        return n * math.prod(self.out_spatial) * cin * self.taps * itemsize


@dataclass(frozen=True)
class ConvPlan:
    """A memoized execution decision for one conv signature."""

    signature: ConvSignature
    path: str                     # 'im2col' | 'tensordot'
    reason: str


def _decide(sig: ConvSignature, mode: str) -> tuple[str, str]:
    if mode != "auto":
        return mode, f"forced by mode={mode!r}"
    taps = sig.taps
    cin = sig.w_shape[1]
    if taps == 1:
        return "tensordot", "1x1 kernel is already a single GEMM"
    if taps > IM2COL_MAX_TAPS:
        return "tensordot", f"kernel taps {taps} > {IM2COL_MAX_TAPS}"
    if cin * taps < IM2COL_MIN_GEMM_COLS:
        return "tensordot", (
            f"GEMM width Cin*taps={cin * taps} < {IM2COL_MIN_GEMM_COLS}")
    if sig.patch_bytes > IM2COL_MAX_PATCH_BYTES:
        return "tensordot", (
            f"patch matrix {sig.patch_bytes >> 20} MiB exceeds ceiling")
    if (sig.patch_bytes > IM2COL_CACHE_PATCH_BYTES
            and cin * taps > IM2COL_THIN_GEMM_COLS):
        # The patch copy leaves cache and the per-offset GEMMs are wide
        # enough to feed BLAS — the copy would be pure overhead.
        return "tensordot", (
            f"patch matrix {sig.patch_bytes >> 10} KiB not cache-resident "
            f"and GEMM width {cin * taps} is BLAS-friendly")
    return "im2col", (
        f"small kernel ({taps} taps), GEMM width {cin * taps}, "
        f"patch {sig.patch_bytes >> 10} KiB")


def plan_conv(x_shape, w_shape, stride, padding, dtype) -> ConvPlan:
    """Return the (memoized) execution plan for a conv signature."""
    global _cache_hits, _cache_misses
    sig = ConvSignature(tuple(x_shape), tuple(w_shape), tuple(stride),
                        tuple(padding), np.dtype(dtype).str)
    mode = _mode
    key = (sig, mode)
    with _CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _cache_hits += 1
            return plan
        _cache_misses += 1
    path, reason = _decide(sig, mode)
    plan = ConvPlan(signature=sig, path=path, reason=reason)
    with _CACHE_LOCK:
        _PLAN_CACHE[key] = plan
    return plan


# --------------------------------------------------------------------- #
# Execution engines.  ``xp`` is the already-padded input (N, Cin, *Sp);
# both engines return the channels-first output (N, Cout, *So) and must
# agree numerically (asserted by the parity tests).
# --------------------------------------------------------------------- #

def _offset_slices(offset, out_spatial, stride):
    return tuple(slice(o, o + (so - 1) * st + 1, st)
                 for o, so, st in zip(offset, out_spatial, stride))


def _forward_tensordot(xp, w, stride, out_spatial):
    n = xp.shape[0]
    cout = w.shape[0]
    kernel = w.shape[2:]
    # Accumulate in channels-last layout so each offset is one GEMM.
    acc = B.zeros((n, *out_spatial, cout), dtype=xp.dtype)
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        xs = xp[(slice(None), slice(None)) + sl]        # (N, Cin, *So)
        wo = w[(slice(None), slice(None)) + offset]      # (Cout, Cin)
        acc += B.tensordot(xs, wo, axes=([1], [1]))      # (N, *So, Cout)
    return B.moveaxis(acc, -1, 1)


def _strided_windows(xp, kernel, stride, nd):
    """Strided window view (N, Cin, *So, *K) of the padded input."""
    win = B.sliding_window_view(xp, kernel, axis=tuple(range(2, 2 + nd)))
    if any(st > 1 for st in stride):
        win = win[(slice(None), slice(None))
                  + tuple(slice(None, None, st) for st in stride)]
    return win


def _forward_im2col(xp, w, stride, out_spatial):
    nd = xp.ndim - 2
    n, cin = xp.shape[:2]
    cout = w.shape[0]
    kernel = w.shape[2:]
    taps = math.prod(kernel)
    win = _strided_windows(xp, kernel, stride, nd)
    # (N, *So, Cin, *K): one contiguous copy into a pooled patch matrix.
    perm = (0,) + tuple(range(2, 2 + nd)) + (1,) + tuple(range(2 + nd, 2 + 2 * nd))
    patches = win.transpose(perm)
    rows = n * math.prod(out_spatial)
    cols = cin * taps
    pool = get_backend().pool
    mat = pool.acquire((rows, cols), xp.dtype)
    B.copyto(mat.reshape(patches.shape), patches)
    out = B.matmul(mat, w.reshape(cout, cols).T)         # (rows, Cout)
    pool.release(mat)
    return B.moveaxis(out.reshape((n,) + tuple(out_spatial) + (cout,)), -1, 1)


def run_conv_forward(plan: ConvPlan, xp, w, stride, out_spatial):
    """Execute the planned forward pass on a padded input."""
    if plan.path == "im2col":
        return _forward_im2col(xp, w, stride, out_spatial)
    return _forward_tensordot(xp, w, stride, out_spatial)


# --------------------------------------------------------------------- #
def _backward_tensordot(xp, w, gmoved, stride, out_spatial):
    nd = len(out_spatial)
    kernel = w.shape[2:]
    dxp = B.zeros_like(xp)
    dw = B.zeros_like(w)
    contract_axes = [0] + list(range(1, 1 + nd))          # N + spatial of gmoved
    xs_axes = [0] + list(range(2, 2 + nd))                # N + spatial of xs
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        idx = (slice(None), slice(None)) + sl
        xs = xp[idx]
        wo = w[(slice(None), slice(None)) + offset]
        dw[(slice(None), slice(None)) + offset] = B.tensordot(
            gmoved, xs, axes=(contract_axes, xs_axes))
        dxs = B.tensordot(gmoved, wo, axes=([nd + 1], [0]))
        dxp[idx] += B.moveaxis(dxs, -1, 1)
    return dxp, dw


def _backward_im2col(xp, w, gmoved, stride, out_spatial):
    nd = len(out_spatial)
    n, cin = xp.shape[:2]
    cout = w.shape[0]
    kernel = w.shape[2:]
    taps = math.prod(kernel)
    rows = n * math.prod(out_spatial)
    cols = cin * taps
    win = _strided_windows(xp, kernel, stride, nd)        # (N, Cin, *So, *K)

    # dW in one contraction over batch+spatial — the im2col GEMM of the
    # backward pass (tensordot materializes the patch matrix internally).
    dw = B.tensordot(
        gmoved, win,
        axes=(tuple(range(0, 1 + nd)), (0,) + tuple(range(2, 2 + nd)))
    ).reshape(w.shape)                                    # (Cout, Cin, *K)

    # dX: one big GEMM into a pooled column buffer, then col2im scatter.
    pool = get_backend().pool
    dcols = pool.acquire((rows, cols), xp.dtype)
    B.matmul(gmoved.reshape(rows, cout), w.reshape(cout, cols), out=dcols)
    dpat = B.moveaxis(
        dcols.reshape((n,) + tuple(out_spatial) + (cin,) + tuple(kernel)),
        1 + nd, 1)                                        # (N, Cin, *So, *K)
    dxp = B.zeros_like(xp)
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        dxp[(slice(None), slice(None)) + sl] += dpat[
            (slice(None), slice(None)) + (slice(None),) * nd + offset]
    pool.release(dcols)
    return dxp, dw


def run_conv_backward(plan: ConvPlan, xp, w, gmoved, stride, out_spatial):
    """Execute the planned backward pass; returns ``(dxp, dw)``."""
    if plan.path == "im2col":
        return _backward_im2col(xp, w, gmoved, stride, out_spatial)
    return _backward_tensordot(xp, w, gmoved, stride, out_spatial)
