"""Planning conv engine: choose *how* to execute each convolution.

The N-d convolution dominates every epoch (``bench_fig2_epoch_time``),
and the best execution strategy depends on the (shape, kernel, stride)
signature:

* **per-offset tensordot** — ``k^d`` GEMMs of shape ``(N*So, Cin) @
  (Cin, Cout)``; peak memory stays O(input).  Wins for big kernels, tiny
  channel counts and megavoxel fields where the patch matrix would not
  fit.
* **im2col/GEMM** — one patch-matrix copy followed by a single
  ``(N*So, Cin*k^d) @ (Cin*k^d, Cout)`` GEMM.  Wins for the small-kernel
  /many-channel signatures of the U-Net trunk, where ``k^d`` separate
  thin GEMMs leave BLAS underfed.

``plan_conv`` maps a :class:`ConvSignature` to a :class:`ConvPlan` once
and memoizes it, so the per-call planning cost in the training loop is a
dict lookup.  The im2col scratch (the one large short-lived buffer) comes
from the active backend's :class:`~repro.backend.pool.BufferPool`.

``REPRO_CONV_PLAN`` (or :func:`set_conv_plan_mode`) forces ``im2col`` /
``tensordot`` globally — used by the parity tests to drive both engines
over identical inputs.

**Measured autotuning** (mode ``autotune``): the heuristic thresholds
above encode one host's cache sizes and BLAS behaviour.  In autotune mode
the planner instead *times both engines* on first sight of a signature
(synthetic data of exactly that shape, warm-up plus best-of-N) and locks
in the measured winner.  Decisions are persisted to a JSON table keyed by
a host fingerprint (``REPRO_AUTOTUNE_CACHE`` or
``~/.cache/repro/conv_autotune.json``), so a server restart — or the next
training run — skips re-timing entirely.  Signatures too large to time
safely fall back to the heuristic and are recorded as such, so they are
not re-examined either.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass
from itertools import product
from pathlib import Path

import numpy as np

from .registry import get_backend, ops as B
from .tuning import MeasurementCache, host_fingerprint

__all__ = [
    "ConvSignature", "ConvPlan", "plan_conv", "clear_plan_cache",
    "plan_cache_info", "set_conv_plan_mode", "get_conv_plan_mode",
    "run_conv_forward", "run_conv_backward",
    "ConvTransposePlan", "plan_conv_transpose",
    "run_conv_transpose_forward", "run_conv_transpose_backward",
    "set_conv_transpose_mode", "get_conv_transpose_mode",
    "host_fingerprint", "autotune_cache_path", "set_autotune_cache_path",
    "autotune_table", "clear_autotune_table", "save_autotune_table",
]

# Heuristic thresholds (see _decide): taps = prod(kernel).
IM2COL_MAX_TAPS = 64            # above: too many offsets, patch blows up
IM2COL_MIN_GEMM_COLS = 16       # below: Cin*taps GEMM too thin to pay for the copy
IM2COL_THIN_GEMM_COLS = 32      # at/below: per-offset GEMMs are so thin that
#                                 im2col wins even for non-resident patches
IM2COL_CACHE_PATCH_BYTES = 384 << 10  # patch must stay cache-resident (384 KiB)
#                                     unless the thin-GEMM rescue applies
IM2COL_MAX_PATCH_BYTES = 1 << 28    # 256 MiB absolute patch-matrix ceiling

_VALID_MODES = ("auto", "im2col", "tensordot", "autotune")
_mode = os.environ.get("REPRO_CONV_PLAN", "auto")
if _mode not in _VALID_MODES:  # pragma: no cover - env misconfiguration
    _mode = "auto"

_CACHE_LOCK = threading.Lock()
_PLAN_CACHE: dict[tuple, "ConvPlan"] = {}
_cache_hits = 0
_cache_misses = 0


def set_conv_plan_mode(mode: str) -> None:
    """Force a conv path globally: 'auto' (default), 'im2col', 'tensordot'."""
    global _mode
    if mode not in _VALID_MODES:
        raise ValueError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
    _mode = mode


def get_conv_plan_mode() -> str:
    return _mode


def clear_plan_cache() -> None:
    global _cache_hits, _cache_misses
    with _CACHE_LOCK:
        _PLAN_CACHE.clear()
        _cache_hits = _cache_misses = 0


def plan_cache_info() -> dict[str, int]:
    with _CACHE_LOCK:
        return {"hits": _cache_hits, "misses": _cache_misses,
                "size": len(_PLAN_CACHE)}


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConvSignature:
    """Everything the planner needs to know about one conv call."""

    x_shape: tuple[int, ...]      # unpadded input (N, Cin, *spatial)
    w_shape: tuple[int, ...]      # (Cout, Cin, *kernel)
    stride: tuple[int, ...]
    padding: tuple[int, ...]
    dtype: str

    @property
    def kernel(self) -> tuple[int, ...]:
        return self.w_shape[2:]

    @property
    def taps(self) -> int:
        return math.prod(self.kernel)

    @property
    def padded_spatial(self) -> tuple[int, ...]:
        return tuple(s + 2 * p for s, p in zip(self.x_shape[2:], self.padding))

    @property
    def out_spatial(self) -> tuple[int, ...]:
        return tuple((s - k) // st + 1 for s, k, st in
                     zip(self.padded_spatial, self.kernel, self.stride))

    @property
    def patch_bytes(self) -> int:
        n, cin = self.x_shape[0], self.w_shape[1]
        itemsize = np.dtype(self.dtype).itemsize
        return n * math.prod(self.out_spatial) * cin * self.taps * itemsize


@dataclass(frozen=True)
class ConvPlan:
    """A memoized execution decision for one conv signature.

    ``path`` drives the forward pass.  ``backward_path`` may differ: the
    autotuner times the two directions separately (the backward's
    col2im scatter and dW contraction have their own crossover points);
    heuristic and forced modes keep both directions on one engine.
    """

    signature: ConvSignature
    path: str                     # 'im2col' | 'tensordot'
    reason: str
    backward_path: str | None = None  # None: same engine as forward


def _decide(sig: ConvSignature, mode: str) -> tuple[str, str]:
    if mode != "auto":
        return mode, f"forced by mode={mode!r}"
    taps = sig.taps
    cin = sig.w_shape[1]
    if taps == 1:
        return "tensordot", "1x1 kernel is already a single GEMM"
    if taps > IM2COL_MAX_TAPS:
        return "tensordot", f"kernel taps {taps} > {IM2COL_MAX_TAPS}"
    if cin * taps < IM2COL_MIN_GEMM_COLS:
        return "tensordot", (
            f"GEMM width Cin*taps={cin * taps} < {IM2COL_MIN_GEMM_COLS}")
    if sig.patch_bytes > IM2COL_MAX_PATCH_BYTES:
        return "tensordot", (
            f"patch matrix {sig.patch_bytes >> 20} MiB exceeds ceiling")
    if (sig.patch_bytes > IM2COL_CACHE_PATCH_BYTES
            and cin * taps > IM2COL_THIN_GEMM_COLS):
        # The patch copy leaves cache and the per-offset GEMMs are wide
        # enough to feed BLAS — the copy would be pure overhead.
        return "tensordot", (
            f"patch matrix {sig.patch_bytes >> 10} KiB not cache-resident "
            f"and GEMM width {cin * taps} is BLAS-friendly")
    return "im2col", (
        f"small kernel ({taps} taps), GEMM width {cin * taps}, "
        f"patch {sig.patch_bytes >> 10} KiB")


# --------------------------------------------------------------------- #
# Measured autotuning: time both engines once per signature, persist the
# winner keyed by host fingerprint.
# --------------------------------------------------------------------- #

AUTOTUNE_REPEATS = 3                  # best-of-N timing per engine
AUTOTUNE_MAX_BYTES = 1 << 27          # skip timing above 128 MiB of input:
#                                       a single probe would thrash memory,
#                                       and the heuristic is reliable there

_MEASURE_LOCK = threading.Lock()      # serializes engine timing only:
#                                       concurrent probes would perturb
#                                       each other's measurements, but
#                                       table lookups for already-known
#                                       signatures must never wait on a
#                                       seconds-long timing run

# The persisted measured-decision table: host-fingerprinted JSON managed
# by the shared autotuner seam (repro.backend.tuning).  Memoized plans
# may reference stale decisions when the table moves, hence the
# invalidation hook.
_MEASUREMENTS = MeasurementCache(
    default_path=Path.home() / ".cache" / "repro" / "conv_autotune.json",
    env_var="REPRO_AUTOTUNE_CACHE",
    on_invalidate=lambda: clear_plan_cache())


def autotune_cache_path() -> Path:
    """Where the measured decision table lives on disk."""
    return _MEASUREMENTS.path()


def set_autotune_cache_path(path: str | os.PathLike | None) -> None:
    """Override the persisted-table location (None restores the default)."""
    _MEASUREMENTS.set_path(path)


def save_autotune_table() -> Path | None:
    """Persist pending measured decisions (atomic write); returns the
    path written, or None when nothing changed."""
    return _MEASUREMENTS.save()


def autotune_table() -> dict[str, dict]:
    """Snapshot of this host's measured decisions (sig key -> record)."""
    return _MEASUREMENTS.snapshot()


def clear_autotune_table(memory_only: bool = False) -> None:
    """Drop the in-memory table (and, unless ``memory_only``, the file).

    ``memory_only=True`` simulates a process restart: the next autotuned
    plan reloads the persisted table from disk.
    """
    _MEASUREMENTS.clear(memory_only=memory_only)


def _sig_key(sig: ConvSignature) -> str:
    return (f"x{sig.x_shape}w{sig.w_shape}"
            f"s{sig.stride}p{sig.padding}{sig.dtype}")


def _time_engines(sig: ConvSignature) -> dict[str, float]:
    """Best-of-N wall times of both engines, both directions.

    Forward and backward are timed separately because the plan serves
    both: a forward win (e.g. im2col's single fat GEMM) can coexist with
    a backward loss (its col2im scatter), and training epochs are
    backward-heavy while serving never runs one.
    """
    rng = np.random.default_rng(0)
    dtype = np.dtype(sig.dtype)
    n, cin = sig.x_shape[:2]
    cout = sig.w_shape[0]
    xp = rng.standard_normal((n, cin) + sig.padded_spatial).astype(dtype)
    w = rng.standard_normal(sig.w_shape).astype(dtype)
    out_spatial = sig.out_spatial
    gmoved = rng.standard_normal((n,) + out_spatial + (cout,)).astype(dtype)

    def best(run) -> float:
        run()                                           # warm-up
        t = math.inf
        for _ in range(AUTOTUNE_REPEATS):
            t0 = time.perf_counter()
            run()
            t = min(t, time.perf_counter() - t0)
        return t

    return {
        "fwd_tensordot": best(
            lambda: _forward_tensordot(xp, w, sig.stride, out_spatial)),
        "fwd_im2col": best(
            lambda: _forward_im2col(xp, w, sig.stride, out_spatial)),
        "bwd_tensordot": best(
            lambda: _backward_tensordot(xp, w, gmoved, sig.stride,
                                        out_spatial)),
        "bwd_im2col": best(
            lambda: _backward_im2col(xp, w, gmoved, sig.stride,
                                     out_spatial)),
    }


def _decide_autotune(sig: ConvSignature) -> tuple[str, str, str | None]:
    key = _sig_key(sig)
    rec = _MEASUREMENTS.get(key)
    if rec is None:
        rec = _measure_signature(sig, key)
    if rec.get("measured"):
        t = rec["times"]
        reason = (
            f"autotuned: fwd td {t['fwd_tensordot'] * 1e3:.2f} / i2c "
            f"{t['fwd_im2col'] * 1e3:.2f} ms, bwd td "
            f"{t['bwd_tensordot'] * 1e3:.2f} / i2c "
            f"{t['bwd_im2col'] * 1e3:.2f} ms")
        return rec["path"], reason, rec.get("backward_path")
    return rec["path"], f"autotune fallback: {rec['reason']}", None


def _measure_signature(sig: ConvSignature, key: str) -> dict:
    heuristic_path, heuristic_reason = _decide(sig, "auto")
    input_bytes = (math.prod(sig.x_shape[:2]) * math.prod(sig.padded_spatial)
                   * np.dtype(sig.dtype).itemsize)
    if sig.taps == 1 or input_bytes > AUTOTUNE_MAX_BYTES \
            or sig.patch_bytes > IM2COL_MAX_PATCH_BYTES:
        # Not worth (or not safe) to probe: trust the heuristic, but
        # record the decision so restarts skip this signature too.
        return _MEASUREMENTS.setdefault(
            key, {"path": heuristic_path, "measured": False,
                  "reason": heuristic_reason})
    with _MEASURE_LOCK:
        # Re-check after acquiring: another thread may have finished
        # measuring this signature while we waited for its probe.
        existing = _MEASUREMENTS.get(key)
        if existing is not None:
            return existing
        times = _time_engines(sig)
    return _MEASUREMENTS.setdefault(key, {
        "path": ("im2col" if times["fwd_im2col"]
                 < times["fwd_tensordot"] else "tensordot"),
        "backward_path": ("im2col" if times["bwd_im2col"]
                          < times["bwd_tensordot"]
                          else "tensordot"),
        "measured": True, "times": times,
        "heuristic": heuristic_path,
    })


def plan_conv(x_shape, w_shape, stride, padding, dtype) -> ConvPlan:
    """Return the (memoized) execution plan for a conv signature."""
    global _cache_hits, _cache_misses
    sig = ConvSignature(tuple(x_shape), tuple(w_shape), tuple(stride),
                        tuple(padding), np.dtype(dtype).str)
    mode = _mode
    key = (sig, mode)
    with _CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _cache_hits += 1
            return plan
        _cache_misses += 1
    backward_path = None
    if mode == "autotune":
        path, reason, backward_path = _decide_autotune(sig)
    else:
        path, reason = _decide(sig, mode)
    plan = ConvPlan(signature=sig, path=path, reason=reason,
                    backward_path=backward_path)
    with _CACHE_LOCK:
        _PLAN_CACHE[key] = plan
    return plan


# --------------------------------------------------------------------- #
# Execution engines.  ``xp`` is the already-padded input (N, Cin, *Sp);
# both engines return the channels-first output (N, Cout, *So) and must
# agree numerically (asserted by the parity tests).
# --------------------------------------------------------------------- #

def _offset_slices(offset, out_spatial, stride):
    return tuple(slice(o, o + (so - 1) * st + 1, st)
                 for o, so, st in zip(offset, out_spatial, stride))


def _forward_tensordot(xp, w, stride, out_spatial):
    n = xp.shape[0]
    cout = w.shape[0]
    kernel = w.shape[2:]
    # Accumulate in channels-last layout so each offset is one GEMM.
    acc = B.zeros((n, *out_spatial, cout), dtype=xp.dtype)
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        xs = xp[(slice(None), slice(None)) + sl]        # (N, Cin, *So)
        wo = w[(slice(None), slice(None)) + offset]      # (Cout, Cin)
        acc += B.tensordot(xs, wo, axes=([1], [1]))      # (N, *So, Cout)
    return B.moveaxis(acc, -1, 1)


def _strided_windows(xp, kernel, stride, nd):
    """Strided window view (N, Cin, *So, *K) of the padded input."""
    win = B.sliding_window_view(xp, kernel, axis=tuple(range(2, 2 + nd)))
    if any(st > 1 for st in stride):
        win = win[(slice(None), slice(None))
                  + tuple(slice(None, None, st) for st in stride)]
    return win


def _forward_im2col(xp, w, stride, out_spatial):
    nd = xp.ndim - 2
    n, cin = xp.shape[:2]
    cout = w.shape[0]
    kernel = w.shape[2:]
    taps = math.prod(kernel)
    win = _strided_windows(xp, kernel, stride, nd)
    # (N, *So, Cin, *K): one contiguous copy into a pooled patch matrix.
    perm = (0,) + tuple(range(2, 2 + nd)) + (1,) + tuple(range(2 + nd, 2 + 2 * nd))
    patches = win.transpose(perm)
    rows = n * math.prod(out_spatial)
    cols = cin * taps
    pool = get_backend().pool
    mat = pool.acquire((rows, cols), xp.dtype)
    B.copyto(mat.reshape(patches.shape), patches)
    out = B.matmul(mat, w.reshape(cout, cols).T)         # (rows, Cout)
    pool.release(mat)
    return B.moveaxis(out.reshape((n,) + tuple(out_spatial) + (cout,)), -1, 1)


def run_conv_forward(plan: ConvPlan, xp, w, stride, out_spatial):
    """Execute the planned forward pass on a padded input."""
    if plan.path == "im2col":
        return _forward_im2col(xp, w, stride, out_spatial)
    return _forward_tensordot(xp, w, stride, out_spatial)


# --------------------------------------------------------------------- #
def _backward_tensordot(xp, w, gmoved, stride, out_spatial):
    nd = len(out_spatial)
    kernel = w.shape[2:]
    dxp = B.zeros_like(xp)
    dw = B.zeros_like(w)
    contract_axes = [0] + list(range(1, 1 + nd))          # N + spatial of gmoved
    xs_axes = [0] + list(range(2, 2 + nd))                # N + spatial of xs
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        idx = (slice(None), slice(None)) + sl
        xs = xp[idx]
        wo = w[(slice(None), slice(None)) + offset]
        dw[(slice(None), slice(None)) + offset] = B.tensordot(
            gmoved, xs, axes=(contract_axes, xs_axes))
        dxs = B.tensordot(gmoved, wo, axes=([nd + 1], [0]))
        dxp[idx] += B.moveaxis(dxs, -1, 1)
    return dxp, dw


def _backward_im2col(xp, w, gmoved, stride, out_spatial):
    nd = len(out_spatial)
    n, cin = xp.shape[:2]
    cout = w.shape[0]
    kernel = w.shape[2:]
    taps = math.prod(kernel)
    rows = n * math.prod(out_spatial)
    cols = cin * taps
    win = _strided_windows(xp, kernel, stride, nd)        # (N, Cin, *So, *K)

    # dW in one contraction over batch+spatial — the im2col GEMM of the
    # backward pass (tensordot materializes the patch matrix internally).
    dw = B.tensordot(
        gmoved, win,
        axes=(tuple(range(0, 1 + nd)), (0,) + tuple(range(2, 2 + nd)))
    ).reshape(w.shape)                                    # (Cout, Cin, *K)

    # dX: one big GEMM into a pooled column buffer, then col2im scatter.
    pool = get_backend().pool
    dcols = pool.acquire((rows, cols), xp.dtype)
    B.matmul(gmoved.reshape(rows, cout), w.reshape(cout, cols), out=dcols)
    dpat = B.moveaxis(
        dcols.reshape((n,) + tuple(out_spatial) + (cin,) + tuple(kernel)),
        1 + nd, 1)                                        # (N, Cin, *So, *K)
    dxp = B.zeros_like(xp)
    for offset in product(*(range(k) for k in kernel)):
        sl = _offset_slices(offset, out_spatial, stride)
        dxp[(slice(None), slice(None)) + sl] += dpat[
            (slice(None), slice(None)) + (slice(None),) * nd + offset]
    pool.release(dcols)
    return dxp, dw


def run_conv_backward(plan: ConvPlan, xp, w, gmoved, stride, out_spatial):
    """Execute the planned backward pass; returns ``(dxp, dw)``."""
    path = plan.backward_path or plan.path
    if path == "im2col":
        return _backward_im2col(xp, w, gmoved, stride, out_spatial)
    return _backward_tensordot(xp, w, gmoved, stride, out_spatial)


# --------------------------------------------------------------------- #
# Transposed convolution: output-scatter GEMM plan.
#
# The composed path (zero-stuff by the stride, pad, flip, stride-1 conv)
# materializes a zero-stuffed input ~stride^d times the original and
# then convolves mostly-zero data.  The scatter plan skips it entirely:
# contract input channels against the whole kernel once (or per tap),
# then scatter-add each tap's contribution into the output at offset
# slices of step ``stride`` — writes touch exactly the nonzero work.
#
# ``REPRO_CONVT_PLAN`` / :func:`set_conv_transpose_mode` selects
# ``scatter`` (default) or ``compose`` (the original differentiable
# composition, kept as the parity reference).
# --------------------------------------------------------------------- #

_CONVT_MODES = ("scatter", "compose")
_convt_mode = os.environ.get("REPRO_CONVT_PLAN", "scatter")
if _convt_mode not in _CONVT_MODES:  # pragma: no cover - env misconfig
    _convt_mode = "scatter"


def set_conv_transpose_mode(mode: str) -> None:
    """Force the conv-transpose path: 'scatter' (default) or 'compose'."""
    global _convt_mode
    if mode not in _CONVT_MODES:
        raise ValueError(f"mode must be one of {_CONVT_MODES}, got {mode!r}")
    _convt_mode = mode


def get_conv_transpose_mode() -> str:
    return _convt_mode


@dataclass(frozen=True)
class ConvTransposePlan:
    """Memoized execution decision for one conv-transpose signature.

    ``path`` selects how the channel contraction is staged:

    * ``'gemm'`` — one ``tensordot(x, w)`` over Cin producing the full
      ``(N, *S, Cout, *K)`` tap tensor, then k^d scatter-adds.  Fastest
      when the tap tensor fits comfortably in memory.
    * ``'tap'``  — k^d thin per-tap GEMMs, O(input) peak memory; the
      megavoxel-safe choice when the tap tensor would exceed the same
      patch ceiling the im2col planner respects.
    """

    x_shape: tuple[int, ...]
    w_shape: tuple[int, ...]
    stride: tuple[int, ...]
    padding: tuple[int, ...]
    output_padding: tuple[int, ...]
    path: str
    reason: str


def plan_conv_transpose(x_shape, w_shape, stride, padding, output_padding,
                        dtype) -> ConvTransposePlan:
    """Return the (memoized) scatter plan for a conv-transpose call."""
    global _cache_hits, _cache_misses
    key = ("convT", tuple(x_shape), tuple(w_shape), tuple(stride),
           tuple(padding), tuple(output_padding), np.dtype(dtype).str)
    with _CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _cache_hits += 1
            return plan
        _cache_misses += 1
    n = x_shape[0]
    cout = w_shape[1]
    taps = math.prod(w_shape[2:])
    tap_bytes = (n * math.prod(x_shape[2:]) * cout * taps
                 * np.dtype(dtype).itemsize)
    if tap_bytes > IM2COL_MAX_PATCH_BYTES:
        path, reason = "tap", (
            f"tap tensor {tap_bytes >> 20} MiB exceeds patch ceiling")
    else:
        path, reason = "gemm", (
            f"tap tensor {tap_bytes >> 10} KiB, single contraction")
    plan = ConvTransposePlan(
        x_shape=tuple(x_shape), w_shape=tuple(w_shape),
        stride=tuple(stride), padding=tuple(padding),
        output_padding=tuple(output_padding), path=path, reason=reason)
    with _CACHE_LOCK:
        _PLAN_CACHE[key] = plan
    return plan


def _convt_full_spatial(plan: ConvTransposePlan) -> tuple[int, ...]:
    """Scatter extent before the padding crop: (S-1)*st + k + op."""
    return tuple((s - 1) * st + k + op for s, st, k, op in zip(
        plan.x_shape[2:], plan.stride, plan.w_shape[2:],
        plan.output_padding))


def _convt_scatter_slices(offset, spatial, stride):
    """Output slices hit by one kernel tap: start=offset, step=stride."""
    return tuple(slice(o, o + (s - 1) * st + 1, st)
                 for o, s, st in zip(offset, spatial, stride))


def run_conv_transpose_forward(plan: ConvTransposePlan, x, w):
    """Output-scatter transposed convolution: returns (N, Cout, *So).

    ``x`` is (N, Cin, *S), ``w`` is (Cin, Cout, *K).  No zero-stuffed
    intermediate exists at any point.
    """
    from .lazy.graph import realize

    x, w = realize(x), realize(w)
    nd = x.ndim - 2
    n = x.shape[0]
    cout = w.shape[1]
    kernel = w.shape[2:]
    spatial = x.shape[2:]
    full = _convt_full_spatial(plan)
    # Accumulate channels-last so each tap scatter is one strided block.
    acc = np.zeros((n,) + full + (cout,), dtype=x.dtype)
    if plan.path == "gemm":
        cols = realize(B.tensordot(x, w, axes=([1], [0])))
        # cols: (N, *S, Cout, *K)
        for offset in product(*(range(k) for k in kernel)):
            sl = _convt_scatter_slices(offset, spatial, plan.stride)
            acc[(slice(None),) + sl] += cols[(Ellipsis,) + offset]
    else:
        for offset in product(*(range(k) for k in kernel)):
            wo = w[(slice(None), slice(None)) + offset]     # (Cin, Cout)
            tap = realize(B.tensordot(x, wo, axes=([1], [0])))
            sl = _convt_scatter_slices(offset, spatial, plan.stride)
            acc[(slice(None),) + sl] += tap                  # (N, *S, Cout)
    out = np.moveaxis(acc, -1, 1)
    crop = tuple(slice(p, fs - p) for p, fs in zip(plan.padding, full))
    return np.ascontiguousarray(out[(slice(None), slice(None)) + crop])


def run_conv_transpose_backward(plan: ConvTransposePlan, x, w, grad):
    """Gradients of the scatter forward; returns ``(dx, dw)``.

    The data gradient of a transposed convolution is a *forward*
    convolution of the (re-padded) output gradient with the same weights
    — so it reuses the planned conv engines.  The weight gradient is one
    contraction of the input against strided windows of the padded
    gradient.
    """
    from .lazy.graph import realize

    x, w, grad = realize(x), realize(w), realize(grad)
    nd = x.ndim - 2
    kernel = w.shape[2:]
    spatial = x.shape[2:]
    if any(plan.padding):
        padw = ((0, 0), (0, 0)) + tuple((p, p) for p in plan.padding)
        gp = np.pad(grad, padw)
    else:
        gp = grad
    # dx: conv of gp with w (layout (Cin, Cout, *K) is exactly the conv
    # weight layout with Cout_conv = Cin), same stride, zero padding.
    conv_plan_ = plan_conv(gp.shape, w.shape, plan.stride,
                           (0,) * nd, grad.dtype)
    dx = realize(run_conv_forward(conv_plan_, gp, w, plan.stride, spatial))
    # dw[ci, co, o] = sum_{n,i} x[n,ci,i] * gp[n,co, st*i + o].
    win = _strided_windows(gp, kernel, plan.stride, nd)  # (N, Cout, *S, *K)
    axes = ((0,) + tuple(range(2, 2 + nd)),
            (0,) + tuple(range(2, 2 + nd)))
    dw = realize(B.tensordot(x, win, axes=axes))         # (Cin, Cout, *K)
    return dx, dw
