"""Host-fingerprinted measure-and-persist cache — the autotuner seam.

Measured performance decisions (which conv engine wins, which JIT kernel
was compiled) are only valid on the machine that measured them, so every
persisted record is partitioned under a digest of the performance-relevant
host facts.  :class:`MeasurementCache` owns the mechanics every measuring
subsystem needs and none should reimplement:

* a JSON table on disk, ``{"hosts": {<fingerprint>: {<key>: <record>}}}``,
* an in-memory slice for this host, loaded lazily and saved atomically,
* a path override seam (constructor env var / :meth:`set_path`) so tests
  and deployments can isolate tables,
* ``clear(memory_only=True)`` to simulate a process restart.

The conv autotuner (:mod:`repro.backend.conv_plan`) and the lazy
backend's JIT kernel index (:mod:`repro.backend.lazy.cjit`) are both
instances of this class over different default paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = ["host_fingerprint", "MeasurementCache"]


def host_fingerprint() -> str:
    """Stable identity of the measuring environment.

    Measured winners transfer between runs on the same machine but not
    between machines, so persisted tables are partitioned by a digest of
    the performance-relevant host facts.
    """
    facts = (platform.machine(), platform.system(), platform.processor(),
             str(os.cpu_count()), platform.python_version(),
             np.__version__)
    return hashlib.sha1("|".join(facts).encode()).hexdigest()[:12]


class MeasurementCache:
    """A host-partitioned key -> record JSON table with atomic persistence.

    Parameters
    ----------
    default_path:
        Where the table lives when neither the env var nor
        :meth:`set_path` overrides it.
    env_var:
        Environment variable consulted for a path override (optional).
    on_invalidate:
        Called whenever the table location changes or is cleared, so the
        owner can drop derived caches (e.g. memoized plans).
    """

    def __init__(self, default_path: Path,
                 env_var: str | None = None,
                 on_invalidate: Callable[[], None] | None = None) -> None:
        self._default_path = Path(default_path)
        self._env_var = env_var
        self._on_invalidate = on_invalidate
        self._lock = threading.RLock()
        self._path_override: Path | None = None
        self._host: dict[str, dict] | None = None
        self._dirty = False

    # ------------------------------------------------------------------ #
    # Location
    # ------------------------------------------------------------------ #
    def path(self) -> Path:
        """Where the persisted table lives on disk."""
        if self._path_override is not None:
            return self._path_override
        if self._env_var:
            env = os.environ.get(self._env_var)
            if env:
                return Path(env)
        return self._default_path

    def set_path(self, path: str | os.PathLike | None) -> None:
        """Override the table location (``None`` restores the default).

        Drops the in-memory slice so the next access reloads from the new
        location, and fires ``on_invalidate`` so derived caches follow.
        """
        with self._lock:
            self._path_override = None if path is None else Path(path)
            self._host = None
            self._dirty = False
        if self._on_invalidate is not None:
            self._on_invalidate()

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def _load(self) -> dict[str, dict]:
        """This host's slice of the persisted table (lock held)."""
        if self._host is None:
            table: dict[str, dict] = {}
            try:
                data = json.loads(self.path().read_text())
                table = data.get("hosts", {}).get(host_fingerprint(), {})
                if not isinstance(table, dict):  # pragma: no cover - corrupt
                    table = {}
            except (OSError, ValueError):
                table = {}
            self._host = table
        return self._host

    def get(self, key: str) -> dict | None:
        with self._lock:
            return self._load().get(key)

    def setdefault(self, key: str, record: dict[str, Any]) -> dict:
        """Insert ``record`` unless ``key`` already has one; returns the
        winning record and persists when an insert happened."""
        with self._lock:
            existing = self._load().setdefault(key, record)
            if existing is record:
                self._dirty = True
        if existing is record:
            self.save()
        return existing

    def snapshot(self) -> dict[str, dict]:
        """Copy of this host's records (key -> record)."""
        with self._lock:
            return dict(self._load())

    def clear(self, memory_only: bool = False) -> None:
        """Drop the in-memory slice (and, unless ``memory_only``, the
        file).  ``memory_only=True`` simulates a process restart."""
        with self._lock:
            self._host = None
            self._dirty = False
            if not memory_only:
                try:
                    self.path().unlink()
                except OSError:
                    pass
        if self._on_invalidate is not None:
            self._on_invalidate()

    def save(self) -> Path | None:
        """Persist pending records (read-merge-write, atomic replace);
        returns the path written, or ``None`` when nothing changed."""
        with self._lock:
            if not self._dirty or self._host is None:
                return None
            path = self.path()
            try:
                data = json.loads(path.read_text())
                if not isinstance(data, dict):  # pragma: no cover - corrupt
                    data = {}
            except (OSError, ValueError):
                data = {}
            hosts = data.setdefault("hosts", {})
            merged = dict(hosts.get(host_fingerprint(), {}))
            merged.update(self._host)
            hosts[host_fingerprint()] = merged
            data["version"] = 1
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
            os.replace(tmp, path)
            self._dirty = False
            return path
