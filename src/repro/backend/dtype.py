"""Default floating-point dtype policy.

Tensors constructed from Python data, parameter initialisers and pooled
scratch buffers all consult this policy, so switching the whole stack to
float64 (e.g. for gradchecks or FEM consistency studies) is one call:

    from repro.backend import set_default_dtype, dtype_scope

    set_default_dtype("float64")          # sticky default
    with dtype_scope("float64"):          # or scoped
        ...

Overrides are tracked per thread (so concurrent training loops can pin
different precisions without racing each other), but a thread that never
set its own policy inherits the most recent ``set_default_dtype`` value
rather than resetting to float32.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "dtype_scope"]

_ALLOWED = (np.float32, np.float64)

# Last process-wide default; new threads initialise from this.
_global_default: type = np.float32


class _DtypePolicy(threading.local):
    def __init__(self) -> None:
        self.dtype = _global_default


_policy = _DtypePolicy()


def _coerce(dtype: Any) -> type:
    dt = np.dtype(dtype).type
    if dt not in _ALLOWED:
        raise ValueError(
            f"default dtype must be float32 or float64, got {np.dtype(dtype)}")
    return dt


def get_default_dtype() -> type:
    """The scalar type used when constructing tensors from Python data."""
    return _policy.dtype


def set_default_dtype(dtype: Any) -> None:
    """Set the default floating dtype (``float32`` or ``float64``).

    Applies to the calling thread immediately and becomes the starting
    default for threads created afterwards.
    """
    global _global_default
    _global_default = _coerce(dtype)
    _policy.dtype = _global_default


@contextmanager
def dtype_scope(dtype: Any) -> Iterator[type]:
    """Temporarily switch the default dtype within a ``with`` block."""
    prev = _policy.dtype
    _policy.dtype = _coerce(dtype)
    try:
        yield _policy.dtype
    finally:
        _policy.dtype = prev
