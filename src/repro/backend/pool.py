"""Pooled buffer allocator for hot-loop scratch arrays.

Megavoxel training spends a surprising fraction of its time in
``malloc``/page-faulting freshly allocated NumPy buffers that live for one
conv call and die.  :class:`BufferPool` keeps released buffers on
per-(shape, dtype) free lists so steady-state training loops recycle the
same few large allocations instead of churning the allocator.

Usage contract:

* ``acquire`` returns an *uninitialised* buffer (like ``np.empty``); call
  sites must fully overwrite it.
* ``release`` hands a buffer back.  Only release arrays that own their
  memory and that no live view aliases — the pool will hand the same
  memory to the next ``acquire``.
* Never release an array you return to a caller (or a view of one).

The pool is bounded: releases beyond ``max_bytes`` are dropped (the GC
reclaims them), so it cannot grow without limit on pathological shape
sequences.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BufferPool", "PoolStats"]


@dataclass
class PoolStats:
    """Cumulative accounting of one :class:`BufferPool`.

    ``bytes_recycled`` totals the bytes of every pool hit (allocation
    traffic the pool absorbed); ``high_water_bytes`` is the largest
    ``bytes_pooled`` ever parked — the number to size ``max_bytes``
    from.  Both are surfaced by the autograd profiler report.
    """

    hits: int = 0
    misses: int = 0
    releases: int = 0
    evictions: int = 0
    bytes_pooled: int = 0
    bytes_recycled: int = 0
    high_water_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> "PoolStats":
        """Point-in-time copy (for delta accounting across a region)."""
        return PoolStats(**vars(self))


class BufferPool:
    """Free-list allocator keyed by (shape, dtype).

    Parameters
    ----------
    max_bytes:
        Cap on the total bytes parked in free lists (default 512 MiB).
    enabled:
        When False, ``acquire`` always allocates and ``release`` drops —
        handy for debugging aliasing suspicions.
    """

    def __init__(self, max_bytes: int = 512 * 1024 * 1024,
                 enabled: bool = True) -> None:
        self.max_bytes = int(max_bytes)
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._free: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self.stats = PoolStats()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(shape: tuple[int, ...], dtype) -> tuple[tuple[int, ...], str]:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def acquire(self, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Return an uninitialised array of the requested shape/dtype."""
        key = self._key(shape, dtype)
        if self.enabled:
            with self._lock:
                bucket = self._free.get(key)
                if bucket:
                    arr = bucket.pop()
                    self.stats.hits += 1
                    self.stats.bytes_recycled += arr.nbytes
                    self.stats.bytes_pooled -= arr.nbytes
                    return arr
                self.stats.misses += 1
        return np.empty(key[0], dtype=np.dtype(key[1]))

    def zeros(self, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Pooled equivalent of ``np.zeros``."""
        arr = self.acquire(shape, dtype)
        arr.fill(0)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return a buffer to the pool (drops it when over capacity)."""
        with self._lock:
            self.stats.releases += 1
            if not isinstance(arr, np.ndarray):
                # Graph-node wrappers (the lazy backend's LazyArray)
                # expose an already-realized buffer for pooling; pending
                # nodes are dropped rather than forced.
                getbuf = getattr(arr, "_pool_buffer", None)
                arr = getbuf() if getbuf is not None else None
            if not self.enabled or not isinstance(arr, np.ndarray):
                return
            if (arr.base is not None or not arr.flags.owndata
                    or not arr.flags.c_contiguous):
                # Views don't own memory (pooling them would alias live
                # data), and non-C-contiguous buffers break callers that
                # reshape pooled memory in place.
                self.stats.evictions += 1
                return
            if self.stats.bytes_pooled + arr.nbytes > self.max_bytes:
                self.stats.evictions += 1
                return
            self._free.setdefault(self._key(arr.shape, arr.dtype), []).append(arr)
            self.stats.bytes_pooled += arr.nbytes
            self.stats.high_water_bytes = max(self.stats.high_water_bytes,
                                              self.stats.bytes_pooled)

    def clear(self) -> None:
        """Drop every pooled buffer (stats are kept)."""
        with self._lock:
            self._free.clear()
            self.stats.bytes_pooled = 0

    def __repr__(self) -> str:
        s = self.stats
        return (f"BufferPool(hits={s.hits}, misses={s.misses}, "
                f"pooled={s.bytes_pooled >> 20} MiB, enabled={self.enabled})")
