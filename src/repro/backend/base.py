"""The :class:`ArrayBackend` abstraction and its op-dispatch registry.

A backend is a named bundle of array operations ("ops") plus a pooled
buffer allocator.  Ops are plain callables registered per backend class in
an op table; callers never touch the table directly — they go through the
module-level :data:`repro.backend.ops` dispatcher, which resolves each op
name against the *active* backend at call time:

    from repro.backend import ops as B
    y = B.tensordot(a, b, axes=([1], [1]))

The contract for backend arrays is the NumPy array API subset this repo
uses: arrays expose ``.shape``/``.dtype``/``.reshape``/``.astype``,
support arithmetic operators and the reduction *methods* (``.sum``,
``.mean``, ...).  Free functions that NumPy exposes at module level
(``tensordot``, ``pad``, ``where``, ...) are the dispatch seam: those must
be called through the registry so an alternative backend (threaded, GPU)
can substitute its own implementations one op at a time.

Subclasses inherit their parent's op table and may override individual
entries::

    class ThreadedBackend(NumpyBackend):
        name = "threaded"

    @ThreadedBackend.register_op("tensordot")
    def _threaded_tensordot(a, b, axes): ...
"""

from __future__ import annotations

from typing import Any, Callable

from .pool import BufferPool

__all__ = ["ArrayBackend", "BackendOpError"]


class BackendOpError(NotImplementedError):
    """Raised when the active backend does not implement a requested op."""


class ArrayBackend:
    """Base class for array backends.

    Each subclass owns an op table (``_ops``) mapping op names to
    callables.  Tables are inherited copy-on-write: registering an op on a
    subclass never mutates the parent's table.
    """

    name: str = "abstract"
    _ops: dict[str, Callable[..., Any]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Copy-inherit the parent table so subclass registrations are local.
        merged: dict[str, Callable[..., Any]] = {}
        for base in reversed(cls.__mro__):
            merged.update(vars(base).get("_ops", {}))
        cls._ops = merged

    def __init__(self, pool: BufferPool | None = None) -> None:
        self.pool = pool if pool is not None else BufferPool()

    # ------------------------------------------------------------------ #
    # Op registry
    # ------------------------------------------------------------------ #
    @classmethod
    def register_op(cls, name: str, fn: Callable[..., Any] | None = None):
        """Register ``fn`` under ``name``; usable as a decorator."""
        if fn is not None:
            cls._ops[name] = fn
            return fn

        def decorator(f: Callable[..., Any]) -> Callable[..., Any]:
            cls._ops[name] = f
            return f

        return decorator

    @classmethod
    def register_ops(cls, mapping: dict[str, Callable[..., Any]]) -> None:
        """Bulk-register a name -> callable mapping."""
        cls._ops.update(mapping)

    def has_op(self, name: str) -> bool:
        return name in self._ops

    def op(self, name: str) -> Callable[..., Any]:
        """Resolve an op by name; raise :class:`BackendOpError` if absent."""
        try:
            return self._ops[name]
        except KeyError:
            raise BackendOpError(
                f"backend {self.name!r} does not implement op {name!r}; "
                f"register it with {type(self).__name__}.register_op") from None

    def op_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._ops))

    def __getattr__(self, name: str) -> Callable[..., Any]:
        # Fallback attribute access resolves registered ops, so
        # ``backend.tensordot(...)`` works alongside ``backend.op(...)``.
        if name.startswith("_"):
            raise AttributeError(name)
        ops = type(self)._ops
        if name in ops:
            return ops[name]
        raise AttributeError(
            f"{type(self).__name__!r} has no attribute or registered op {name!r}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, ops={len(self._ops)})"
