"""Reference NumPy backend.

Every op maps to the obvious NumPy call; the few that have no direct
module-level equivalent (``scatter_add``, ``norm``) get thin adapters.
This is both the default execution backend and the semantic reference an
accelerated backend must match.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view as _swv

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


def _scatter_add(target: np.ndarray, idx, values: np.ndarray) -> np.ndarray:
    """In-place unbuffered ``target[idx] += values`` (np.add.at)."""
    np.add.at(target, idx, values)
    return target


class NumpyBackend(ArrayBackend):
    """The reference array backend (plain NumPy, single threaded)."""

    name = "numpy"


NumpyBackend.register_ops({
    # Constructors / conversion
    "asarray": np.asarray,
    "ascontiguousarray": np.ascontiguousarray,
    "zeros": np.zeros,
    "ones": np.ones,
    "empty": np.empty,
    "full": np.full,
    "zeros_like": np.zeros_like,
    "ones_like": np.ones_like,
    "empty_like": np.empty_like,
    "full_like": np.full_like,
    "arange": np.arange,
    "linspace": np.linspace,
    "copyto": np.copyto,
    # Elementwise math
    "exp": np.exp,
    "log": np.log,
    "logaddexp": np.logaddexp,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
    "sign": np.sign,
    "abs": np.abs,
    "floor": np.floor,
    "maximum": np.maximum,
    "minimum": np.minimum,
    "clip": np.clip,
    "where": np.where,
    # Linear algebra / contractions
    "matmul": np.matmul,
    "dot": np.dot,
    "tensordot": np.tensordot,
    "einsum": np.einsum,
    "outer": np.outer,
    "norm": np.linalg.norm,
    # Shape manipulation
    "pad": np.pad,
    "moveaxis": np.moveaxis,
    "swapaxes": np.swapaxes,
    "transpose": np.transpose,
    "expand_dims": np.expand_dims,
    "broadcast_to": np.broadcast_to,
    "concatenate": np.concatenate,
    "stack": np.stack,
    "split": np.split,
    "flip": np.flip,
    "take": np.take,
    "sliding_window_view": _swv,
    # Reductions / predicates
    "sum": np.sum,
    "mean": np.mean,
    "var": np.var,
    "std": np.std,
    "max": np.max,
    "min": np.min,
    "cumsum": np.cumsum,
    "argsort": np.argsort,
    "allclose": np.allclose,
    "any": np.any,
    "all": np.all,
    # Indexed updates
    "scatter_add": _scatter_add,
})
