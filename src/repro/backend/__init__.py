"""Pluggable array-backend layer.

This package is the acceleration seam of the reproduction: every
array-touching layer (``autograd``, ``nn``, ``fem``, ``multigrid``,
``distributed``) routes its hot-path math through the op-dispatch
registry instead of calling NumPy directly, so an alternative backend
(threaded, GPU, ...) is one new module, not a codebase-wide rewrite.

Public surface::

    from repro.backend import ops as B          # op dispatcher
    from repro.backend import set_backend, get_backend, use_backend
    from repro.backend import set_default_dtype, dtype_scope
    from repro.backend import get_pool          # pooled scratch buffers
    from repro.backend import plan_conv         # planning conv engine
"""

from .base import ArrayBackend, BackendOpError
from .numpy_backend import NumpyBackend
from .pool import BufferPool, PoolStats
from .dtype import get_default_dtype, set_default_dtype, dtype_scope
from .registry import (
    register_backend, available_backends, set_backend, get_backend,
    use_backend, ops,
)
from .threaded import ThreadedBackend

# Lazily constructed so importing repro.backend never spins up a pool;
# the executor itself is created on first threaded contraction.
register_backend("threaded", ThreadedBackend)
from .lazy import (
    LazyArray, LazyBackend, is_lazy, lazy_stats, realize, realize_all,
    reset_lazy_stats,
)

register_backend("lazy", LazyBackend)
from .conv_plan import (
    ConvSignature, ConvPlan, plan_conv, clear_plan_cache, plan_cache_info,
    set_conv_plan_mode, get_conv_plan_mode,
    ConvTransposePlan, plan_conv_transpose,
    set_conv_transpose_mode, get_conv_transpose_mode,
    host_fingerprint, autotune_cache_path, set_autotune_cache_path,
    autotune_table, clear_autotune_table, save_autotune_table,
)

__all__ = [
    "ArrayBackend", "BackendOpError", "NumpyBackend", "ThreadedBackend",
    "LazyBackend", "LazyArray", "realize", "realize_all", "is_lazy",
    "lazy_stats", "reset_lazy_stats",
    "BufferPool", "PoolStats", "get_pool",
    "get_default_dtype", "set_default_dtype", "dtype_scope",
    "register_backend", "available_backends", "set_backend", "get_backend",
    "use_backend", "ops",
    "ConvSignature", "ConvPlan", "plan_conv", "clear_plan_cache",
    "plan_cache_info", "set_conv_plan_mode", "get_conv_plan_mode",
    "ConvTransposePlan", "plan_conv_transpose",
    "set_conv_transpose_mode", "get_conv_transpose_mode",
    "host_fingerprint", "autotune_cache_path", "set_autotune_cache_path",
    "autotune_table", "clear_autotune_table", "save_autotune_table",
]


def get_pool() -> BufferPool:
    """The active backend's pooled buffer allocator."""
    return get_backend().pool
