"""Nested factor-2 grid transfer operators for the geometric multigrid
solver (Sec. 2.3 substrate).

These operate on nodal arrays of resolution ``2^k + 1`` where coarse nodes
coincide with even-index fine nodes.  Prolongation is multilinear
interpolation; restriction is its scaled transpose (full weighting in the
interior).
"""

from __future__ import annotations

import numpy as np

from ..backend import ops as B

__all__ = ["prolong_nested", "restrict_nested"]


def _prolong_axis(arr: np.ndarray, axis: int) -> np.ndarray:
    """Linear interpolation along one axis: n -> 2n-1 points."""
    arr = B.moveaxis(arr, axis, 0)
    n = arr.shape[0]
    out = np.zeros((2 * n - 1,) + arr.shape[1:], dtype=arr.dtype)
    out[::2] = arr
    out[1::2] = 0.5 * (arr[:-1] + arr[1:])
    return B.moveaxis(out, 0, axis)


def _restrict_axis(arr: np.ndarray, axis: int, normalize: bool) -> np.ndarray:
    """Transpose of :func:`_prolong_axis` along one axis: 2n-1 -> n points.

    coarse[j] = fine[2j] + fine[2j-1]/2 + fine[2j+1]/2 (half-stencil at the
    ends).  With ``normalize=True`` each output is divided by its stencil
    weight sum (2 in the interior, 1.5 at the ends), giving classic full
    weighting of *function values* that preserves constants; without it,
    the raw adjoint P^T restricts FEM residuals (dual vectors carrying an
    h^d factor).
    """
    arr = B.moveaxis(arr, axis, 0)
    nf = arr.shape[0]
    if nf % 2 == 0:
        raise ValueError(f"fine axis size {nf} must be odd (2^k + 1 grids)")
    nc = (nf - 1) // 2 + 1
    out = np.zeros((nc,) + arr.shape[1:], dtype=arr.dtype)
    out[:] = arr[::2]
    out[:-1] += 0.5 * arr[1::2]
    out[1:] += 0.5 * arr[1::2]
    if normalize:
        weights = np.full((nc,) + (1,) * (arr.ndim - 1), 2.0, dtype=arr.dtype)
        weights[0] = weights[-1] = 1.5
        out /= weights
    return B.moveaxis(out, 0, axis)


def prolong_nested(coarse: np.ndarray) -> np.ndarray:
    """Multilinear prolongation of a nodal array to the nested finer grid."""
    out = coarse
    for ax in range(coarse.ndim):
        out = _prolong_axis(out, ax)
    return out


def restrict_nested(fine: np.ndarray, mode: str = "value") -> np.ndarray:
    """Restriction to the nested coarser grid.

    ``mode='value'`` is full weighting of nodal function values (weights
    sum to 1 per axis); ``mode='dual'`` is the unscaled adjoint P^T, which
    is the correct transfer for FEM residual vectors:
    ``<restrict(r), c> == <r, prolong(c)>`` exactly.
    """
    if mode not in ("value", "dual"):
        raise ValueError(f"unknown restriction mode {mode!r}")
    out = fine
    for ax in range(fine.ndim):
        out = _restrict_axis(out, ax, normalize=mode == "value")
    return out
