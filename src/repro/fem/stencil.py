"""Matrix-free application of the stiffness operator.

At megavoxel resolutions (512^3 = 134M nodes) even storing the assembled
sparse matrix becomes expensive (27 entries/row -> ~29 GB in CSR).  This
module applies ``K u`` directly from nodal ν via the same per-Gauss-point
conv stencils as :class:`repro.fem.energy.EnergyLoss` — it is literally
the energy gradient at ``b = 0``:

    K u == grad_u [ 1/2 B(u, u) ]

Verified against the assembled matrix to machine precision in tests.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .energy import EnergyLoss
from .grid import UniformGrid
from .quadrature import GaussRule

__all__ = ["StencilOperator"]


class StencilOperator:
    """Matrix-free ``u -> K u`` for fixed nodal diffusivity.

    Parameters
    ----------
    grid, nu_nodal, rule:
        As for assembly.  The operator is linear and symmetric positive
        semi-definite (definite on the interior), so it can drive the
        from-scratch CG solver without ever forming K.
    """

    def __init__(self, grid: UniformGrid, nu_nodal: np.ndarray,
                 rule: GaussRule | None = None) -> None:
        self.grid = grid
        self.nu = np.asarray(nu_nodal, dtype=np.float64)
        if self.nu.shape != grid.shape:
            raise ValueError(f"nu shape {self.nu.shape} != grid {grid.shape}")
        self._energy = EnergyLoss(grid, rule=rule, reduction="sum")
        self._nu_batch = self.nu[None, None]

    @property
    def shape(self) -> tuple[int, int]:
        n = self.grid.num_nodes
        return (n, n)

    def matvec(self, u_flat: np.ndarray) -> np.ndarray:
        """Apply K to a flat nodal vector."""
        u_field = np.asarray(u_flat, dtype=np.float64).reshape(self.grid.shape)
        u = Tensor(u_field[None, None], requires_grad=True, dtype=np.float64)
        j = self._energy(u, self._nu_batch)
        j.backward()
        return u.grad[0, 0].reshape(-1).copy()

    def __call__(self, u_flat: np.ndarray) -> np.ndarray:
        return self.matvec(u_flat)

    # ------------------------------------------------------------------ #
    def solve_interior(self, bc, f_nodal: np.ndarray | None = None,
                       tol: float = 1e-10, maxiter: int | None = None):
        """Matrix-free CG solve of the Dirichlet-lifted system.

        Returns the nodal field; never assembles K.
        """
        from .assembly import assemble_load
        from .krylov import conjugate_gradient

        grid = self.grid
        b = assemble_load(grid, f_nodal)
        mask = bc.mask.ravel()
        interior = ~mask
        u_lift = bc.lift().ravel()
        rhs = (b - self.matvec(u_lift))[interior]

        def apply_interior(v: np.ndarray) -> np.ndarray:
            full = np.zeros(grid.num_nodes)
            full[interior] = v
            return self.matvec(full)[interior]

        x, report = conjugate_gradient(apply_interior, rhs, tol=tol,
                                       maxiter=maxiter)
        if not report.converged:
            raise RuntimeError(
                f"matrix-free CG did not converge ({report.residual:.2e})")
        u = u_lift.copy()
        u[interior] += x
        self.last_report = report
        return u.reshape(grid.shape)
