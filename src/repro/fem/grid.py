"""Uniform nodal grids on the unit hypercube.

Fields are stored as dense arrays of nodal values with shape ``(R,)*d``
(axis 0 = x, axis 1 = y, axis 2 = z, ``ij`` indexing); elements are the
``(R-1)^d`` cells between nodes.  The voxel resolution quoted by the paper
(e.g. 512^3) corresponds to ``R`` nodes per dimension here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = ["UniformGrid"]


@dataclass(frozen=True)
class UniformGrid:
    """Uniform grid with ``resolution`` nodes per dimension on [0, 1]^ndim."""

    ndim: int
    resolution: int

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise ValueError("ndim must be >= 1")
        if self.resolution < 2:
            raise ValueError("resolution must be >= 2 (need at least one element)")

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Nodal array shape."""
        return (self.resolution,) * self.ndim

    @property
    def num_nodes(self) -> int:
        return self.resolution ** self.ndim

    @property
    def num_elements(self) -> int:
        return (self.resolution - 1) ** self.ndim

    @property
    def element_shape(self) -> tuple[int, ...]:
        return (self.resolution - 1,) * self.ndim

    @property
    def h(self) -> float:
        """Grid spacing."""
        return 1.0 / (self.resolution - 1)

    @cached_property
    def axes(self) -> tuple[np.ndarray, ...]:
        """1D coordinate arrays per axis."""
        ax = np.linspace(0.0, 1.0, self.resolution)
        return (ax,) * self.ndim

    def coordinates(self) -> list[np.ndarray]:
        """Dense meshgrid coordinate arrays, each of nodal shape."""
        return list(np.meshgrid(*self.axes, indexing="ij"))

    # ------------------------------------------------------------------ #
    # Index algebra
    # ------------------------------------------------------------------ #
    def ravel_index(self, multi_index: tuple[np.ndarray, ...]) -> np.ndarray:
        """Flatten multi-dimensional node indices (C order)."""
        return np.ravel_multi_index(multi_index, self.shape)

    def face_mask(self, axis: int, side: int) -> np.ndarray:
        """Boolean nodal mask of the grid face ``axis``/``side`` (0=lo, 1=hi)."""
        mask = np.zeros(self.shape, dtype=bool)
        idx = [slice(None)] * self.ndim
        idx[axis] = 0 if side == 0 else -1
        mask[tuple(idx)] = True
        return mask

    def boundary_mask(self) -> np.ndarray:
        """Boolean nodal mask of the entire boundary."""
        mask = np.zeros(self.shape, dtype=bool)
        for ax in range(self.ndim):
            mask |= self.face_mask(ax, 0)
            mask |= self.face_mask(ax, 1)
        return mask

    # ------------------------------------------------------------------ #
    # Hierarchy
    # ------------------------------------------------------------------ #
    def can_coarsen(self) -> bool:
        """True if (R-1) is even and the coarse grid keeps >= 1 element."""
        return (self.resolution - 1) % 2 == 0 and self.resolution >= 3

    def coarsen(self) -> "UniformGrid":
        """Grid with half the elements per dimension (nodes at even strides)."""
        if not self.can_coarsen():
            raise ValueError(f"grid of resolution {self.resolution} cannot coarsen")
        return UniformGrid(self.ndim, (self.resolution - 1) // 2 + 1)

    def refine(self) -> "UniformGrid":
        """Grid with twice the elements per dimension."""
        return UniformGrid(self.ndim, (self.resolution - 1) * 2 + 1)

    def __repr__(self) -> str:
        return f"UniformGrid({self.ndim}d, {'x'.join([str(self.resolution)] * self.ndim)})"
