"""Classic geometric multigrid (GMG) solver for the variable-coefficient
Poisson problem — the numerical-linear-algebra machinery of Sec. 2.3 that
inspires MGDiffNet's training cycles.

Implements rediscretized coarse operators (ν restricted by injection),
damped-Jacobi smoothing, full-weighting restriction / multilinear
prolongation, and V / W / F cycles.  Dirichlet conditions are handled in
residual-correction form: every level solves a homogeneous-Dirichlet error
equation, so corrections vanish on constrained nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..backend import ops as B
from ..backend import realize

from .assembly import assemble_load, assemble_stiffness
from .grid import UniformGrid
from .quadrature import GaussRule
from .solver import DirichletBC
from .transfer import prolong_nested, restrict_nested

__all__ = ["GeometricMultigrid", "GMGReport"]


@dataclass
class _Level:
    grid: UniformGrid
    matrix: sp.csr_matrix
    diag: np.ndarray
    dirichlet: np.ndarray  # flat boolean mask


@dataclass
class GMGReport:
    iterations: int
    residual: float
    converged: bool
    residual_history: list[float] = field(default_factory=list)


class GeometricMultigrid:
    """Multigrid solver for ``-div(nu grad u) = f`` with Dirichlet data.

    Parameters
    ----------
    grid:
        Finest grid; ``resolution - 1`` must be divisible by 2 enough times
        to build ``max_levels`` (grids of resolution ``2^k + 1`` coarsen all
        the way down).
    nu_nodal:
        Nodal diffusivity on the finest grid.
    bc:
        Dirichlet boundary conditions (mask must be faces of the cube so
        that it restricts naturally to coarser levels).
    n_smooth:
        (pre, post) damped-Jacobi sweeps.
    omega:
        Jacobi damping (2/3 is optimal for the Laplacian).
    coarse_size:
        Maximum number of nodes for the direct coarsest-level solve.
    """

    def __init__(self, grid: UniformGrid, nu_nodal: np.ndarray, bc: DirichletBC,
                 rule: GaussRule | None = None, n_smooth: tuple[int, int] = (2, 2),
                 omega: float = 2.0 / 3.0, max_levels: int | None = None,
                 coarse_size: int = 729) -> None:
        self.rule = rule or GaussRule.create(grid.ndim, 2)
        self.n_pre, self.n_post = n_smooth
        self.omega = omega
        self.bc = bc
        self.levels: list[_Level] = []

        nu = np.asarray(nu_nodal, dtype=np.float64)
        g = grid
        mask = bc.mask
        while True:
            k = assemble_stiffness(g, nu, GaussRule.create(g.ndim, self.rule.order))
            self.levels.append(_Level(grid=g, matrix=k, diag=k.diagonal(),
                                      dirichlet=mask.ravel()))
            if (max_levels is not None and len(self.levels) >= max_levels):
                break
            if g.num_nodes <= coarse_size:
                break
            if not g.can_coarsen() or g.coarsen().resolution < 3:
                break
            g = g.coarsen()
            nu = nu[tuple(slice(None, None, 2) for _ in range(g.ndim))]
            mask = mask[tuple(slice(None, None, 2) for _ in range(g.ndim))]

        # Direct solver on the coarsest interior block.
        coarse = self.levels[-1]
        interior = ~coarse.dirichlet
        self._coarse_interior = interior
        k_ii = coarse.matrix[interior][:, interior].tocsc()
        self._coarse_lu = spla.splu(k_ii)
        self.last_report: GMGReport | None = None

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    # ------------------------------------------------------------------ #
    def _smooth(self, level: _Level, x: np.ndarray, b: np.ndarray,
                sweeps: int) -> np.ndarray:
        interior = ~level.dirichlet
        inv_d = B.where(level.diag != 0, 1.0 / level.diag, 0.0)
        for _ in range(sweeps):
            # The spmv is a realize barrier: under the lazy backend the
            # previous sweep's damped-Jacobi update chain executes here
            # as one fused kernel.
            x = realize(x)
            r = b - level.matrix @ x
            x = x + self.omega * inv_d * r * interior
        return realize(x)

    def _coarse_solve(self, b: np.ndarray) -> np.ndarray:
        b = realize(b)          # the LU solver needs a concrete buffer
        x = np.zeros_like(b)
        x[self._coarse_interior] = self._coarse_lu.solve(b[self._coarse_interior])
        return x

    def _cycle(self, li: int, b: np.ndarray, gamma: int,
               f_cycle: bool = False) -> np.ndarray:
        """Solve the level-``li`` homogeneous-Dirichlet error equation."""
        level = self.levels[li]
        if li == len(self.levels) - 1:
            return self._coarse_solve(b)
        x = np.zeros_like(b)
        x = self._smooth(level, x, b, self.n_pre)
        r = (b - level.matrix @ x)
        r *= ~level.dirichlet
        coarse = self.levels[li + 1]
        rc = restrict_nested(r.reshape(level.grid.shape), mode="dual").ravel()
        rc[coarse.dirichlet] = 0.0
        visits = gamma if not f_cycle else max(gamma, 2)
        ec = np.zeros_like(rc)
        for v in range(visits):
            sub_gamma = gamma if not f_cycle or v > 0 else gamma
            ec = ec + self._cycle(li + 1, rc - coarse.matrix @ ec, sub_gamma)
        e = prolong_nested(ec.reshape(coarse.grid.shape)).ravel()
        e[level.dirichlet] = 0.0
        x = x + e
        x = self._smooth(level, x, b, self.n_post)
        return x

    # ------------------------------------------------------------------ #
    def solve(self, f_nodal: np.ndarray | None = None, tol: float = 1e-9,
              max_cycles: int = 60, cycle: str = "v",
              x0: np.ndarray | None = None) -> np.ndarray:
        """Iterate multigrid cycles to relative residual ``tol``.

        ``cycle``: 'v' (gamma=1), 'w' (gamma=2) or 'f' (extra first visit).
        """
        gamma = {"v": 1, "w": 2, "f": 1}[cycle]
        f_cycle = cycle == "f"
        fine = self.levels[0]
        b = assemble_load(fine.grid, f_nodal, self.rule)

        u = self.bc.lift().ravel() if x0 is None else np.asarray(
            x0, dtype=np.float64).ravel().copy()
        u[fine.dirichlet] = self.bc.values.ravel()[fine.dirichlet]

        # Reference scale: residual of the plain Dirichlet lift, so that
        # warm starts (x0 near the solution) converge immediately instead
        # of chasing a tolerance relative to their own tiny residual.
        r_ref = b - fine.matrix @ self.bc.lift().ravel()
        r_ref[fine.dirichlet] = 0.0
        norm0 = max(float(B.norm(r_ref)), 1e-300)

        r = b - fine.matrix @ u
        r[fine.dirichlet] = 0.0
        rel = float(B.norm(r)) / norm0
        history = [rel]
        converged = rel < tol
        it = 0
        while not converged and it < max_cycles:
            it += 1
            e = self._cycle(0, r, gamma, f_cycle=f_cycle)
            u = u + e
            r = b - fine.matrix @ u
            r[fine.dirichlet] = 0.0
            rel = float(B.norm(r)) / norm0
            history.append(rel)
            converged = rel < tol
        self.last_report = GMGReport(iterations=it, residual=history[-1],
                                     converged=converged,
                                     residual_history=history)
        return u.reshape(fine.grid.shape)
