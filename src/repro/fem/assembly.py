"""Vectorized sparse FEM assembly on uniform grids.

Assembles the stiffness matrix of ``-div(nu grad u) = f`` with Q1 elements
and nodal ν interpolated to Gauss points.  The assembly loops only over the
(2^d)^2 local node pairs and the Gauss points; all per-element work is
dense NumPy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..backend import ops as B

from .basis import local_nodes, shape_gradients, shape_values
from .grid import UniformGrid
from .quadrature import GaussRule

__all__ = [
    "interpolate_to_gauss", "element_stiffness_tensors",
    "assemble_stiffness", "assemble_load", "assemble_mass",
]


def interpolate_to_gauss(grid: UniformGrid, nodal: np.ndarray,
                         rule: GaussRule) -> np.ndarray:
    """Interpolate a nodal field to every element's Gauss points.

    Returns an array of shape ``(n_gauss, *element_shape)``.
    """
    nodal = np.asarray(nodal)
    if nodal.shape != grid.shape:
        raise ValueError(f"nodal field shape {nodal.shape} != grid {grid.shape}")
    nodes = local_nodes(grid.ndim)
    values = shape_values(rule.points)  # (G, A)
    r = grid.resolution
    out = np.zeros((rule.n_points,) + grid.element_shape, dtype=nodal.dtype)
    for a, offset in enumerate(nodes):
        sl = tuple(slice(o, o + r - 1) for o in offset)
        block = nodal[sl]
        out += values[:, a].reshape((-1,) + (1,) * grid.ndim) * block[None]
    return out


def element_stiffness_tensors(grid: UniformGrid, rule: GaussRule) -> np.ndarray:
    """Per-Gauss-point local stiffness tensors ``S[g, a, b]``.

    ``K^e[a, b] = sum_g nu_g[e] * S[g, a, b]`` where

        S[g, a, b] = w_g * detJ * (2/h)^2 * grad N_a(xi_g) . grad N_b(xi_g)

    with ``detJ = (h/2)^d`` for the affine map to a cube of side ``h``.
    """
    h = grid.h
    d = grid.ndim
    grads = shape_gradients(rule.points)  # (G, A, d) in reference coords
    det_j = (h / 2.0) ** d
    scale = (2.0 / h) ** 2
    # S[g,a,b] = w_g * detJ * scale * sum_k grads[g,a,k] grads[g,b,k]
    dots = B.einsum("gak,gbk->gab", grads, grads)
    return rule.weights[:, None, None] * det_j * scale * dots


def _element_node_indices(grid: UniformGrid) -> list[np.ndarray]:
    """For each local node offset, the flat global index of that node for
    every element (C-order over elements)."""
    em = np.indices(grid.element_shape)  # (d, *element_shape)
    nodes = local_nodes(grid.ndim)
    out = []
    for offset in nodes:
        multi = tuple(em[k] + offset[k] for k in range(grid.ndim))
        out.append(np.ravel_multi_index(multi, grid.shape).ravel())
    return out


def assemble_stiffness(grid: UniformGrid, nu_nodal: np.ndarray,
                       rule: GaussRule | None = None) -> sp.csr_matrix:
    """Assemble the global stiffness matrix for nodal diffusivity ``nu``."""
    rule = rule or GaussRule.create(grid.ndim, 2)
    nu_gauss = interpolate_to_gauss(grid, np.asarray(nu_nodal, dtype=np.float64), rule)
    s_tensors = element_stiffness_tensors(grid, rule)  # (G, A, A)
    node_idx = _element_node_indices(grid)
    n_local = len(node_idx)
    ne = grid.num_elements
    nu_flat = nu_gauss.reshape(rule.n_points, ne)  # (G, E)

    rows = np.empty(n_local * n_local * ne, dtype=np.int64)
    cols = np.empty_like(rows)
    vals = np.empty(n_local * n_local * ne, dtype=np.float64)
    pos = 0
    for a in range(n_local):
        for b in range(n_local):
            v = s_tensors[:, a, b] @ nu_flat  # (E,)
            rows[pos:pos + ne] = node_idx[a]
            cols[pos:pos + ne] = node_idx[b]
            vals[pos:pos + ne] = v
            pos += ne
    k = sp.coo_matrix((vals, (rows, cols)),
                      shape=(grid.num_nodes, grid.num_nodes))
    return k.tocsr()


def assemble_load(grid: UniformGrid, f_nodal: np.ndarray | None,
                  rule: GaussRule | None = None) -> np.ndarray:
    """Assemble the load vector ``b_i = int f N_i`` for nodal forcing f."""
    if f_nodal is None:
        return np.zeros(grid.num_nodes, dtype=np.float64)
    rule = rule or GaussRule.create(grid.ndim, 2)
    f_gauss = interpolate_to_gauss(grid, np.asarray(f_nodal, dtype=np.float64), rule)
    values = shape_values(rule.points)  # (G, A)
    det_j = (grid.h / 2.0) ** grid.ndim
    node_idx = _element_node_indices(grid)
    ne = grid.num_elements
    f_flat = f_gauss.reshape(rule.n_points, ne)
    b = np.zeros(grid.num_nodes, dtype=np.float64)
    for a in range(len(node_idx)):
        contrib = (rule.weights * values[:, a]) @ f_flat * det_j
        B.scatter_add(b, node_idx[a], contrib)
    return b


def assemble_mass(grid: UniformGrid, rule: GaussRule | None = None) -> sp.csr_matrix:
    """Assemble the (consistent) mass matrix ``M_ij = int N_i N_j``."""
    rule = rule or GaussRule.create(grid.ndim, 2)
    values = shape_values(rule.points)  # (G, A)
    det_j = (grid.h / 2.0) ** grid.ndim
    m_local = B.einsum("g,ga,gb->ab", rule.weights, values, values) * det_j
    node_idx = _element_node_indices(grid)
    n_local = len(node_idx)
    ne = grid.num_elements
    rows = np.empty(n_local * n_local * ne, dtype=np.int64)
    cols = np.empty_like(rows)
    vals = np.empty(n_local * n_local * ne, dtype=np.float64)
    pos = 0
    for a in range(n_local):
        for b in range(n_local):
            rows[pos:pos + ne] = node_idx[a]
            cols[pos:pos + ne] = node_idx[b]
            vals[pos:pos + ne] = m_local[a, b]
            pos += ne
    m = sp.coo_matrix((vals, (rows, cols)),
                      shape=(grid.num_nodes, grid.num_nodes))
    return m.tocsr()
