"""Differentiable FEM energy loss (Sec. 3.1.1 of the paper).

The loss is the discrete energy functional

    J(u) = 1/2 B(u, u) - L(u)
         = 1/2 sum_e sum_g w_g detJ nu(x_g) |grad u(x_g)|^2
           -     sum_e sum_g w_g detJ f(x_g) u(x_g)

evaluated as a *convolution* of the nodal field with fixed Q1 stencils:
for each Gauss point the map from nodal values to the gradient (or value)
at that point of every element is a 2^d-tap correlation.  This expresses
J through :mod:`repro.autograd` ops, so `dJ/du` comes from backprop and is
*exactly* ``K u - b`` of the assembled system (verified in tests).

Minimizing J over admissible fields (Dirichlet data imposed exactly by the
masking of Algorithm 1) therefore reproduces the FEM solution — this is
what lets MGDiffNet train without labeled data.
"""

from __future__ import annotations

import numpy as np

from ..backend import ops as B
from ..autograd import Tensor, conv_nd
from .basis import local_nodes, shape_gradients, shape_values
from .grid import UniformGrid
from .quadrature import GaussRule

__all__ = ["EnergyLoss"]


class EnergyLoss:
    """Variational Poisson loss over batched nodal fields.

    Parameters
    ----------
    grid:
        Uniform grid the nodal fields live on.
    rule:
        Gauss rule; defaults to 2 points per dimension.
    forcing:
        Optional nodal forcing field ``f`` of shape ``grid.shape``.
    reduction:
        'mean' (default) averages per-sample energies over the batch,
        'sum' adds them — 'sum' with a single sample is the exact
        matrix-form energy used in the consistency tests.

    Call with ``u``: Tensor (N, 1, \\*grid.shape) and ``nu``: Tensor or
    ndarray of the same shape; returns a scalar Tensor.
    """

    def __init__(self, grid: UniformGrid, rule: GaussRule | None = None,
                 forcing: np.ndarray | None = None,
                 reduction: str = "mean",
                 neumann: list | None = None) -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.grid = grid
        self.rule = rule or GaussRule.create(grid.ndim, 2)
        self.reduction = reduction
        self.forcing = None if forcing is None else np.asarray(forcing, dtype=np.float64)
        if self.forcing is not None and self.forcing.shape != grid.shape:
            raise ValueError("forcing shape must match grid")
        self.neumann = list(neumann) if neumann else []
        self._build_kernels()
        self._weight_cache: dict[type, tuple[Tensor, Tensor]] = {}

    # ------------------------------------------------------------------ #
    def _build_kernels(self) -> None:
        d = self.grid.ndim
        h = self.grid.h
        g = self.rule.n_points
        grads = shape_gradients(self.rule.points)   # (G, A, d) reference
        values = shape_values(self.rule.points)     # (G, A)
        offsets = local_nodes(d)                    # (A, d)

        # Derivative kernels: (G*d, 1, 2, [2, [2]]); physical scale 2/h.
        dker = np.zeros((g * d, 1) + (2,) * d, dtype=np.float64)
        for gi in range(g):
            for k in range(d):
                for a, off in enumerate(offsets):
                    dker[(gi * d + k, 0) + tuple(off)] = (2.0 / h) * grads[gi, a, k]
        # Interpolation kernels: (G, 1, 2, ...).
        vker = np.zeros((g, 1) + (2,) * d, dtype=np.float64)
        for gi in range(g):
            for a, off in enumerate(offsets):
                vker[(gi, 0) + tuple(off)] = values[gi, a]
        self._dker = dker
        self._vker = vker
        self._det_j = (h / 2.0) ** d
        # Quadrature weights broadcast over (N, G, d, *E) and (N, G, *E).
        self._wg = self.rule.weights.copy()

    def _weights_for(self, dtype: np.dtype) -> tuple[Tensor, Tensor]:
        key = dtype.type
        if key not in self._weight_cache:
            self._weight_cache[key] = (
                Tensor(self._dker.astype(dtype)),
                Tensor(self._vker.astype(dtype)),
            )
        return self._weight_cache[key]

    # ------------------------------------------------------------------ #
    def per_sample(self, u: Tensor, nu: Tensor | np.ndarray) -> Tensor:
        """Per-sample energies as a Tensor of shape (N,)."""
        grid = self.grid
        d = grid.ndim
        g = self.rule.n_points
        if u.ndim != d + 2 or u.shape[1] != 1:
            raise ValueError(
                f"u must have shape (N, 1, {'x'.join([str(grid.resolution)] * d)}), "
                f"got {u.shape}")
        if u.shape[2:] != grid.shape:
            raise ValueError(f"u spatial shape {u.shape[2:]} != grid {grid.shape}")

        nu_arr = nu.data if isinstance(nu, Tensor) else np.asarray(nu)
        if nu_arr.shape != u.shape:
            raise ValueError(f"nu shape {nu_arr.shape} != u shape {u.shape}")

        dker, vker = self._weights_for(u.dtype)
        n = u.shape[0]
        elem_shape = grid.element_shape

        # Gradients at Gauss points: (N, G*d, *E) -> (N, G, d, *E).
        grads = conv_nd(u, dker)
        grads = grads.reshape((n, g, d) + elem_shape)

        # nu at Gauss points (constant w.r.t. the graph): (N, G, 1, *E).
        nu_gauss = self._interp_numpy(nu_arr.astype(u.dtype))
        nu_b = nu_gauss.reshape((n, g, 1) + elem_shape)

        # w_g detJ broadcast: (1, G, 1, *1).
        wdet = (self._wg * self._det_j).astype(u.dtype).reshape(
            (1, g, 1) + (1,) * d)

        sq = grads * grads
        integrand = sq * Tensor(nu_b) * Tensor(wdet)
        energy = integrand.sum(axis=tuple(range(1, 3 + d))) * 0.5  # (N,)

        if self.forcing is not None:
            u_gauss = conv_nd(u, vker)                       # (N, G, *E)
            f_gauss = self._interp_numpy(
                B.broadcast_to(self.forcing, u.shape).astype(u.dtype))
            wdet_f = (self._wg * self._det_j).astype(u.dtype).reshape(
                (1, g) + (1,) * d)
            load = (u_gauss * Tensor(f_gauss.reshape((n, g) + elem_shape))
                    * Tensor(wdet_f))
            energy = energy - load.sum(axis=tuple(range(1, 2 + d)))
        if self.neumann:
            from .neumann import neumann_energy

            energy = energy + neumann_energy(u, grid, self.neumann)
        return energy

    def __call__(self, u: Tensor, nu: Tensor | np.ndarray) -> Tensor:
        per = self.per_sample(u, nu)
        return per.mean() if self.reduction == "mean" else per.sum()

    # ------------------------------------------------------------------ #
    def _interp_numpy(self, field: np.ndarray) -> np.ndarray:
        """Interpolate (N, 1, *R) nodal arrays to Gauss points: (N, G, *E).

        Pure NumPy (no graph) — used for ν and f, which are data.
        """
        grid = self.grid
        d = grid.ndim
        r = grid.resolution
        values = shape_values(self.rule.points)  # (G, A)
        offsets = local_nodes(d)
        n = field.shape[0]
        out = np.zeros((n, self.rule.n_points) + grid.element_shape,
                       dtype=field.dtype)
        core = field[:, 0]
        for a, off in enumerate(offsets):
            sl = tuple(slice(o, o + r - 1) for o in off)
            block = core[(slice(None),) + sl]
            out += values[:, a].reshape((1, -1) + (1,) * d) * block[:, None]
        return out
