"""Gauss-Legendre quadrature on the reference element [-1, 1]^d.

The paper's FEM loss (Sec. 3.1.1) integrates the energy functional with
standard Gauss quadrature; 2 points per dimension is exact for the
bilinear/trilinear stiffness integrands with elementwise-smooth ν.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

import numpy as np

__all__ = ["gauss_legendre_1d", "GaussRule"]


def gauss_legendre_1d(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Return (points, weights) of the n-point Gauss-Legendre rule on [-1, 1].

    Rules up to n=4 are tabulated exactly; larger n fall back to
    :func:`numpy.polynomial.legendre.leggauss`.
    """
    if n == 1:
        return np.array([0.0]), np.array([2.0])
    if n == 2:
        p = 1.0 / math.sqrt(3.0)
        return np.array([-p, p]), np.array([1.0, 1.0])
    if n == 3:
        p = math.sqrt(3.0 / 5.0)
        return np.array([-p, 0.0, p]), np.array([5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0])
    if n == 4:
        a = math.sqrt(3.0 / 7.0 - 2.0 / 7.0 * math.sqrt(6.0 / 5.0))
        b = math.sqrt(3.0 / 7.0 + 2.0 / 7.0 * math.sqrt(6.0 / 5.0))
        wa = (18.0 + math.sqrt(30.0)) / 36.0
        wb = (18.0 - math.sqrt(30.0)) / 36.0
        return np.array([-b, -a, a, b]), np.array([wb, wa, wa, wb])
    pts, wts = np.polynomial.legendre.leggauss(n)
    return pts, wts


@dataclass(frozen=True)
class GaussRule:
    """Tensor-product Gauss rule on [-1, 1]^ndim.

    Attributes
    ----------
    points:
        (n_points, ndim) reference coordinates.
    weights:
        (n_points,) tensor-product weights.
    """

    ndim: int
    order: int
    points: np.ndarray
    weights: np.ndarray

    @classmethod
    def create(cls, ndim: int, order: int = 2) -> "GaussRule":
        p1, w1 = gauss_legendre_1d(order)
        pts = np.array(list(product(p1, repeat=ndim)), dtype=np.float64)
        wts = np.array([math.prod(w1[i] for i in idx)
                        for idx in product(range(order), repeat=ndim)],
                       dtype=np.float64)
        return cls(ndim=ndim, order=order, points=pts, weights=wts)

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    def integrate_constant(self) -> float:
        """Sum of weights == measure of the reference cube (2^ndim)."""
        return float(self.weights.sum())
