"""FEM substrate: quadrature, Q1 basis, sparse assembly, reference solvers,
geometric multigrid, and the differentiable variational energy loss.
"""

from .quadrature import GaussRule, gauss_legendre_1d
from .basis import local_nodes, shape_values, shape_gradients
from .grid import UniformGrid
from .assembly import (assemble_stiffness, assemble_load, assemble_mass,
                       interpolate_to_gauss, element_stiffness_tensors)
from .solver import DirichletBC, canonical_bc, FEMSolver, SolveReport
from .energy import EnergyLoss
from .transfer import prolong_nested, restrict_nested
from .gmg import GeometricMultigrid, GMGReport
from .neumann import NeumannBC, assemble_neumann_load, neumann_energy
from .krylov import (CGReport, conjugate_gradient, jacobi_preconditioner,
                     gmg_preconditioner)

__all__ = [
    "NeumannBC", "assemble_neumann_load", "neumann_energy",
    "CGReport", "conjugate_gradient", "jacobi_preconditioner",
    "gmg_preconditioner",
    "GaussRule", "gauss_legendre_1d",
    "local_nodes", "shape_values", "shape_gradients",
    "UniformGrid",
    "assemble_stiffness", "assemble_load", "assemble_mass",
    "interpolate_to_gauss", "element_stiffness_tensors",
    "DirichletBC", "canonical_bc", "FEMSolver", "SolveReport",
    "EnergyLoss",
    "prolong_nested", "restrict_nested",
    "GeometricMultigrid", "GMGReport",
]
