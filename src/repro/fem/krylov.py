"""Conjugate-gradient solvers written from scratch (no scipy.sparse.linalg).

Provides plain CG, Jacobi-preconditioned CG and GMG-preconditioned CG —
the latter combines the Sec. 2.3 multigrid substrate with a Krylov outer
iteration, the workhorse configuration of production FEM codes (and of
PETSc, which the paper's native implementation builds on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..backend import ops as B

__all__ = ["CGReport", "conjugate_gradient", "jacobi_preconditioner",
           "gmg_preconditioner"]


@dataclass
class CGReport:
    """Convergence record of one CG solve."""

    iterations: int
    residual: float
    converged: bool
    residual_history: list[float] = field(default_factory=list)


def conjugate_gradient(matvec: Callable[[np.ndarray], np.ndarray] | sp.spmatrix,
                       b: np.ndarray, x0: np.ndarray | None = None,
                       tol: float = 1e-10, maxiter: int | None = None,
                       preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
                       ) -> tuple[np.ndarray, CGReport]:
    """Preconditioned conjugate gradients for SPD systems.

    Parameters
    ----------
    matvec:
        The operator: a sparse matrix or a callable ``v -> A v``.
    b:
        Right-hand side.
    preconditioner:
        Callable ``r -> M^{-1} r`` (must be SPD).

    Returns the solution and a :class:`CGReport`.
    """
    if sp.issparse(matvec):
        a = matvec

        def apply_a(v: np.ndarray) -> np.ndarray:
            return a @ v
    else:
        apply_a = matvec

    n = b.size
    maxiter = maxiter if maxiter is not None else 10 * n
    x = np.zeros_like(b) if x0 is None else x0.astype(np.float64, copy=True)
    r = b - apply_a(x)
    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rz = float(r @ z)
    norm_b = max(float(B.norm(b)), 1e-300)
    history = [float(B.norm(r)) / norm_b]
    converged = history[0] < tol
    it = 0
    while not converged and it < maxiter:
        it += 1
        ap = apply_a(p)
        pap = float(p @ ap)
        if pap <= 0:
            raise RuntimeError("operator is not positive definite in CG")
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = float(B.norm(r)) / norm_b
        history.append(rel)
        if rel < tol:
            converged = True
            break
        z = preconditioner(r) if preconditioner else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return x, CGReport(iterations=it, residual=history[-1],
                       converged=converged, residual_history=history)


def jacobi_preconditioner(a: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``r -> D^{-1} r``."""
    diag = np.asarray(a.diagonal(), dtype=np.float64)
    if B.any(diag <= 0):
        raise ValueError("non-positive diagonal; matrix not SPD?")
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def gmg_preconditioner(gmg, cycles: int = 1
                       ) -> Callable[[np.ndarray], np.ndarray]:
    """One (or more) multigrid V-cycles as a CG preconditioner.

    ``gmg`` is a :class:`repro.fem.gmg.GeometricMultigrid` built for the
    *interior* problem being solved; the returned callable maps a full-grid
    interior-masked residual vector to an approximate ``A^{-1} r``.

    Note: the homogeneous-Dirichlet error cycle of the GMG object is
    symmetric enough in practice for CG when used with equal pre/post
    smoothing (Jacobi is symmetric), which our configuration guarantees.
    """
    interior = ~gmg.levels[0].dirichlet

    def apply(r_interior: np.ndarray) -> np.ndarray:
        r_full = np.zeros(gmg.levels[0].grid.num_nodes)
        r_full[interior] = r_interior
        z = np.zeros_like(r_full)
        for _ in range(cycles):
            z = z + gmg._cycle(0, r_full - gmg.levels[0].matrix @ z, gamma=1)
        return z[interior]

    return apply
