"""Multilinear (Q1) finite-element basis on the reference cube [-1, 1]^d.

Local nodes are indexed by binary offsets ``a in {0, 1}^d`` sitting at
reference coordinates ``xi_a = 2a - 1``; shape functions are the tensor
products ``N_a(xi) = prod_k (1 + xi_a[k] * xi[k]) / 2``.
"""

from __future__ import annotations

from itertools import product

import numpy as np

__all__ = ["local_nodes", "shape_values", "shape_gradients"]


def local_nodes(ndim: int) -> np.ndarray:
    """Binary local-node offsets, shape (2^d, d), lexicographic order."""
    return np.array(list(product((0, 1), repeat=ndim)), dtype=np.int64)


def shape_values(points: np.ndarray) -> np.ndarray:
    """Evaluate all Q1 shape functions at reference points.

    Parameters
    ----------
    points:
        (n_pts, d) coordinates in [-1, 1]^d.

    Returns
    -------
    (n_pts, 2^d) array: ``out[g, a] = N_a(points[g])``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    d = points.shape[1]
    nodes = local_nodes(d)
    signs = 2.0 * nodes - 1.0                     # (2^d, d)
    # (n_pts, 2^d, d): (1 + s_k * xi_k)/2 per dimension, then product.
    factors = 0.5 * (1.0 + signs[None, :, :] * points[:, None, :])
    return factors.prod(axis=2)


def shape_gradients(points: np.ndarray) -> np.ndarray:
    """Reference-coordinate gradients of all Q1 shape functions.

    Returns
    -------
    (n_pts, 2^d, d) array: ``out[g, a, k] = dN_a/dxi_k (points[g])``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    d = points.shape[1]
    nodes = local_nodes(d)
    signs = 2.0 * nodes - 1.0
    factors = 0.5 * (1.0 + signs[None, :, :] * points[:, None, :])  # (g, a, d)
    grads = np.empty((points.shape[0], nodes.shape[0], d))
    for k in range(d):
        # Replace factor k with its derivative s_k / 2.
        g = 0.5 * signs[None, :, k]
        others = np.ones_like(factors[:, :, 0])
        for j in range(d):
            if j != k:
                others = others * factors[:, :, j]
        grads[:, :, k] = g * others
    return grads
