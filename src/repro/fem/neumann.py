"""Non-homogeneous Neumann (flux) boundary conditions.

The paper's formulation (Eqs. 3-5, Sec. 2.2.1) admits prescribed fluxes
``du/dn = h`` on ``Gamma_N``; its benchmark problem uses ``h = 0`` (which
is 'natural' and needs no code).  This module adds the general surface
term for hypercube faces:

* the load contribution ``b_i += int_{Gamma_N} h N_i dS`` for the
  assembled system, and
* the energy contribution ``-int_{Gamma_N} h u dS`` for the
  differentiable loss,

both with face Gauss quadrature, and both consistent with each other
(gradient of the energy term == the load vector, verified in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend import ops as B
from ..autograd import Tensor
from .basis import local_nodes, shape_values
from .grid import UniformGrid
from .quadrature import GaussRule

__all__ = ["NeumannBC", "assemble_neumann_load", "neumann_energy"]


@dataclass(frozen=True)
class NeumannBC:
    """Prescribed flux on one face of the unit hypercube.

    Parameters
    ----------
    axis, side:
        Face selector (side 0 = low face, 1 = high face).
    flux:
        ``nu * du/dn`` on the face: a scalar for uniform flux or a nodal
        array of the face shape ``(R,) * (d-1)``.
    """

    axis: int
    side: int
    flux: float | np.ndarray

    def face_values(self, grid: UniformGrid) -> np.ndarray:
        """Flux as a nodal array on the face grid."""
        face_shape = (grid.resolution,) * (grid.ndim - 1)
        if np.isscalar(self.flux):
            return np.full(face_shape, float(self.flux))
        arr = np.asarray(self.flux, dtype=np.float64)
        if arr.shape != face_shape:
            raise ValueError(
                f"flux shape {arr.shape} != face shape {face_shape}")
        return arr


def _face_load(grid: UniformGrid, bc: NeumannBC,
               rule: GaussRule | None = None) -> np.ndarray:
    """Surface load on the face as a nodal array of the face grid.

    The face is a (d-1)-dimensional uniform grid; the surface integral of
    ``h N_i`` is a lower-dimensional FEM load assembly.
    """
    d = grid.ndim
    if d < 2:
        raise ValueError("Neumann faces require ndim >= 2")
    face_dim = d - 1
    rule = rule or GaussRule.create(face_dim, 2)
    h_vals = bc.face_values(grid)

    r = grid.resolution
    values = shape_values(rule.points)      # (G, A) on the face element
    offsets = local_nodes(face_dim)
    det_j = (grid.h / 2.0) ** face_dim

    # Interpolate h to face Gauss points.
    h_gauss = np.zeros((rule.n_points,) + (r - 1,) * face_dim)
    for a, off in enumerate(offsets):
        sl = tuple(slice(o, o + r - 1) for o in off)
        h_gauss += values[:, a].reshape((-1,) + (1,) * face_dim) * h_vals[sl]

    load = np.zeros((r,) * face_dim)
    elem_idx = np.indices((r - 1,) * face_dim)
    for a, off in enumerate(offsets):
        contrib = B.einsum("g,g...->...",
                           rule.weights * values[:, a], h_gauss) * det_j
        target = tuple(elem_idx[k] + off[k] for k in range(face_dim))
        B.scatter_add(load, target, contrib)
    return load


def assemble_neumann_load(grid: UniformGrid, bcs: list[NeumannBC],
                          rule: GaussRule | None = None) -> np.ndarray:
    """Global load vector contribution of the flux conditions."""
    b = np.zeros(grid.num_nodes)
    full = np.zeros(grid.shape)
    for bc in bcs:
        face_load = _face_load(grid, bc, rule)
        idx = [slice(None)] * grid.ndim
        idx[bc.axis] = 0 if bc.side == 0 else -1
        scatter = np.zeros(grid.shape)
        scatter[tuple(idx)] = face_load
        full += scatter
    b += full.ravel()
    return b


def neumann_energy(u: Tensor, grid: UniformGrid, bcs: list[NeumannBC],
                   rule: GaussRule | None = None) -> Tensor:
    """Differentiable energy contribution ``-int h u dS``, per sample.

    ``u``: Tensor of shape (N, 1, \\*grid.shape).  Returns a Tensor (N,).
    Because the surface integral is linear in u, it equals ``-b_N . u``
    for the assembled ``b_N``, which is how it is computed (exactly
    consistent with :func:`assemble_neumann_load`).
    """
    b = assemble_neumann_load(grid, bcs, rule).reshape(grid.shape)
    b_t = Tensor(b[None, None].astype(u.dtype))
    prod = u * b_t
    return -prod.sum(axis=tuple(range(1, 2 + grid.ndim)))
