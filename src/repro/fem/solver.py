"""Reference FEM solvers for the generalized Poisson equation.

Provides the traditional solver the paper compares MGDiffNet against
(Sec. 4.3): Dirichlet-lifted sparse solves via a direct factorization or
Jacobi-preconditioned conjugate gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..backend import ops as B

from .assembly import assemble_load, assemble_stiffness
from .grid import UniformGrid
from .quadrature import GaussRule

__all__ = ["DirichletBC", "canonical_bc", "FEMSolver", "SolveReport"]


@dataclass(frozen=True)
class DirichletBC:
    """Dirichlet data: boolean nodal ``mask`` and nodal ``values``.

    Nodes outside the mask are unconstrained (homogeneous Neumann by the
    variational formulation — 'natural' boundary conditions).
    """

    mask: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.mask.shape != self.values.shape:
            raise ValueError("mask and values must share a shape")
        if self.mask.dtype != bool:
            raise TypeError("mask must be boolean")

    def lift(self) -> np.ndarray:
        """Field equal to the BC values on the mask, zero elsewhere."""
        out = np.zeros(self.mask.shape, dtype=np.float64)
        out[self.mask] = self.values[self.mask]
        return out

    def interior_indicator(self) -> np.ndarray:
        """Float characteristic function of the interior (paper's chi_int)."""
        return (~self.mask).astype(np.float64)

    def boundary_indicator(self) -> np.ndarray:
        """Float characteristic function of the Dirichlet set (chi_b)."""
        return self.mask.astype(np.float64)


def canonical_bc(grid: UniformGrid) -> DirichletBC:
    """The paper's benchmark BCs: u(0, .) = 1, u(1, .) = 0, flux-free
    elsewhere (Eqs. 7-9)."""
    mask = grid.face_mask(0, 0) | grid.face_mask(0, 1)
    values = np.zeros(grid.shape, dtype=np.float64)
    values[grid.face_mask(0, 0)] = 1.0
    return DirichletBC(mask=mask, values=values)


@dataclass
class SolveReport:
    """Diagnostics of one FEM solve."""

    method: str
    iterations: int
    residual: float
    n_dofs: int


class FEMSolver:
    """Assemble-and-solve driver for ``-div(nu grad u) = f``.

    Parameters
    ----------
    grid:
        Discretization.
    rule:
        Gauss rule (defaults to 2 points/dim, matching
        :class:`repro.fem.energy.EnergyLoss`).
    """

    def __init__(self, grid: UniformGrid, rule: GaussRule | None = None) -> None:
        self.grid = grid
        self.rule = rule or GaussRule.create(grid.ndim, 2)
        self.last_report: SolveReport | None = None

    def solve(self, nu_nodal: np.ndarray, bc: DirichletBC,
              f_nodal: np.ndarray | None = None, method: str = "auto",
              tol: float = 1e-10, maxiter: int | None = None,
              neumann: list | None = None) -> np.ndarray:
        """Return the nodal solution field of shape ``grid.shape``.

        ``method``: 'direct' (sparse LU), 'cg' (Jacobi-preconditioned
        conjugate gradients) or 'auto' (direct below 50k interior dofs).
        ``neumann``: optional list of :class:`repro.fem.neumann.NeumannBC`
        flux conditions (zero-flux faces need no entry).
        """
        grid = self.grid
        k = assemble_stiffness(grid, nu_nodal, self.rule)
        b = assemble_load(grid, f_nodal, self.rule)
        if neumann:
            from .neumann import assemble_neumann_load

            b = b + assemble_neumann_load(grid, neumann, None)

        mask_flat = bc.mask.ravel()
        interior = ~mask_flat
        u = bc.lift().ravel()
        rhs = b - k @ u
        rhs_i = rhs[interior]
        k_ii = k[interior][:, interior].tocsr()
        n_int = int(interior.sum())

        if method == "auto":
            method = "direct" if n_int <= 50_000 else "cg"

        if method == "direct":
            x = spla.spsolve(k_ii.tocsc(), rhs_i)
            iters = 1
        elif method == "cg":
            diag = k_ii.diagonal()
            if B.any(diag <= 0):
                raise RuntimeError("non-positive diagonal; K not SPD?")
            m_inv = sp.diags(1.0 / diag)
            iters = 0

            def _count(_xk: np.ndarray) -> None:
                nonlocal iters
                iters += 1

            x, info = spla.cg(k_ii, rhs_i, rtol=tol, maxiter=maxiter or 20 * n_int,
                              M=m_inv, callback=_count)
            if info != 0:
                raise RuntimeError(f"CG failed to converge (info={info})")
        else:
            raise ValueError(f"unknown method {method!r}")

        u[interior] += x
        res = float(B.norm(rhs_i - k_ii @ x) /
                    max(B.norm(rhs_i), 1e-30))
        self.last_report = SolveReport(method=method, iterations=iters,
                                       residual=res, n_dofs=n_int)
        return u.reshape(grid.shape)

    def energy(self, u_nodal: np.ndarray, nu_nodal: np.ndarray,
               f_nodal: np.ndarray | None = None,
               neumann: list | None = None) -> float:
        """Matrix form of the energy: ``1/2 u^T K u - b^T u``.

        Used by tests to certify that :class:`repro.fem.energy.EnergyLoss`
        (the conv-stencil path) matches the assembled operator exactly.
        """
        k = assemble_stiffness(self.grid, nu_nodal, self.rule)
        b = assemble_load(self.grid, f_nodal, self.rule)
        if neumann:
            from .neumann import assemble_neumann_load

            b = b + assemble_neumann_load(self.grid, neumann, None)
        uf = np.asarray(u_nodal, dtype=np.float64).ravel()
        return float(0.5 * uf @ (k @ uf) - b @ uf)
