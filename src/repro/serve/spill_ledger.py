"""Shared spill ledger: one disk-byte budget across cache instances.

Each :class:`~repro.serve.cache.LRUCache` enforces its spill budget from
its own in-memory books, which is correct only while it is the *sole*
writer of its spill directory.  A sharded fleet colocating several
shards on one host (or several processes serving one model) wants the
opposite: one directory, one budget, deduplicated entries — two shards
caching the same ``(version, ω)`` key write the same file name, so a
shared directory stores the field once instead of R times.

The ledger makes that safe.  All instances sharing a ``spill_dir``
coordinate through two files inside it:

* ``.spill.lock`` — an ``fcntl.flock`` advisory lock serializing every
  ledger transaction across processes (plus a thread lock within one).
* ``.spill_ledger.json`` — the authoritative accounting: per file name
  its byte size and a logical-clock stamp (monotone counter, not wall
  time), least-stamp == least-recently-used.

Every use (write or read-touch) is one locked transaction: load the
ledger, upsert the entry with a fresh stamp, evict least-recently-used
files while the total exceeds the budget — *deleting the files* — and
publish the updated ledger atomically.  Evictions are returned to the
caller so its in-memory accounting can follow, including files some
other instance wrote.  A missing or torn ledger is rebuilt from a
directory scan in mtime order, so the recency ranking degrades
gracefully rather than resetting.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

try:  # pragma: no cover - exercised only on non-posix hosts
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["SpillLedger", "LEDGER_NAME", "LOCK_NAME"]

LOCK_NAME = ".spill.lock"
LEDGER_NAME = ".spill_ledger.json"
_VERSION = 1


class SpillLedger:
    """Cross-process LRU byte budget for one shared spill directory.

    ``record_use(name, size)`` is the whole write API: both a fresh spill
    write and a read that touches an existing file refresh the entry's
    recency and trigger eviction of whatever least-recently-used files
    push the directory over ``max_bytes``.  ``remove`` deregisters a file
    the caller deleted itself (version pruning, torn-file cleanup).
    """

    def __init__(self, spill_dir: str | os.PathLike, max_bytes: int) -> None:
        self.dir = Path(spill_dir)
        self.max_bytes = int(max_bytes)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.dir / LOCK_NAME
        self._ledger_path = self.dir / LEDGER_NAME
        self._tlock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Locked transactions
    # ------------------------------------------------------------------ #
    @contextmanager
    def _locked(self):
        """Exclusive cross-process + cross-thread critical section."""
        with self._tlock:
            fh = open(self._lock_path, "a+b")
            try:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                fh.close()

    def _load(self) -> dict:
        """Read the ledger (lock held); rebuild from a scan if unusable.

        Validation is per entry, not just structural: a ledger that
        parses as JSON can still carry garbage values (a torn write
        spliced with an older generation, a corrupted filesystem, a
        hand-edited file), and trusting them would crash eviction or
        mis-account the byte budget.  Anything malformed falls through
        to the rebuild-from-scan path, which is always truthful: sizes
        come from ``stat`` and recency from mtime order.
        """
        try:
            with open(self._ledger_path, "r", encoding="utf-8") as fh:
                state = json.load(fh)
            if self._valid(state):
                return state
        except (OSError, ValueError):
            pass
        # Fresh or torn ledger: rebuild from the directory, stamping in
        # mtime order so pre-ledger recency carries over.
        files: dict[str, list[int]] = {}
        clock = 0
        for path in sorted(self.dir.glob("*.npz"),
                           key=lambda p: p.stat().st_mtime):
            try:
                st = path.stat()
            except OSError:
                continue
            clock += 1
            files[path.name] = [int(st.st_size), clock]
        return {"version": _VERSION, "clock": clock, "files": files}

    @staticmethod
    def _valid(state) -> bool:
        """A usable ledger: right version, integer clock, and every
        files entry a [size, stamp] pair of non-negative ints."""
        if not (isinstance(state, dict) and state.get("version") == _VERSION
                and isinstance(state.get("files"), dict)):
            return False
        clock = state.get("clock")
        if not isinstance(clock, int) or isinstance(clock, bool):
            return False
        for name, entry in state["files"].items():
            if not isinstance(name, str):
                return False
            if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                return False
            if not all(isinstance(v, int) and not isinstance(v, bool)
                       and v >= 0 for v in entry):
                return False
        return True

    def _save(self, state: dict) -> None:
        tmp = self._ledger_path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh)
        os.replace(tmp, self._ledger_path)

    def _evict(self, state: dict) -> list[tuple[str, int]]:
        """Delete least-recently-used files over budget (lock held)."""
        files = state["files"]
        evicted: list[tuple[str, int]] = []
        while sum(size for size, _ in files.values()) > self.max_bytes:
            name = min(files, key=lambda n: files[n][1])
            size, _ = files.pop(name)
            (self.dir / name).unlink(missing_ok=True)
            evicted.append((name, size))
        return evicted

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def record_use(self, name: str,
                   size: int) -> tuple[list[tuple[str, int]], int]:
        """Register a write or touch of ``name`` (``size`` bytes).

        Returns ``(evicted, total)``: the ``(name, bytes)`` pairs this
        transaction deleted — possibly files written by *other*
        instances — and the directory's post-transaction byte total.
        """
        with self._locked():
            state = self._load()
            state["clock"] += 1
            state["files"][name] = [int(size), state["clock"]]
            evicted = self._evict(state)
            total = sum(s for s, _ in state["files"].values())
            self._save(state)
        return evicted, total

    def remove(self, name: str) -> int:
        """Deregister a file the caller deleted; returns the new total."""
        with self._locked():
            state = self._load()
            state["files"].pop(name, None)
            total = sum(s for s, _ in state["files"].values())
            self._save(state)
        return total

    def ensure_budget(self) -> tuple[list[tuple[str, int]], int]:
        """Reconcile and enforce without registering a use.

        Called at instance start-up: adopts files the scan-rebuilt (or
        inherited) ledger knows about and evicts anything over budget.
        """
        with self._locked():
            state = self._load()
            evicted = self._evict(state)
            total = sum(s for s, _ in state["files"].values())
            self._save(state)
        return evicted, total

    def total_bytes(self) -> int:
        with self._locked():
            return sum(s for s, _ in self._load()["files"].values())

    def snapshot(self) -> dict[str, int]:
        """Name -> bytes view of the ledger (diagnostics/tests)."""
        with self._locked():
            return {n: s for n, (s, _) in self._load()["files"].items()}
