"""Pluggable execution backends for the serving worker fleet.

CPython's GIL caps a thread-pool server at roughly one core of Python
work; the conv engines release the GIL inside BLAS but the dispatch,
planning and stitching around them do not.  This module abstracts *where*
a unit of serving compute runs:

* :class:`SerialExecutor` — inline on the calling thread.  Zero overhead,
  the right default for small fields and single-core hosts.
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``.  Cheap
  fan-out that wins whenever tasks spend their time inside GIL-releasing
  BLAS calls (tiled megavoxel forwards do).
* :class:`ProcessExecutor` — a ``multiprocessing`` pool.  Full GIL
  escape for CPU-bound fleets.  Each worker re-initialises its array
  backend and dtype policy on startup (``_process_worker_init``): forked
  children must never reuse the parent's backend instances, whose thread
  pools and locked state do not survive a fork.

Task functions submitted to a :class:`ProcessExecutor` must be module
level (picklable); per-worker state such as unpickled models is cached in
the child keyed by content version (see :mod:`repro.serve.tiling`).

``make_executor`` is the single construction point used by
:class:`~repro.serve.server.PredictionServer`, ``repro predict`` and the
benchmarks; it captures the caller's active backend and dtype so workers
replicate the serving configuration exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "make_executor", "default_workers",
           "EXECUTOR_KINDS"]

EXECUTOR_KINDS = ("serial", "thread", "process")


def default_workers() -> int:
    """Worker count matching the cores this process may actually use."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class Executor:
    """Common surface: ordered ``map``, explicit ``close``, context use."""

    kind = "serial"

    # Telemetry seam: a server with telemetry enabled binds its tracer
    # here; parallel executors then wrap each ``map`` fan-out in an
    # "executor.map" span.  Class-level None keeps the default free.
    tracer = None

    @property
    def workers(self) -> int:
        return 1

    def map(self, fn, items) -> list:
        """Apply ``fn`` to every item; results in input order."""
        raise NotImplementedError

    def _map_span(self, n: int):
        """Open the fan-out span for an ``n``-item map (or None)."""
        tracer = self.tracer
        if tracer is None:
            return None
        return tracer.start("executor.map", kind=self.kind, items=n,
                            workers=self.workers)

    def imap_unordered(self, fn, items):
        """Yield ``(index, fn(item))`` pairs in *completion* order.

        ``index`` is the item's position in the input iterable, so a
        caller that needs positional identity (e.g. which tile a result
        belongs to) recovers it regardless of which worker finished
        first.  The serial implementation is lazy and in input order;
        parallel executors submit everything and yield as results land.
        """
        for i, item in enumerate(items):
            yield i, fn(item)

    def warm(self) -> None:
        """Create worker resources now instead of on first ``map``.

        Callers that are about to spawn compute threads use this to
        uphold the fork-before-threads invariant: a fork-based pool must
        exist before any thread could hold a lock mid-fork.
        """

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run every task inline on the calling thread."""

    kind = "serial"

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Shared thread pool; pool threads pin the creator's backend/dtype.

    The array-backend choice is thread-local (see
    :mod:`repro.backend.registry`), so without the initializer a pool
    thread would silently fall back to the process default backend
    instead of the one the caller configured.
    """

    kind = "thread"

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 dtype: str | None = None) -> None:
        self._workers = max(1, int(workers or default_workers()))
        self._backend, self._dtype = _capture_context(backend, dtype)
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="repro-exec",
                    initializer=_thread_worker_init,
                    initargs=(self._backend, self._dtype))
            return self._pool

    def map(self, fn, items) -> list:
        items = list(items)
        if not items:
            return []
        span = self._map_span(len(items))
        try:
            return list(self._ensure_pool().map(fn, items))
        finally:
            if span is not None:
                span.finish()

    def imap_unordered(self, fn, items):
        items = list(items)
        if not items:
            return
        pool = self._ensure_pool()
        futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
        for fut in as_completed(futures):
            yield futures[fut], fut.result()

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """``multiprocessing`` pool with per-worker backend re-initialisation.

    The pool is created lazily (spinning up processes is not free) and
    the default start method prefers ``fork`` where available: children
    inherit loaded modules copy-on-write, so startup cost stays low even
    for a large serving process.
    """

    kind = "process"

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 dtype: str | None = None,
                 start_method: str | None = None) -> None:
        self._workers = max(1, int(workers or default_workers()))
        self._backend, self._dtype = _capture_context(backend, dtype)
        # Conv-plan mode and autotune table location are process-global
        # state: fork inherits them, but spawn-started workers would
        # silently fall back to defaults — capture and replay both.
        from ..backend import autotune_cache_path, get_conv_plan_mode

        self._conv_mode = get_conv_plan_mode()
        self._autotune_path = str(autotune_cache_path())
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self._lock = threading.Lock()
        self._pool = None

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def start_method(self) -> str:
        return self._start_method

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                ctx = multiprocessing.get_context(self._start_method)
                self._pool = ctx.Pool(
                    processes=self._workers,
                    initializer=_process_worker_init,
                    initargs=(self._backend, self._dtype,
                              self._conv_mode, self._autotune_path))
            return self._pool

    def map(self, fn, items) -> list:
        items = list(items)
        if not items:
            return []
        span = self._map_span(len(items))
        try:
            # chunksize=1: serving tasks are coarse (a tile or a fused
            # forward each); load balance beats batched dispatch.
            return self._ensure_pool().map(fn, items, chunksize=1)
        finally:
            if span is not None:
                span.finish()

    def imap_unordered(self, fn, items):
        items = list(items)
        if not items:
            return
        pool = self._ensure_pool()
        payloads = [(fn, i, item) for i, item in enumerate(items)]
        yield from pool.imap_unordered(_indexed_call, payloads, chunksize=1)

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


def make_executor(kind: str, workers: int | None = None,
                  backend: str | None = None,
                  dtype: str | None = None) -> Executor:
    """Build an executor by kind: ``serial`` | ``thread`` | ``process``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers, backend=backend, dtype=dtype)
    if kind == "process":
        return ProcessExecutor(workers, backend=backend, dtype=dtype)
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}")


def _indexed_call(payload):
    """Module-level shim for the process ``imap_unordered`` path.

    ``fn`` must itself be module level (picklable); the index rides along
    so completion-order results keep their positional identity.
    """
    fn, index, item = payload
    return index, fn(item)


# --------------------------------------------------------------------- #
# Worker initialisation
# --------------------------------------------------------------------- #
def _capture_context(backend: str | None,
                     dtype: str | None) -> tuple[str, str]:
    """Resolve (backend name, dtype name), defaulting to the caller's."""
    from ..backend import get_backend, get_default_dtype

    if backend is None:
        backend = get_backend().name
    if dtype is None:
        dtype = np.dtype(get_default_dtype()).name
    return backend, np.dtype(dtype).name


def _thread_worker_init(backend: str, dtype: str) -> None:
    from ..backend import set_backend, set_default_dtype

    set_backend(backend)
    set_default_dtype(dtype)


def _process_worker_init(backend: str, dtype: str,
                         conv_mode: str = "auto",
                         autotune_path: str | None = None) -> None:
    """Re-initialise the array layer in a freshly started/forked worker.

    Backend instances carry thread pools, locks and pooled buffers; after
    a fork those threads are gone and lock state is undefined, so the
    child registers *fresh* instances before activating anything.  The
    conv-plan mode and autotune table path are replayed too — spawn
    workers start from module defaults, and a process fleet running the
    heuristic planner while the parent autotuned would silently discard
    the measured wins.
    """
    from ..backend import (
        set_autotune_cache_path, set_conv_plan_mode, set_default_dtype,
    )
    from ..backend.numpy_backend import NumpyBackend
    from ..backend.registry import register_backend, set_backend
    from ..backend.threaded import ThreadedBackend

    register_backend("numpy", NumpyBackend())
    register_backend("threaded", ThreadedBackend)   # lazy factory
    set_backend(backend)
    set_default_dtype(dtype)
    if autotune_path is not None:
        set_autotune_cache_path(autotune_path)
    set_conv_plan_mode(conv_mode)
