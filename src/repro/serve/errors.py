"""Keyed serving errors: every rejection names the request it rejects.

The serving front-ends fail requests for reasons the *client* must be
able to tell apart programmatically — an expired deadline is retryable
with a longer budget, an overloaded queue is retryable after backoff,
and both are distinct from a genuinely broken request (``ValueError``)
or a broken model (``RegistryError``).  Mirroring ``CheckpointError``,
each error spells out the offending request (model name, cache key
digest, the limit it hit) instead of surfacing a bare string.
"""

from __future__ import annotations

from .cache import key_digest

__all__ = ["ServeError", "DeadlineExceeded", "ServerOverloaded",
           "TenantThrottled", "FleetUnavailable"]


def _key_digest(key: tuple | None) -> str:
    """Digest of a request's cache key for error messages.

    The raw key embeds the full quantized ω tuple — too noisy for a log
    line — but the shared :func:`~repro.serve.cache.key_digest` lets
    operators correlate an error with its cache/spill entry exactly
    (spill file names embed the identical digest).
    """
    return key_digest(key) if key is not None else "unkeyed"


class ServeError(RuntimeError):
    """Base class for keyed serving rejections."""


class DeadlineExceeded(ServeError, TimeoutError):
    """A request's latency budget ran out before its fused forward.

    Raised through the request's future by the scheduling layer; the
    compute was *never started*, so an expired request costs the server
    only its queue slot.  Also a :class:`TimeoutError`, so generic
    timeout handling in clients catches it.

    A *streaming* request can expire mid-delivery: ``tiles_delivered``
    then counts the tile records the consumer already received, so a
    progressive client knows exactly how much of the field it holds.
    """

    def __init__(self, model_name: str, key: tuple | None,
                 deadline_s: float, waited_s: float,
                 tiles_delivered: int | None = None) -> None:
        self.model_name = model_name
        self.key_digest = _key_digest(key)
        self.deadline_s = float(deadline_s)
        self.waited_s = float(waited_s)
        self.tiles_delivered = (
            None if tiles_delivered is None else int(tiles_delivered))
        suffix = ("" if self.tiles_delivered is None else
                  f" ({self.tiles_delivered} stream tiles delivered)")
        super().__init__(
            f"request {self.key_digest} for model {model_name!r} expired: "
            f"waited {waited_s * 1e3:.1f} ms against a deadline of "
            f"{deadline_s * 1e3:.1f} ms without entering a fused forward"
            + suffix)


class ServerOverloaded(ServeError):
    """The bounded request queue is full (``max_pending`` reached).

    Raised synchronously by ``submit`` — backpressure must reach the
    caller *before* the request consumes server state, so clients can
    shed or retry with backoff.
    """

    def __init__(self, model_name: str, key: tuple | None,
                 pending: int, max_pending: int) -> None:
        self.model_name = model_name
        self.key_digest = _key_digest(key)
        self.pending = int(pending)
        self.max_pending = int(max_pending)
        super().__init__(
            f"request {self.key_digest} for model {model_name!r} rejected: "
            f"{pending} requests already pending >= max_pending="
            f"{max_pending}")


class TenantThrottled(ServeError):
    """A tenant's token bucket is empty (admission control, not load).

    Raised synchronously by ``submit`` when an
    :class:`~repro.serve.control.admission.AdmissionController` is
    installed and the request's tenant has exhausted its quota.  Unlike
    :class:`ServerOverloaded` this is *per-tenant* policy: the server
    may be idle — the tenant has simply spent its budget.  Retryable
    after ``retry_after_s`` (when the bucket will hold one token again).
    """

    def __init__(self, model_name: str, tenant: str,
                 retry_after_s: float, rate: float, burst: float) -> None:
        self.model_name = model_name
        self.tenant = tenant
        self.retry_after_s = float(retry_after_s)
        self.rate = float(rate)
        self.burst = float(burst)
        super().__init__(
            f"tenant {tenant!r} throttled on model {model_name!r}: "
            f"token bucket empty (rate={rate:g}/s, burst={burst:g}); "
            f"retry after {self.retry_after_s * 1e3:.1f} ms")


class FleetUnavailable(ServeError):
    """Every replica shard for a request's routing key is down.

    Raised by :class:`~repro.serve.fleet.ShardedFleet` when routing
    exhausts the key's replica set — each shard either unhealthy at
    dispatch time or faulted while serving the request.  Retryable after
    shards recover (``check_health`` re-admits probed shards); the
    attempted replica order is carried for log correlation.
    """

    def __init__(self, model_name: str, attempted: list[str]) -> None:
        self.model_name = model_name
        self.attempted = list(attempted)
        super().__init__(
            f"request for model {model_name!r} failed on every replica "
            f"shard (attempted {self.attempted}); fleet unavailable for "
            f"this key until a shard is re-admitted")
