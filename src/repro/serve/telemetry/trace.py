"""Request tracing: spans, a ring-buffered tracer, deterministic export.

The serving stack's question after PR 8 was never "how many requests
failed" — the counters pin that — but "where did *this* request's time
go": queue wait vs batch collect vs tile fan-out vs shard hops vs a
hedge that fired.  A :class:`Span` is one timed stage; a
:class:`Tracer` hands them out, stamps them from a forgeable monotonic
clock, and keeps the most recent ones in a bounded ring so tracing can
stay on in production without growing memory.

Design rules that make the golden-trace tests possible:

* **Forgeable clock** — the tracer never calls ``time`` directly; it
  calls whatever ``clock`` it was built with.  Under a
  :class:`~repro.serve.replay.VirtualClock` every timestamp is a pure
  function of the replayed trace, so the exported jsonl is
  byte-identical across runs (same contract as
  :func:`~repro.serve.replay.event_log`).
* **Sequential span ids** — ids are a process-local counter, not
  uuids, so the export needs no scrubbing to compare equal.
* **No-op when off** — the disabled tracer is :data:`NULL_TRACER`; it
  is falsy, returns the shared :data:`NULL_SPAN` from every call, and
  allocates nothing.  Hot paths pay one attribute load and one truth
  test.
* **Deterministic rendering** — :func:`export_jsonl` sorts keys and
  rounds every float to nanoseconds, exactly like the replay event
  log.

Propagation is by value, not by ambient context: the span object *is*
the context token.  ``server.submit(..., trace_parent=span)`` hangs
child stages under a fleet attempt; ``PredictRequest.trace`` carries
the token through the queue to the batcher and the forward.
"""

from __future__ import annotations

import json
import time
from collections import deque
from itertools import count

__all__ = [
    "Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER",
    "export_jsonl", "parse_jsonl", "summarize_spans", "format_summary",
]


def _json_value(value):
    """Coerce one attribute value into a deterministic JSON scalar."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, int):
        return value
    return str(value)


class Span:
    """One timed stage of a request's life.

    Usable as a context manager (``with tracer.start(...):``) or ended
    explicitly with :meth:`finish`; both are idempotent — the first
    finish wins, later ones are no-ops, so an error path can finish a
    span the success path would also have closed.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs",
                 "_clock")

    def __init__(self, clock, span_id: int, parent_id: int | None,
                 name: str, start: float, attrs: dict) -> None:
        self._clock = clock
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> "Span":
        if self.end is None:
            if attrs:
                self.attrs.update(attrs)
            self.end = self._clock()
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.end is None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()

    def __bool__(self) -> bool:
        return True

    def to_dict(self) -> dict:
        end = self.start if self.end is None else self.end
        d = {
            "span_id": self.span_id,
            "name": self.name,
            "start": round(self.start, 9),
            "end": round(end, 9),
            "dur": round(end - self.start, 9),
        }
        if self.parent_id is not None:
            d["parent_id"] = self.parent_id
        if self.attrs:
            d["attrs"] = {str(k): _json_value(v)
                          for k, v in sorted(self.attrs.items())}
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.end - self.start:.6f}s"
        return f"Span({self.span_id} {self.name!r} {state})"


class NullSpan:
    """The shared no-op span: absorbs every call, parents only itself."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    attrs: dict = {}

    def set(self, **attrs) -> "NullSpan":
        return self

    def finish(self, **attrs) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Hands out spans, stamps them, keeps the newest in a ring buffer.

    ``sample_every=N`` traces one root span (and its whole subtree) out
    of every N — child calls whose parent sampled out get
    :data:`NULL_SPAN` back, so an unsampled request costs nothing
    downstream.  ``capacity`` bounds memory: the ring drops the oldest
    spans first.
    """

    def __init__(self, clock=time.monotonic, capacity: int = 8192,
                 sample_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._clock = clock
        # Lock-free hot path: itertools.count() is atomic in CPython,
        # and deque append/clear/iteration are thread-safe, so start()
        # never takes a lock — that is most of the tracing overhead
        # budget on the request path.
        self._ring: deque[Span] = deque(maxlen=int(capacity))
        self._ids = count()
        self._roots = count()
        self._sample_every = int(sample_every)

    def __bool__(self) -> bool:
        return True

    def start(self, name: str, parent=None, **attrs):
        """Open a span.  ``parent`` is a prior span (the context token)
        or ``None`` for a new root; a root may sample out, in which
        case the caller gets :data:`NULL_SPAN` and every descendant
        call short-circuits on it."""
        if parent is None:
            if self._sample_every > 1 and next(self._roots) \
                    % self._sample_every:
                return NULL_SPAN
            parent_id = None
        elif not parent:
            return NULL_SPAN
        else:
            parent_id = parent.span_id
        span = Span(self._clock, next(self._ids), parent_id,
                    name, self._clock(), attrs)
        self._ring.append(span)
        return span

    def spans(self) -> list[Span]:
        """The retained spans, oldest first (stable id order)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def export_jsonl(self) -> str:
        return export_jsonl(self.spans())


class NullTracer:
    """The disabled tracer: falsy, allocation-free, returns NULL_SPAN."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def start(self, name: str, parent=None, **attrs) -> NullSpan:
        return NULL_SPAN

    def spans(self) -> list:
        return []

    def clear(self) -> None:
        return None

    def export_jsonl(self) -> str:
        return ""


NULL_TRACER = NullTracer()


# --------------------------------------------------------------------- #
# Export / summarize
# --------------------------------------------------------------------- #
def export_jsonl(spans) -> str:
    """Render spans as deterministic jsonl (sorted keys, ns-rounded).

    Accepts :class:`Span` objects or already-rendered dicts; the output
    is ordered by span id, so two identical executions compare equal
    byte-for-byte — the golden-trace contract.
    """
    dicts = [s if isinstance(s, dict) else s.to_dict() for s in spans]
    dicts.sort(key=lambda d: d["span_id"])
    return "".join(json.dumps(d, sort_keys=True) + "\n" for d in dicts)


def parse_jsonl(text: str) -> list[dict]:
    """Inverse of :func:`export_jsonl` (blank lines ignored)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def summarize_spans(spans) -> dict:
    """Per-stage latency breakdown: name -> count/total/mean/p50/p99/max.

    The offline half of ``repro trace summarize``: takes Span objects
    or parsed jsonl dicts, groups by span name (the stage), and reduces
    durations.  Exact percentiles are fine here — this runs on an
    exported file, not on the serving hot path.
    """
    groups: dict[str, list[float]] = {}
    for s in spans:
        d = s if isinstance(s, dict) else s.to_dict()
        groups.setdefault(d["name"], []).append(float(d.get("dur", 0.0)))
    out: dict[str, dict] = {}
    for name, durs in sorted(groups.items()):
        durs.sort()
        total = sum(durs)
        out[name] = {
            "count": len(durs),
            "total_s": total,
            "mean_s": total / len(durs),
            "p50_s": _percentile(durs, 0.50),
            "p99_s": _percentile(durs, 0.99),
            "max_s": durs[-1],
        }
    return out


def format_summary(summary: dict) -> str:
    """Render a :func:`summarize_spans` result as an aligned table,
    widest total first (where the time actually went)."""
    header = ["stage", "count", "total_ms", "mean_ms", "p50_ms",
              "p99_ms", "max_ms"]
    rows = [[name, str(st["count"])] +
            [f"{st[k] * 1e3:.3f}" for k in
             ("total_s", "mean_s", "p50_s", "p99_s", "max_s")]
            for name, st in sorted(
                summary.items(), key=lambda kv: -kv[1]["total_s"])]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(r, widths))))
    return "\n".join(lines)
