"""Unified telemetry for the serving stack: tracing + metrics.

Two halves sharing one forgeable clock:

* :mod:`~repro.serve.telemetry.trace` — per-request spans (queue wait,
  batch collect, forward, tile compute, shard attempt, hedge, stream
  tile) ring-buffered per tracer and exportable as deterministic
  jsonl.
* :mod:`~repro.serve.telemetry.metrics` — named counters / gauges /
  quantile sketches, with the stack's legacy stats dataclasses
  re-registered as read-time views.

:class:`Telemetry` bundles both.  Enablement follows the serving
stack's seam idiom (``fleet.balancer``, ``fleet.retry``, ...): every
layer carries ``telemetry = None`` by default and pays one attribute
load + ``is not None`` test when it is off; ``enable_telemetry`` on a
server or fleet threads one bundle through every layer underneath.

Quickstart::

    tel = Telemetry()
    fleet.enable_telemetry(tel)
    ... serve traffic ...
    print(format_summary(summarize_spans(tel.tracer.spans())))
    Path("metrics.json").write_text(tel.metrics.to_json())
"""

from __future__ import annotations

import time

from .metrics import (Counter, Gauge, MetricsRegistry, MirroredCounters,
                      QuantileSketch)
from .trace import (NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span,
                    Tracer, export_jsonl, format_summary, parse_jsonl,
                    summarize_spans)

__all__ = [
    "Telemetry",
    "Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER",
    "Counter", "Gauge", "QuantileSketch", "MetricsRegistry",
    "MirroredCounters",
    "export_jsonl", "parse_jsonl", "summarize_spans", "format_summary",
]


class Telemetry:
    """One tracer + one metrics registry on one clock.

    ``clock`` must be monotonic; pass a
    :class:`~repro.serve.replay.VirtualClock` for deterministic
    replays.  ``trace_sample=N`` keeps one request trace in N;
    ``trace_capacity`` bounds the span ring.
    """

    def __init__(self, clock=time.monotonic, *, trace_capacity: int = 8192,
                 trace_sample: int = 1) -> None:
        self.clock = clock
        self.tracer = Tracer(clock=clock, capacity=trace_capacity,
                             sample_every=trace_sample)
        self.metrics = MetricsRegistry(clock=clock)
