"""Metrics registry: counters, gauges, quantile sketches, views.

One queryable surface for every number the serving stack produces.
Three instrument kinds plus one adapter:

* :class:`Counter` — monotone event count.
* :class:`Gauge` — last-write-wins level with a bounded ``(t, value)``
  history, so SLO trajectories (p99 over the storm, healthy shards
  over the faults) are assertable per tick, not just terminally.
* :class:`QuantileSketch` — p50/p99 without storing raw samples: a
  geometric-bucket histogram (2% relative resolution) whose memory is
  O(distinct buckets), not O(observations).
* :class:`MirroredCounters` — a drop-in ``dict`` that forwards every
  increment into registry counters.  The fleet swaps its internal
  counter dict for one of these when telemetry is enabled, which gives
  the registry an *independent* accounting path: the counters
  accumulate at the event sites themselves, while the ``stats.*``
  views read the legacy dataclasses lazily.  If the two ever disagree,
  one of them drifted — exactly what the conservation cross-check
  tests catch.

Views (:meth:`MetricsRegistry.register_view`) re-register the existing
``ServerStats`` / ``FleetStats`` / ``ControlStats`` / resilience
counters as zero-copy reads over the live objects, so the numbers the
stack already reports stay bitwise-identical — the registry adds a
name, it does not re-derive the value.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque

__all__ = [
    "Counter", "Gauge", "QuantileSketch", "MetricsRegistry",
    "MirroredCounters",
]


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value


class Gauge:
    """A last-write-wins level with a bounded ``(t, value)`` history."""

    __slots__ = ("name", "_value", "_history", "_clock", "_lock")

    def __init__(self, name: str, clock=time.monotonic,
                 history: int = 512) -> None:
        self.name = name
        self._value = 0.0
        self._clock = clock
        self._history: deque[tuple[float, float]] = deque(maxlen=history)
        self._lock = threading.Lock()

    def set(self, value: float, t: float | None = None) -> None:
        if t is None:
            t = self._clock()
        with self._lock:
            self._value = value
            self._history.append((t, value))

    @property
    def value(self):
        return self._value

    @property
    def history(self) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._history)


class QuantileSketch:
    """p50/p99 from geometric buckets — no raw samples retained.

    Observations land in bucket ``ceil(log_gamma(x))`` (``gamma``
    defaults to 1.02: ~2% relative width).  A quantile walks the
    cumulative counts and reports the matched bucket's upper edge, so
    the answer overshoots the true quantile by at most one bucket
    width.  Non-positive observations collapse into a zero bucket.
    """

    __slots__ = ("name", "_gamma", "_log_gamma", "_buckets", "_zero",
                 "count", "total", "_min", "_max", "_lock")

    def __init__(self, name: str, gamma: float = 1.02) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        self.name = name
        self._gamma = gamma
        self._log_gamma = math.log(gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, x: float) -> None:
        with self._lock:
            self.count += 1
            self.total += x
            self._min = min(self._min, x)
            self._max = max(self._max, x)
            if x <= 0.0:
                self._zero += 1
                return
            idx = math.ceil(math.log(x) / self._log_gamma)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def quantile(self, q: float) -> float:
        """The q-th quantile (q in [0, 1]), to bucket resolution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            seen = self._zero
            if rank <= seen:
                return max(0.0, min(self._min, 0.0))
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if rank <= seen:
                    return self._gamma ** idx
            return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def summary(self) -> dict:
        return {"count": self.count, "mean": self.mean, "min": self.min,
                "max": self.max, "p50": self.p50, "p99": self.p99}


class MetricsRegistry:
    """Named instruments plus views over the stack's legacy stats.

    ``counter``/``gauge``/``histogram`` get-or-create; a name may hold
    exactly one kind.  ``register_view(name, fn)`` binds a zero-arg
    callable evaluated at read time — re-registering the same name
    replaces the view (enabling telemetry twice is harmless).
    """

    def __init__(self, clock=time.monotonic) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._hists: dict[str, QuantileSketch] = {}
        self._views: dict[str, object] = {}

    def _check_name(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._hists, self._views):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    "different kind")

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                self._check_name(name, self._counters)
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str, history: int = 512) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                self._check_name(name, self._gauges)
                inst = self._gauges[name] = Gauge(
                    name, clock=self.clock, history=history)
            return inst

    def histogram(self, name: str, gamma: float = 1.02) -> QuantileSketch:
        with self._lock:
            inst = self._hists.get(name)
            if inst is None:
                self._check_name(name, self._hists)
                inst = self._hists[name] = QuantileSketch(name, gamma=gamma)
            return inst

    def register_view(self, name: str, fn) -> None:
        with self._lock:
            self._check_name(name, self._views)
            self._views[name] = fn

    def value(self, name: str):
        """Read one metric by name (view names evaluate their callable)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
            if name in self._hists:
                return self._hists[name].summary()
            view = self._views.get(name)
        if view is None:
            raise KeyError(name)
        return view()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._gauges)
                          | set(self._hists) | set(self._views))

    def snapshot(self) -> dict:
        """Flat name -> value dict of everything, views evaluated now.

        Histograms flatten into ``name.count`` / ``name.mean`` /
        ``name.p50`` / ``name.p99`` so the snapshot stays scalar-only
        (easy to diff, easy to jsonl)."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hists = {n: h.summary() for n, h in self._hists.items()}
            views = dict(self._views)
        out: dict[str, object] = {}
        out.update(counters)
        out.update(gauges)
        for name, summary in hists.items():
            for key in ("count", "mean", "p50", "p99"):
                out[f"{name}.{key}"] = summary[key]
        for name, fn in views.items():
            out[name] = fn()
        return out

    def to_json(self) -> str:
        def scrub(v):
            return round(v, 9) if isinstance(v, float) else v
        return json.dumps({k: scrub(v) for k, v in self.snapshot().items()},
                          sort_keys=True, indent=2) + "\n"


class MirroredCounters(dict):
    """A counter dict whose increments also land in a registry.

    ``fleet._c["served"] += 1`` keeps working verbatim — ``dict``
    semantics are inherited — but every delta is forwarded to the
    registry counter ``<prefix><key>``.  Existing totals are seeded at
    swap time so the mirror agrees from the first read.
    """

    def __init__(self, base: dict, registry: MetricsRegistry,
                 prefix: str = "") -> None:
        super().__init__(base)
        self._registry = registry
        self._prefix = prefix
        for key, value in base.items():
            if value:
                registry.counter(prefix + str(key)).inc(value)
            else:
                registry.counter(prefix + str(key))

    def __setitem__(self, key, value) -> None:
        delta = value - self.get(key, 0)
        super().__setitem__(key, value)
        if delta:
            self._registry.counter(self._prefix + str(key)).inc(delta)
