"""Consistent-hash ring: deterministic key -> replica-set routing.

The sharded serving fleet spreads registry entries and request load
across shards by hashing the routing key — ``(model name, content
version)`` — onto a ring of virtual nodes.  Consistent hashing is the
right discipline for a fleet whose membership changes (shards ejected on
fault, re-admitted after a probe): when one of N shards leaves, only the
~K/N keys it owned move, instead of the wholesale reshuffle a modular
hash would cause.

Two properties the routing layer depends on (pinned by
``tests/properties/test_hash_ring.py``):

* **Determinism** — points come from SHA-1 of the node/key bytes, never
  from Python's seeded ``hash()``, so every process (and every worker in
  a simulated multi-host fleet) computes the identical ring regardless
  of ``PYTHONHASHSEED``, and construction order does not matter.
* **Replica distinctness** — ``lookup(key, n)`` walks the ring clockwise
  collecting *distinct* nodes, so an R-way replica set never places two
  copies on one shard.

Virtual nodes (``vnodes`` points per shard) smooth the load: with v
points per node the per-node load share concentrates around 1/N with
relative spread ~1/sqrt(v).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


class HashRing:
    """Consistent-hash ring over named nodes with virtual points.

    Keys may be ``bytes``, ``str`` or any tuple of primitives (hashed
    via their stable ``repr``).  ``lookup(key, n)`` returns the first
    ``min(n, len(nodes))`` distinct nodes clockwise from the key's
    point — index 0 is the primary, the rest are its replicas in
    failover order.
    """

    def __init__(self, nodes=(), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        # Parallel sorted arrays: point hashes and the node owning each.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _hash(data: bytes) -> int:
        """64-bit point from SHA-1 (stable across processes/platforms)."""
        return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")

    @staticmethod
    def _key_bytes(key) -> bytes:
        if isinstance(key, bytes):
            return key
        if isinstance(key, str):
            return key.encode()
        # repr of primitive tuples is stable (shortest-round-trip floats).
        return repr(key).encode()

    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a node (idempotent); inserts ``vnodes`` ring points."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = self._hash(f"{node}#{i}".encode())
            # Tie on a point value is astronomically unlikely but must
            # still be deterministic: order equal points by node name.
            idx = bisect.bisect_left(self._points, point)
            while (idx < len(self._points) and self._points[idx] == point
                   and self._owners[idx] < node):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Remove a node and its points (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def lookup(self, key, n: int = 1) -> list[str]:
        """The ``min(n, len(self))`` distinct nodes owning ``key``.

        The first entry is the primary; the rest follow clockwise and
        serve as the failover order for R-way replication.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if not self._nodes:
            raise ValueError("lookup on an empty ring")
        h = self._hash(self._key_bytes(key))
        start = bisect.bisect_right(self._points, h)
        want = min(n, len(self._nodes))
        found: list[str] = []
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) == want:
                    break
        return found

    def __repr__(self) -> str:
        return (f"HashRing(nodes={len(self._nodes)}, "
                f"vnodes={self.vnodes}, points={len(self._points)})")
