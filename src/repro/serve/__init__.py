"""repro.serve — batching, caching inference serving at megavoxel scale.

The paper's economic argument (Sec. 4.3) is that one trained MGDiffNet
amortizes over many ω queries, each orders of magnitude cheaper than a
FEM solve.  This package is the infrastructure realizing that claim:

* :class:`ModelRegistry` — named, versioned, validated checkpoint
  entries (``load``/``register_model``/``get``);
* :class:`PredictionServer` — priority/deadline request queue with
  bounded-queue backpressure, dynamic micro-batching, size-bounded LRU
  result cache (optionally disk-spilled under a byte budget), sync and
  worker-thread front-ends;
* :class:`AsyncPredictionServer` — ``asyncio`` facade wrapping submitted
  futures into awaitables under the same scheduling policy;
* :class:`ShardedFleet` — consistent-hash routing of registry entries
  and request load over N server shards (simulated hosts) with R-way
  replication, fault ejection + failover, and probed re-admission;
* :class:`ControlPlane` — SLO policy loops over a live fleet:
  backoff-scheduled self-healing probes (:class:`HealthProber`),
  power-of-two-choices read spreading (:class:`PowerOfTwoBalancer`),
  per-tenant token-bucket admission (:class:`AdmissionController`) and
  queue-depth autoscaling (:class:`Autoscaler`);
* resilience policies (:func:`install_resilience`) — budgeted retries
  (:class:`RetryPolicy`), quantile-delayed hedged reads
  (:class:`HedgePolicy`) and per-(model, shard) circuit breakers
  (:class:`CircuitBreaker`) on the fleet's call path;
* trace replay (:class:`ReplayHarness`) — deterministic scenario
  scripts (heavy-tailed arrivals, zipfian popularity, diurnal
  envelopes, coordinated fault schedules) replayed against a live
  fleet with byte-identical event logs per seed;
* :func:`tiled_predict` — exact full-field inference on grids too large
  for one forward pass, via ``2**depth``-aligned halo-padded tiles;
* streaming tiled inference — :func:`stream_tiled_predict` yields tile
  cores as they complete, :meth:`PredictionServer.submit_stream` routes
  them through the priority/deadline/backpressure machinery
  (:class:`TileStream`), :meth:`AsyncPredictionServer.stream` is the
  ``async for`` face, and :meth:`ShardedFleet.stream` fails over
  mid-stream without re-sending delivered tiles;
* unified telemetry (:class:`Telemetry`) — request tracing
  (:class:`Tracer` spans through submit → queue → batch → forward →
  tile → shard attempt → hedge → stream delivery, deterministic jsonl
  export) plus a metrics registry (:class:`MetricsRegistry` counters /
  gauges / quantile sketches, legacy stats re-registered as read-time
  views), enabled per server or fleet via ``enable_telemetry`` and off
  (free) by default.

Quickstart::

    from repro.serve import ModelRegistry, PredictionServer, ServerConfig

    registry = ModelRegistry()
    registry.load("poisson2d", "checkpoints/model.npz")
    server = PredictionServer(registry, ServerConfig(max_batch=8))
    with server:                       # worker-thread front-end
        future = server.submit("poisson2d", omega)
        u = future.result()
    u = server.predict("poisson2d", omega)   # sync front-end, cached
"""

from .aio import AsyncPredictionServer
from .batching import MicroBatcher, PredictRequest, RequestQueue
from .cache import CacheStats, LRUCache, quantize_omega, result_key
from .control import (
    AdmissionController, Autoscaler, ControlConfig, ControlPlane,
    ControlStats, HealthProber, PowerOfTwoBalancer, TenantQuota,
)
from .errors import (
    DeadlineExceeded, FleetUnavailable, ServeError, ServerOverloaded,
    TenantThrottled,
)
from .executor import (
    EXECUTOR_KINDS, Executor, ProcessExecutor, SerialExecutor,
    ThreadExecutor, default_workers, make_executor,
)
from .fleet import FleetConfig, FleetStats, Shard, ShardedFleet
from .hashring import HashRing
from .registry import ModelEntry, ModelRegistry, RegistryError, state_version
from .replay import (
    ArrivalSpec, FaultSpec, PopularitySpec, ReplayHarness, ReplayReport,
    Scenario, TenantSpec, TraceEvent, VirtualClock, build_trace, event_log,
    load_scenario,
)
from .resilience import (
    BreakerConfig, CircuitBreaker, HedgeConfig, HedgePolicy, HedgeTimer,
    ResilienceConfig, RetryConfig, RetryPolicy, install_resilience,
    uninstall_resilience,
)
from .server import (
    PredictionServer, ServerConfig, ServerStats, StreamStalled, TileStream,
)
from .spill_ledger import SpillLedger
from .telemetry import (
    NULL_SPAN, NULL_TRACER, Counter, Gauge, MetricsRegistry,
    MirroredCounters, NullSpan, NullTracer, QuantileSketch, Span,
    Telemetry, Tracer, export_jsonl, format_summary, parse_jsonl,
    summarize_spans,
)
from .tiling import (
    TilePlan, autotune_tile, plan_tiles, receptive_halo,
    stream_tiled_forward, stream_tiled_predict, tile_candidates,
    tiled_forward, tiled_predict,
)

__all__ = [
    "AsyncPredictionServer",
    "MicroBatcher", "PredictRequest", "RequestQueue",
    "CacheStats", "LRUCache", "quantize_omega", "result_key",
    "ServeError", "DeadlineExceeded", "ServerOverloaded",
    "TenantThrottled", "FleetUnavailable",
    "AdmissionController", "TenantQuota", "PowerOfTwoBalancer",
    "HealthProber", "Autoscaler",
    "ControlConfig", "ControlPlane", "ControlStats",
    "EXECUTOR_KINDS", "Executor", "SerialExecutor", "ThreadExecutor",
    "ProcessExecutor", "default_workers", "make_executor",
    "FleetConfig", "FleetStats", "Shard", "ShardedFleet", "HashRing",
    "SpillLedger",
    "RetryConfig", "RetryPolicy", "HedgeConfig", "HedgePolicy",
    "BreakerConfig", "CircuitBreaker", "HedgeTimer", "ResilienceConfig",
    "install_resilience", "uninstall_resilience",
    "ArrivalSpec", "PopularitySpec", "TenantSpec", "FaultSpec",
    "Scenario", "TraceEvent", "VirtualClock", "ReplayHarness",
    "ReplayReport", "build_trace", "event_log", "load_scenario",
    "ModelEntry", "ModelRegistry", "RegistryError", "state_version",
    "PredictionServer", "ServerConfig", "ServerStats", "TileStream",
    "StreamStalled",
    "TilePlan", "plan_tiles", "receptive_halo", "tile_candidates",
    "autotune_tile", "tiled_forward", "tiled_predict",
    "stream_tiled_forward", "stream_tiled_predict",
    "Telemetry", "Tracer", "Span", "NullSpan", "NullTracer",
    "NULL_SPAN", "NULL_TRACER", "Counter", "Gauge", "QuantileSketch",
    "MetricsRegistry", "MirroredCounters", "export_jsonl", "parse_jsonl",
    "summarize_spans", "format_summary",
]
