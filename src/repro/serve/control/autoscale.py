"""Queue-depth-driven elasticity: spawn and retire shards under load.

The signal is the mean queue depth (pending + in-flight) across healthy
shards — the same gauge the p2c balancer reads per-request, aggregated
per-fleet.  Mean depth above ``scale_up_depth`` means requests are
waiting everywhere (not just on one hot shard, which is the balancer's
problem); below ``scale_down_depth`` the fleet is paying for idle
shards.

Two guards keep the loop from thrashing:

* **hysteresis streaks** — a scale decision needs the signal to hold
  for ``up_streak`` (resp. ``down_streak``) consecutive ticks, so one
  bursty tick cannot spawn a shard and the next retire it;
* **a dead band** — anything between the two thresholds resets both
  streaks, so the loop is quiescent at moderate load.

Scaling actuates through the fleet's own membership primitives:
``add_shard`` (reconcile-before-swap: the newcomer holds every model
the new ring routes to it before any request can arrive) and
``retire_shard`` (the victim leaves the ring, keeps serving its queued
work, drains, then closes).  Consistent hashing makes both moves cheap
— only the keys whose replica sets actually change re-register.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..fleet import ShardedFleet

__all__ = ["Autoscaler"]


class Autoscaler:
    """Hysteresis-guarded scale controller over one fleet.

    ``tick()`` samples the load gauge and may perform at most one
    membership change; it returns ``"up"``, ``"down"`` or ``None`` so
    forged-clock tests can assert the exact decision sequence.
    """

    def __init__(self, fleet: "ShardedFleet",
                 min_shards: int = 1, max_shards: int = 8,
                 scale_up_depth: float = 8.0,
                 scale_down_depth: float = 0.5,
                 up_streak: int = 2, down_streak: int = 3,
                 drain_timeout_s: float = 10.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not 1 <= min_shards <= max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if scale_down_depth >= scale_up_depth:
            raise ValueError("scale_down_depth must sit below "
                             "scale_up_depth (the dead band)")
        if up_streak < 1 or down_streak < 1:
            raise ValueError("streaks must be >= 1")
        self.fleet = fleet
        self.min_shards = int(min_shards)
        self.max_shards = int(max_shards)
        self.scale_up_depth = float(scale_up_depth)
        self.scale_down_depth = float(scale_down_depth)
        self.up_streak = int(up_streak)
        self.down_streak = int(down_streak)
        self.drain_timeout_s = float(drain_timeout_s)
        self._clock = clock
        self._up = 0
        self._down = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.last_depth = 0.0

    def mean_depth(self) -> float:
        """Mean queue depth across healthy shards (all, if none are)."""
        with self.fleet._lock:
            shards = [s for s in self.fleet.shards if s.healthy]
            shards = shards or list(self.fleet.shards)
        if not shards:
            return 0.0
        return sum(s.queue_depth for s in shards) / len(shards)

    def tick(self, now: float | None = None) -> str | None:
        """Sample load, update streaks, actuate at most one change."""
        depth = self.last_depth = self.mean_depth()
        n = len(self.fleet.shards)
        if depth >= self.scale_up_depth and n < self.max_shards:
            self._up += 1
            self._down = 0
            if self._up >= self.up_streak:
                self._up = 0
                self.fleet.add_shard()
                self.scale_ups += 1
                return "up"
        elif depth <= self.scale_down_depth and n > self.min_shards:
            self._down += 1
            self._up = 0
            if self._down >= self.down_streak:
                self._down = 0
                self.fleet.retire_shard(
                    drain_timeout_s=self.drain_timeout_s)
                self.scale_downs += 1
                return "down"
        else:
            # Dead band (or at a bound): quiescent, streaks reset.
            self._up = self._down = 0
        return None
