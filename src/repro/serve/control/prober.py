"""Self-healing: background health probing with exponential backoff.

The fleet's own ``check_health()`` is an *operator* primitive — someone
has to call it, and it probes every cooled-down ejected shard every
time, which against a genuinely dead host means burning a full probe
timeout per call forever.  The prober turns recovery into a control
loop nobody has to babysit:

* each unhealthy shard gets its own probe schedule — first probe
  immediately, then exponential backoff (``base * 2^(fails-1)``,
  capped at ``max_backoff_s``) so a dead shard costs asymptotically
  one probe per ``max_backoff_s`` instead of one per tick;
* the backoff window is **full-jittered** from a seeded RNG (draw
  uniformly in ``[(1-jitter) * window, window]``): shards ejected by
  one correlated event — a burst of false hang ejections, a rack power
  blip — would otherwise share an identical schedule and probe in
  lockstep forever, hammering the fleet at the same instants.
  ``jitter=0.0`` restores the exact deterministic schedule;
* probes run through :meth:`ShardedFleet.probe_shard` with a *short*
  explicit budget (``probe_timeout_s``) — a hung shard eats that
  budget, not the 30 s recovery default the operator path uses;
* after ``permanent_after`` consecutive failures the shard is declared
  permanently lost and handed to
  :meth:`ShardedFleet.decommission_shard`, which removes it from the
  ring and re-registers its keys' models onto the replica sets the
  shrunken ring assigns — the fleet heals back to full R-way
  replication without an operator in the loop.

``tick(now)`` is the whole loop body and takes the clock as an
argument, so unit tests drive it with a forged clock and assert the
exact probe/backoff schedule; the background thread lives in
:class:`~repro.serve.control.plane.ControlPlane`, not here.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..fleet import ShardedFleet

__all__ = ["HealthProber"]


class _ProbeRecord:
    __slots__ = ("fails", "next_probe_at")

    def __init__(self) -> None:
        self.fails = 0
        self.next_probe_at = 0.0   # 0 → probe immediately

    def backoff(self, base: float, cap: float) -> float:
        return min(cap, base * 2.0 ** max(0, self.fails - 1))


class HealthProber:
    """Per-shard probe scheduler over one fleet.

    Parameters
    ----------
    fleet:
        The live :class:`~repro.serve.fleet.ShardedFleet` to heal.
    base_backoff_s / max_backoff_s:
        Exponential backoff window between probes of one failing shard.
    probe_timeout_s:
        Budget for each probe prediction — what a hung shard costs us.
    permanent_after:
        Consecutive probe failures before the shard is decommissioned
        and its keys re-replicated.  ``None`` disables permanent-loss
        handling (the prober backs off forever).
    clock:
        Monotonic-seconds source for the *schedule* (injectable; the
        probe prediction itself always runs in real time).
    jitter:
        Fraction of each backoff window randomized (full jitter by
        default): the wait is drawn uniformly from
        ``[(1-jitter) * window, window]``, de-synchronizing shards
        ejected by the same event.  ``0.0`` = the exact schedule.
    seed:
        Seed of the jitter RNG — two probers with one seed defer
        identically, so jittered runs stay reproducible.
    """

    def __init__(self, fleet: "ShardedFleet",
                 base_backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0,
                 probe_timeout_s: float = 1.0,
                 permanent_after: int | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 jitter: float = 1.0,
                 seed: int = 0) -> None:
        if base_backoff_s <= 0 or max_backoff_s < base_backoff_s:
            raise ValueError("need 0 < base_backoff_s <= max_backoff_s")
        if permanent_after is not None and permanent_after < 1:
            raise ValueError("permanent_after must be >= 1 (or None)")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.fleet = fleet
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.permanent_after = permanent_after
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._clock = clock
        self._records: dict[str, _ProbeRecord] = {}
        self.probes = 0
        self.backoffs = 0          # probes *deferred* by a backoff window
        self.readmissions = 0
        self.decommissions = 0
        self.reregistrations = 0   # (key, shard) registrations from losses

    def next_probe_at(self, shard_id: str) -> float:
        """When the named shard's next probe is due (0 = immediately)."""
        record = self._records.get(shard_id)
        return record.next_probe_at if record is not None else 0.0

    def tick(self, now: float | None = None) -> list[str]:
        """Probe every unhealthy shard whose backoff has elapsed.

        Returns the shard ids probed this tick (readmitted or not) —
        the deterministic unit the forged-clock tests assert on.
        """
        now = self._clock() if now is None else now
        with self.fleet._lock:
            shards = list(self.fleet.shards)
        live_ids = {s.id for s in shards}
        # Records of shards that recovered (by any path: our probe, a
        # last-resort serve, an operator probe) or left the fleet reset
        # — a future ejection starts a fresh backoff schedule.
        for sid in list(self._records):
            if sid not in live_ids:
                del self._records[sid]
        probed: list[str] = []
        for shard in shards:
            if shard.healthy:
                self._records.pop(shard.id, None)
                continue
            record = self._records.setdefault(shard.id, _ProbeRecord())
            if now < record.next_probe_at:
                self.backoffs += 1
                continue
            probed.append(shard.id)
            self.probes += 1
            if self.fleet.probe_shard(shard,
                                      timeout_s=self.probe_timeout_s):
                self.readmissions += 1
                self._records.pop(shard.id, None)
                continue
            record.fails += 1
            if (self.permanent_after is not None
                    and record.fails >= self.permanent_after
                    and len(self.fleet.shards) > 1):
                # Permanently lost: remove from the ring and restore
                # full replication on the survivors.  A 1-shard fleet
                # never decommissions — there is nowhere to re-replicate
                # to, so keep probing at max backoff instead.
                moves = self.fleet.decommission_shard(shard.id)
                self.decommissions += 1
                self.reregistrations += moves
                self._records.pop(shard.id, None)
                continue
            window = record.backoff(self.base_backoff_s,
                                    self.max_backoff_s)
            if self.jitter > 0.0:
                # Full jitter: shards ejected together draw different
                # waits from the shared seeded RNG (consumed in the
                # deterministic fleet.shards iteration order, so the
                # whole jittered schedule is still reproducible).
                window *= (1.0 - self.jitter
                           + self.jitter * self._rng.random())
            record.next_probe_at = now + window
        return probed
