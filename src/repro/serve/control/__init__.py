"""SLO-driven control plane over a :class:`~repro.serve.fleet.
ShardedFleet`: self-healing probes, power-of-two-choices load
spreading, per-tenant admission control, and queue-depth autoscaling.

The fleet (PR 5) is mechanism — eject, probe, re-admit, route.  This
package is policy: closed loops that call those primitives so the fleet
meets its SLOs without an operator.  Every loop exposes a deterministic
``tick(now)`` core for forged-clock unit tests; the
:class:`ControlPlane` facade composes them and optionally runs them on
a real background thread.
"""

from .admission import AdmissionController, TenantQuota
from .autoscale import Autoscaler
from .balance import PowerOfTwoBalancer
from .plane import ControlConfig, ControlPlane, ControlStats
from .prober import HealthProber

__all__ = [
    "AdmissionController", "TenantQuota",
    "Autoscaler",
    "PowerOfTwoBalancer",
    "HealthProber",
    "ControlConfig", "ControlPlane", "ControlStats",
]
