"""The control plane: one facade wiring healing, spreading, quotas and
elasticity onto a live fleet.

PR 5's fleet is mechanism: it *can* eject, probe, re-admit, rebalance —
if someone calls the right method at the right time.  This module is
the policy loop that does the calling, structured the way the priority
-aging scheduler was: a **deterministic core** (``tick(now)`` — pure
function of the injected clock and the fleet's state, unit-testable
with forged clocks) and an **optional real-time shell** (``start()``
spawns a daemon thread that ticks every ``tick_interval_s``;
``stop()`` joins it).  Chaos tests run the thread for realism; unit
tests call ``tick`` directly and never sleep.

Installation is explicit and reversible: constructing a
:class:`ControlPlane` installs the p2c balancer and the admission
controller onto the fleet's seams (``fleet.balancer`` /
``fleet.admission``); ``uninstall()`` puts the ``None``s back.  The
prober and autoscaler hold no fleet state at all — they only call
public fleet primitives (``probe_shard`` / ``decommission_shard`` /
``add_shard`` / ``retire_shard``), each of which preserves the request
conservation law on its own, so the composed loop does too.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .admission import AdmissionController, TenantQuota
from .autoscale import Autoscaler
from .balance import PowerOfTwoBalancer
from .prober import HealthProber

if TYPE_CHECKING:
    from ..fleet import ShardedFleet

__all__ = ["ControlConfig", "ControlStats", "ControlPlane"]


@dataclass(frozen=True)
class ControlConfig:
    """Tunables of one :class:`ControlPlane`."""

    # Self-healing (prober).
    probe_base_backoff_s: float = 0.05
    probe_max_backoff_s: float = 2.0
    probe_timeout_s: float = 1.0
    # Consecutive probe failures before a shard is declared permanently
    # lost, decommissioned, and its keys re-replicated.  None: never.
    permanent_after: int | None = None
    # Fraction of each probe backoff window randomized (full jitter by
    # default) so simultaneously-ejected shards don't probe in
    # lockstep; 0.0 restores the exact deterministic schedule.
    probe_jitter: float = 1.0
    probe_seed: int = 0
    # Load spreading (power-of-two-choices).
    balance: bool = True
    balance_seed: int = 0
    # Admission control: None leaves tenants unmetered.
    tenant_rate: float | None = None
    tenant_burst: float | None = None   # default: 2 * rate
    # Elasticity.
    autoscale: bool = False
    autoscale_min: int = 1
    autoscale_max: int = 8
    scale_up_depth: float = 8.0
    scale_down_depth: float = 0.5
    up_streak: int = 2
    down_streak: int = 3
    drain_timeout_s: float = 10.0
    # Real-time shell.
    tick_interval_s: float = 0.05


@dataclass
class ControlStats:
    """Control-loop counters (fleet counters live in ``FleetStats``)."""

    ticks: int = 0
    probes: int = 0
    backoffs: int = 0
    readmissions: int = 0
    decommissions: int = 0
    reregistrations: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    balance_decisions: int = 0
    balance_diversions: int = 0
    admitted: int = 0
    throttled: int = 0
    tenants: dict = field(default_factory=dict)
    last_depth: float = 0.0


class ControlPlane:
    """Policy loop over one :class:`~repro.serve.fleet.ShardedFleet`.

    Usage (deterministic)::

        plane = ControlPlane(fleet, ControlConfig(permanent_after=4),
                             clock=forged.now)
        plane.tick(now=t)                  # one loop body, no threads

    Usage (real time)::

        with fleet, ControlPlane(fleet, cfg) as plane:
            ... serve traffic; the plane heals/spreads/scales behind ...
        plane.stats.readmissions
    """

    def __init__(self, fleet: "ShardedFleet",
                 config: ControlConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.fleet = fleet
        self.config = config or ControlConfig()
        self._clock = clock
        self._ticks = 0
        self._views_registered = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        cfg = self.config
        self.prober = HealthProber(
            fleet,
            base_backoff_s=cfg.probe_base_backoff_s,
            max_backoff_s=cfg.probe_max_backoff_s,
            probe_timeout_s=cfg.probe_timeout_s,
            permanent_after=cfg.permanent_after,
            clock=clock,
            jitter=cfg.probe_jitter,
            seed=cfg.probe_seed)
        self.balancer = (PowerOfTwoBalancer(seed=cfg.balance_seed)
                         if cfg.balance else None)
        self.admission = None
        if cfg.tenant_rate is not None:
            burst = (cfg.tenant_burst if cfg.tenant_burst is not None
                     else 2.0 * cfg.tenant_rate)
            self.admission = AdmissionController(
                TenantQuota(rate=cfg.tenant_rate, burst=burst),
                clock=clock)
        self.autoscaler = None
        if cfg.autoscale:
            self.autoscaler = Autoscaler(
                fleet,
                min_shards=cfg.autoscale_min,
                max_shards=cfg.autoscale_max,
                scale_up_depth=cfg.scale_up_depth,
                scale_down_depth=cfg.scale_down_depth,
                up_streak=cfg.up_streak,
                down_streak=cfg.down_streak,
                drain_timeout_s=cfg.drain_timeout_s,
                clock=clock)
        # Install the per-request policies onto the fleet's seams.
        fleet.balancer = self.balancer if self.balancer else fleet.balancer
        fleet.admission = self.admission if self.admission else fleet.admission

    # ------------------------------------------------------------------ #
    # Deterministic core
    # ------------------------------------------------------------------ #
    def tick(self, now: float | None = None) -> None:
        """One control-loop body: heal, then (maybe) scale."""
        now = self._clock() if now is None else now
        self._ticks += 1
        self.prober.tick(now)
        if self.autoscaler is not None:
            self.autoscaler.tick(now)
        telemetry = getattr(self.fleet, "telemetry", None)
        if telemetry is not None:
            self._record_slo(telemetry, now)

    def _record_slo(self, telemetry, now: float) -> None:
        """Stamp the per-tick SLO trajectory into the metrics registry.

        Gauges carry a bounded ``(t, value)`` history, so a replayed
        storm can assert the whole trajectory — p99 spiking and
        recovering, the healthy-shard count dipping and healing — not
        just the final value.  ``ControlStats`` counters are lazily
        re-registered as read-time ``stats.control.*`` views on the
        first telemetry-visible tick.
        """
        reg = telemetry.metrics
        if not self._views_registered:
            self._views_registered = True
            for name in ("ticks", "probes", "backoffs", "readmissions",
                         "decommissions", "reregistrations", "scale_ups",
                         "scale_downs", "balance_decisions",
                         "balance_diversions", "admitted", "throttled"):
                reg.register_view(f"stats.control.{name}",
                                  lambda n=name: getattr(self.stats, n))
        stats = self.fleet.stats
        reg.counter("control.ticks").inc()
        reg.gauge("slo.p99_ms").set(stats.p99 * 1e3, t=now)
        reg.gauge("slo.healthy_shards").set(stats.healthy_shards, t=now)
        depth = sum(s.queue_depth for s in list(self.fleet.shards))
        reg.gauge("slo.queue_depth").set(depth, t=now)

    # ------------------------------------------------------------------ #
    # Real-time shell
    # ------------------------------------------------------------------ #
    def start(self) -> "ControlPlane":
        """Spawn the background tick thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="control-plane", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.config.tick_interval_s)

    def stop(self) -> None:
        """Stop and join the tick thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=30.0)

    def uninstall(self) -> None:
        """Remove the per-request policies from the fleet's seams."""
        if self.fleet.balancer is self.balancer:
            self.fleet.balancer = None
        if self.fleet.admission is self.admission:
            self.fleet.admission = None

    def __enter__(self) -> "ControlPlane":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ControlStats:
        out = ControlStats(
            ticks=self._ticks,
            probes=self.prober.probes,
            backoffs=self.prober.backoffs,
            readmissions=self.prober.readmissions,
            decommissions=self.prober.decommissions,
            reregistrations=self.prober.reregistrations)
        if self.autoscaler is not None:
            out.scale_ups = self.autoscaler.scale_ups
            out.scale_downs = self.autoscaler.scale_downs
            out.last_depth = self.autoscaler.last_depth
        if self.balancer is not None:
            out.balance_decisions = self.balancer.decisions
            out.balance_diversions = self.balancer.diversions
        if self.admission is not None:
            out.admitted = self.admission.admitted
            out.throttled = self.admission.throttled
            out.tenants = self.admission.snapshot()
        return out

    def __repr__(self) -> str:
        parts = ["prober"]
        if self.balancer is not None:
            parts.append("p2c")
        if self.admission is not None:
            parts.append("admission")
        if self.autoscaler is not None:
            parts.append("autoscale")
        state = "running" if self.running else "idle"
        return f"ControlPlane({'+'.join(parts)}, {state})"
