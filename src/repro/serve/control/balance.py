"""Power-of-two-choices read spreading over a key's replica set.

Consistent hashing gives every key a fixed primary, so a hot key melts
one shard while its replicas idle — the classic skew failure.  Routing
every read to the *globally* least-loaded replica fixes skew but herds:
all concurrent routers see the same minimum and pile onto it before its
queue gauge catches up.  The power-of-two-choices rule (Mitzenmacher
2001) is the standard middle path: sample **two** replicas uniformly,
send the read to the less-loaded of the pair.  Exponentially better
load balance than random placement, at two gauge reads per request and
no herding — different routers sample different pairs.

The balancer only *reorders* the replica list the ring produced; it
never adds or removes a replica, so failover still walks the full set
and correctness (which shards hold the model) stays the ring's job.
The load signal is :attr:`Shard.queue_depth` — pending + in-flight on
the shard's server, the same gauge the autoscaler keys on.
"""

from __future__ import annotations

import random
import threading

__all__ = ["PowerOfTwoBalancer"]


class PowerOfTwoBalancer:
    """Seeded, thread-safe two-choice replica ordering.

    Parameters
    ----------
    seed:
        Seeds the private ``random.Random`` so benchmark and chaos runs
        replay identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.decisions = 0    # order() calls that actually sampled
        self.diversions = 0   # picks that were not the ring primary

    def order(self, replicas: list) -> list:
        """Reorder ``replicas`` (ring order, primary first) for one read.

        Samples two distinct *healthy* replicas and promotes the one
        with the smaller queue depth; ties keep ring order (the earlier
        replica wins, so a balanced fleet behaves exactly like the
        primary-only router).  With fewer than two healthy replicas
        there is no choice to make and the ring order stands.  The
        result always contains every input replica — failover's
        replica walk must see the full set.
        """
        healthy = [s for s in replicas if getattr(s, "healthy", True)]
        if len(healthy) < 2:
            return list(replicas)
        with self._lock:
            i, j = self._rng.sample(range(len(healthy)), 2)
            self.decisions += 1
        if i > j:
            i, j = j, i           # i is the earlier (ring-order) sample
        a, b = healthy[i], healthy[j]
        # Strict inequality: a tie goes to the earlier replica, keeping
        # the deterministic ring order under equal load.
        pick = b if b.queue_depth < a.queue_depth else a
        if pick is not replicas[0]:
            with self._lock:
                self.diversions += 1
        return [pick] + [s for s in replicas if s is not pick]
