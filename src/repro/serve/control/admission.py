"""Per-tenant admission control: token buckets above backpressure.

``max_pending`` protects the *server* — it bounds total queued work but
is blind to who queued it, so one greedy tenant can fill the queue and
starve everyone into ``ServerOverloaded``.  Admission control protects
the *tenants from each other*: each tenant owns a token bucket refilled
at ``rate`` tokens/s up to ``burst`` capacity, a submit spends one
token, and an empty bucket raises a keyed
:class:`~repro.serve.errors.TenantThrottled` carrying ``retry_after_s``
(when the bucket will next hold a token) — the polite client sleeps
exactly that long instead of hammering.

The controller is pure policy: no threads, no background refill — the
bucket is refilled lazily from the elapsed clock at each ``try_acquire``
(the standard lazy token bucket), so an injected clock makes every
decision deterministic under test.  Thread-safe: fleets call
``try_acquire`` from many client threads at once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TenantQuota", "AdmissionController"]


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's budget: sustained ``rate`` req/s, ``burst`` capacity."""

    rate: float    # tokens (requests) refilled per second
    burst: float   # bucket capacity: max requests admitted back-to-back

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1 (or nothing ever admits)")


class _Bucket:
    __slots__ = ("tokens", "updated_at", "admitted", "throttled")

    def __init__(self, tokens: float, now: float) -> None:
        self.tokens = tokens
        self.updated_at = now
        self.admitted = 0
        self.throttled = 0


class AdmissionController:
    """Lazy token buckets, one per tenant, under one lock.

    Parameters
    ----------
    default_quota:
        Budget applied to any tenant without an explicit ``set_quota``.
    clock:
        Monotonic-seconds source; injectable for deterministic tests.
    """

    def __init__(self, default_quota: TenantQuota,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.default_quota = default_quota
        self._clock = clock
        self._lock = threading.Lock()
        self._quotas: dict[str, TenantQuota] = {}
        self._buckets: dict[str, _Bucket] = {}

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Pin a tenant's budget (resets its bucket to a full burst)."""
        with self._lock:
            self._quotas[tenant] = quota
            self._buckets[tenant] = _Bucket(quota.burst, self._clock())

    def quota_for(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._quotas.get(tenant, self.default_quota)

    def try_acquire(self, tenant: str, cost: float = 1.0) -> float | None:
        """Spend ``cost`` tokens from ``tenant``'s bucket.

        Returns ``None`` on admission, or the seconds until the bucket
        will hold ``cost`` tokens again — the ``retry_after_s`` a
        :class:`~repro.serve.errors.TenantThrottled` carries.
        """
        now = self._clock()
        with self._lock:
            quota = self._quotas.get(tenant, self.default_quota)
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _Bucket(quota.burst, now)
                self._buckets[tenant] = bucket
            # Lazy refill: tokens accrued since the last decision.
            elapsed = max(0.0, now - bucket.updated_at)
            bucket.tokens = min(quota.burst,
                                bucket.tokens + elapsed * quota.rate)
            bucket.updated_at = now
            if bucket.tokens >= cost:
                bucket.tokens -= cost
                bucket.admitted += 1
                return None
            bucket.throttled += 1
            return (cost - bucket.tokens) / quota.rate

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant accounting: admitted / throttled / tokens left."""
        with self._lock:
            return {tenant: {"admitted": b.admitted,
                             "throttled": b.throttled,
                             "tokens": b.tokens}
                    for tenant, b in self._buckets.items()}

    @property
    def admitted(self) -> int:
        with self._lock:
            return sum(b.admitted for b in self._buckets.values())

    @property
    def throttled(self) -> int:
        with self._lock:
            return sum(b.throttled for b in self._buckets.values())
