"""Client-side resilience: retry budgets, hedged reads, circuit breakers.

The fleet's server-side machinery (failover, probing, autoscaling) heals
*shards*; this module heals *calls*.  Three policies, each deterministic
under an injected clock/seed so the chaos suite can pin exact behavior:

* :class:`RetryPolicy` — seeded exponential backoff with **full jitter**
  (delay drawn uniformly from ``[0, min(cap, base * 2^attempt)]``, the
  AWS-style schedule that de-correlates a thundering herd) behind a
  **token-bucket retry budget**: retries spend from a bucket refilled at
  ``budget_rate`` tokens/s up to ``budget_burst``, so a degraded fleet
  sees at most ``burst + rate * t`` extra requests no matter how many
  callers are failing — retries can never become the storm they are
  meant to ride out.  A :class:`~repro.serve.errors.TenantThrottled`
  rejection is retried after exactly its ``retry_after_s`` (the bucket's
  own refill horizon) instead of a blind backoff.
* :class:`HedgePolicy` — tail-latency insurance: after a quantile of the
  observed latency distribution elapses without an answer, issue one
  backup request to a *different* replica; first answer wins, the loser
  is cancelled and counted.  The delay tracks a rolling latency window,
  so hedges fire only for genuinely slow requests (~the slowest
  ``100 - quantile`` percent), bounding the extra load.
* :class:`CircuitBreaker` — per ``(model, shard)`` closed → open →
  half-open state machine: ``failure_threshold`` consecutive faults open
  the circuit, dispatch then prefers other replicas, and after
  ``reset_after_s`` a limited number of half-open trial requests decide
  between closing it and re-opening.  ``tick(now)`` advances due
  transitions deterministically, matching the control plane's forged
  -clock discipline; ``allow`` also performs the transition lazily so no
  background thread is required.

Wiring: :func:`install_resilience` sets the fleet's ``retry`` / ``hedge``
/ ``breaker`` seams (``None`` by default, like ``balancer`` and
``admission``).  Every new outcome these policies create is folded into
the fleet's conservation law — each retry is a fresh, individually
-accounted submit; a hedge winner counts ``served`` (+``hedged_wins``)
exactly once via the fleet's delivered-guard; a breaker deflection
reorders replicas but never drops a request.  ``FleetStats.lost == 0``
holds with everything switched on, which the replay harness
(:mod:`repro.serve.replay`) proves under scripted storms.

Quickstart::

    fleet = ShardedFleet(FleetConfig(shards=4, replicas=2))
    install_resilience(fleet, ResilienceConfig(
        retry=RetryConfig(max_attempts=3, budget_rate=2.0),
        hedge=HedgeConfig(quantile=95.0),
        breaker=BreakerConfig(failure_threshold=3)))
    with fleet:
        u = fleet.predict("m", omega)   # retried / hedged / breaker-aware
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from .errors import FleetUnavailable, ServerOverloaded, TenantThrottled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fleet import ShardedFleet

__all__ = [
    "RetryConfig", "RetryPolicy", "HedgeConfig", "HedgePolicy",
    "BreakerConfig", "CircuitBreaker", "ResilienceConfig",
    "install_resilience", "uninstall_resilience", "HedgeTimer",
]


# --------------------------------------------------------------------- #
# Retry: seeded full-jitter backoff under a token-bucket budget
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryConfig:
    """Tunables of one :class:`RetryPolicy`."""

    max_attempts: int = 3        # total tries, the first one included
    base_backoff_s: float = 0.005
    max_backoff_s: float = 0.5
    budget_rate: float = 2.0     # retry tokens refilled per second
    budget_burst: float = 8.0    # bucket capacity: max back-to-back retries
    seed: int = 0                # jitter RNG seed (deterministic replay)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s <= 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError("need 0 < base_backoff_s <= max_backoff_s")
        if self.budget_rate <= 0 or self.budget_burst < 1:
            raise ValueError("need budget_rate > 0 and budget_burst >= 1")


class RetryPolicy:
    """Decide, per failed attempt, whether and when to try again.

    ``plan(exc, attempt)`` is the whole API: it returns the seconds to
    back off before re-submitting, or ``None`` when the call must give
    up — because the error is not retryable, the attempt budget is
    exhausted, or the *fleet-wide* retry token bucket is empty.  The
    bucket is the storm brake: whatever the failure rate, retries are
    capped at ``budget_burst + budget_rate * t`` over any window of
    ``t`` seconds, so retrying clients shed load instead of amplifying
    it.  Thread-safe; deterministic under an injected clock and seed.

    ``retryable`` (constructor arg) overrides the default
    classification — by default only the transient serving verdicts
    retry (:class:`FleetUnavailable`, :class:`ServerOverloaded`,
    :class:`TenantThrottled`); request-level errors (bad ω, unknown
    model, expired deadline) never do.
    """

    def __init__(self, config: RetryConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 retryable: Callable[[BaseException], bool] | None = None
                 ) -> None:
        self.config = config or RetryConfig()
        self._clock = clock
        self._retryable = retryable
        self._rng = random.Random(self.config.seed)
        self._lock = threading.Lock()
        self._tokens = float(self.config.budget_burst)
        self._updated_at: float | None = None
        self.retries = 0       # plans granted
        self.denied = 0        # plans refused by an empty budget
        self.exhausted = 0     # plans refused by max_attempts

    def retryable(self, exc: BaseException) -> bool:
        if self._retryable is not None:
            return self._retryable(exc)
        return isinstance(exc, (FleetUnavailable, ServerOverloaded,
                                TenantThrottled))

    @property
    def tokens(self) -> float:
        """Current budget level (diagnostics; refilled lazily)."""
        with self._lock:
            return self._tokens

    def budget_ceiling(self, window_s: float) -> float:
        """Most retries the budget can possibly grant in ``window_s``."""
        cfg = self.config
        return cfg.budget_burst + cfg.budget_rate * max(0.0, window_s)

    def plan(self, exc: BaseException, attempt: int,
             now: float | None = None) -> float | None:
        """Seconds to back off before retry ``attempt + 1``, or ``None``.

        ``attempt`` is the 0-based index of the attempt that just
        failed.  A granted plan spends one budget token; the delay is
        full-jittered except for :class:`TenantThrottled`, which is
        honored at exactly its ``retry_after_s``.
        """
        if not self.retryable(exc):
            return None
        now = self._clock() if now is None else now
        cfg = self.config
        with self._lock:
            if attempt + 1 >= cfg.max_attempts:
                self.exhausted += 1
                return None
            # Lazy refill, then spend — the admission controller's
            # token-bucket idiom, pointed at our own retries.
            if self._updated_at is not None:
                elapsed = max(0.0, now - self._updated_at)
                self._tokens = min(cfg.budget_burst,
                                   self._tokens + elapsed * cfg.budget_rate)
            self._updated_at = now
            if self._tokens < 1.0:
                self.denied += 1
                return None
            self._tokens -= 1.0
            self.retries += 1
            if isinstance(exc, TenantThrottled):
                return max(0.0, float(exc.retry_after_s))
            window = min(cfg.max_backoff_s,
                         cfg.base_backoff_s * 2.0 ** attempt)
            return self._rng.uniform(0.0, window)


# --------------------------------------------------------------------- #
# Hedging: quantile-tracked backup requests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HedgeConfig:
    """Tunables of one :class:`HedgePolicy`."""

    quantile: float = 95.0       # latency percentile that arms the hedge
    min_delay_s: float = 0.001
    max_delay_s: float = 0.25
    window: int = 512            # rolling latency samples tracked
    warmup: int = 16             # below this many samples: max_delay_s

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 100.0:
            raise ValueError("quantile must be in (0, 100)")
        if self.min_delay_s <= 0 or self.max_delay_s < self.min_delay_s:
            raise ValueError("need 0 < min_delay_s <= max_delay_s")
        if self.window < 1 or self.warmup < 1:
            raise ValueError("window and warmup must be >= 1")


class HedgePolicy:
    """Track served latencies; say how long to wait before hedging.

    The fleet feeds every served latency to :meth:`observe`; a submit
    arms its hedge at :meth:`delay_s` — the tracked ``quantile`` of the
    rolling window, clamped to ``[min_delay_s, max_delay_s]``.  Until
    ``warmup`` samples exist the delay is ``max_delay_s`` (hedge rarely
    rather than blindly).  Counters: ``hedges`` issued, ``wins`` where
    the backup answered first, ``cancels`` where the loser was shed
    before computing.
    """

    def __init__(self, config: HedgeConfig | None = None) -> None:
        self.config = config or HedgeConfig()
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=self.config.window)
        self.hedges = 0
        self.wins = 0
        self.cancels = 0

    def observe(self, latency_s: float) -> None:
        with self._lock:
            self._samples.append(float(latency_s))

    def delay_s(self) -> float:
        cfg = self.config
        with self._lock:
            if len(self._samples) < cfg.warmup:
                return cfg.max_delay_s
            q = float(np.percentile(np.asarray(self._samples), cfg.quantile))
        return min(cfg.max_delay_s, max(cfg.min_delay_s, q))

    def record_hedge(self) -> None:
        with self._lock:
            self.hedges += 1

    def record_win(self) -> None:
        with self._lock:
            self.wins += 1

    def record_cancel(self) -> None:
        with self._lock:
            self.cancels += 1


# --------------------------------------------------------------------- #
# Circuit breaker: per-key closed / open / half-open
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one :class:`CircuitBreaker`."""

    failure_threshold: int = 3   # consecutive faults that open a circuit
    reset_after_s: float = 1.0   # open -> half-open cool-down
    half_open_max: int = 1       # concurrent trial requests while half-open

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        if self.half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")


class _Circuit:
    __slots__ = ("state", "fails", "opened_at", "trials", "armed_at")

    def __init__(self) -> None:
        self.state = "closed"
        self.fails = 0
        self.opened_at = 0.0
        self.trials = 0      # half-open trial slots handed out
        self.armed_at = 0.0  # when the current trial slots were armed


class CircuitBreaker:
    """Closed/open/half-open circuits, one per hashable key.

    The fleet keys circuits by ``(model name, shard id)``: a shard can
    be broken for one model's replica set and fine for another's.
    ``allow(key)`` answers "may a request go there right now?" —
    ``True`` for closed circuits and for up to ``half_open_max`` trial
    requests once the ``reset_after_s`` cool-down has elapsed; ``False``
    while open.  Outcomes feed back through ``record_success`` (closes)
    and ``record_failure`` (opens / re-opens).  Transitions happen
    lazily inside ``allow`` *and* eagerly in ``tick(now)``, so the
    breaker works both on the hot path and under the control plane's
    deterministic forged-clock loop.  Trial slots burned without an
    outcome (the request went elsewhere) re-arm after another
    ``reset_after_s`` — a half-open circuit can never wedge.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._circuits: dict[Hashable, _Circuit] = {}
        self.trips = 0        # closed/half-open -> open transitions
        self.resets = 0       # open/half-open -> closed transitions
        self.half_opens = 0   # open -> half-open transitions
        self.rejections = 0   # allow() calls answered False

    def _half_open(self, circuit: _Circuit, now: float) -> None:
        circuit.state = "half-open"
        circuit.trials = 0
        circuit.armed_at = now
        self.half_opens += 1

    def allow(self, key: Hashable, now: float | None = None) -> bool:
        """May a request be dispatched under ``key`` right now?"""
        now = self._clock() if now is None else now
        cfg = self.config
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == "closed":
                return True
            if circuit.state == "open":
                if now - circuit.opened_at < cfg.reset_after_s:
                    self.rejections += 1
                    return False
                self._half_open(circuit, now)
            # Half-open: hand out trial slots; re-arm slots that were
            # granted but never produced an outcome.
            if (circuit.trials >= cfg.half_open_max
                    and now - circuit.armed_at >= cfg.reset_after_s):
                circuit.trials = 0
                circuit.armed_at = now
            if circuit.trials < cfg.half_open_max:
                circuit.trials += 1
                return True
            self.rejections += 1
            return False

    def record_success(self, key: Hashable) -> None:
        """An answer arrived under ``key``: close (forget) its circuit."""
        with self._lock:
            circuit = self._circuits.pop(key, None)
            if circuit is not None and circuit.state != "closed":
                self.resets += 1

    def record_failure(self, key: Hashable,
                       now: float | None = None) -> None:
        """A shard fault under ``key``: count toward / re-open its
        circuit (request-level errors must *not* be reported here)."""
        now = self._clock() if now is None else now
        cfg = self.config
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            if circuit.state == "open":
                circuit.opened_at = now   # still failing: restart cool-down
                return
            circuit.fails += 1
            if circuit.state == "half-open" \
                    or circuit.fails >= cfg.failure_threshold:
                circuit.state = "open"
                circuit.opened_at = now
                self.trips += 1

    def tick(self, now: float | None = None) -> list[Hashable]:
        """Advance due open -> half-open transitions; transitioned keys.

        The deterministic counterpart of the lazy transition in
        ``allow`` — a control loop can drive the breaker with a forged
        clock exactly like the prober and the autoscaler.
        """
        now = self._clock() if now is None else now
        moved: list[Hashable] = []
        with self._lock:
            for key, circuit in self._circuits.items():
                if (circuit.state == "open"
                        and now - circuit.opened_at
                        >= self.config.reset_after_s):
                    self._half_open(circuit, now)
                    moved.append(key)
        return moved

    def state(self, key: Hashable) -> str:
        with self._lock:
            circuit = self._circuits.get(key)
            return "closed" if circuit is None else circuit.state

    def snapshot(self) -> dict[Hashable, str]:
        """Key -> state view of every non-closed circuit."""
        with self._lock:
            return {k: c.state for k, c in self._circuits.items()
                    if c.state != "closed"}


# --------------------------------------------------------------------- #
# Hedge timer: one daemon thread firing scheduled callbacks
# --------------------------------------------------------------------- #
class HedgeTimer:
    """Minimal monotonic-deadline scheduler for hedge dispatches.

    The fleet schedules ``hedge_dispatch(future)`` at ``now + delay``
    per read; one daemon thread pops due entries off a heap and runs
    them.  Tests that want determinism skip the timer entirely and call
    ``fleet.hedge_dispatch`` directly — the timer is only the real-time
    shell, exactly like the control plane's tick thread.
    """

    def __init__(self, name: str = "fleet-hedge-timer") -> None:
        self._heap: list[tuple[float, int, Callable[[], object]]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(target=self._run, name=name,
                                        daemon=True)
        self._thread.start()

    def schedule(self, when: float, fn: Callable[[], object]) -> None:
        """Run ``fn()`` at monotonic time ``when`` (best effort)."""
        with self._cond:
            if self._closed:
                return
            heapq.heappush(self._heap, (when, self._seq, fn))
            self._seq += 1
            self._cond.notify()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                        not self._heap
                        or self._heap[0][0] > time.monotonic()):
                    wait = (None if not self._heap
                            else max(0.0,
                                     self._heap[0][0] - time.monotonic()))
                    self._cond.wait(wait)
                if self._closed:
                    return
                _, _, fn = heapq.heappop(self._heap)
            try:
                fn()
            except Exception:   # pragma: no cover - defensive: a hedge
                pass            # misfire must never kill the timer

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._heap.clear()
            self._cond.notify_all()
        if self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)


# --------------------------------------------------------------------- #
# Bundle install
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResilienceConfig:
    """Which policies to install on a fleet (None = leave that seam)."""

    retry: RetryConfig | None = None
    hedge: HedgeConfig | None = None
    breaker: BreakerConfig | None = None


def install_resilience(fleet: "ShardedFleet",
                       config: ResilienceConfig | None = None,
                       clock: Callable[[], float] = time.monotonic
                       ) -> "ShardedFleet":
    """Construct the configured policies onto the fleet's resilience
    seams (``fleet.retry`` / ``fleet.hedge`` / ``fleet.breaker``).

    With a default config every seam is installed with its policy's own
    defaults.  ``clock`` is shared by the retry budget and the breaker
    so a forged clock drives both deterministically.
    """
    config = config or ResilienceConfig(retry=RetryConfig(),
                                        hedge=HedgeConfig(),
                                        breaker=BreakerConfig())
    if config.retry is not None:
        fleet.retry = RetryPolicy(config.retry, clock=clock)
    if config.hedge is not None:
        fleet.hedge = HedgePolicy(config.hedge)
    if config.breaker is not None:
        fleet.breaker = CircuitBreaker(config.breaker, clock=clock)
    telemetry = getattr(fleet, "telemetry", None)
    if telemetry is not None:
        _register_resilience_views(fleet, telemetry.metrics)
    return fleet


def uninstall_resilience(fleet: "ShardedFleet") -> None:
    """Put the ``None``s back (PR-7 behavior)."""
    fleet.retry = None
    fleet.hedge = None
    fleet.breaker = None


def _register_resilience_views(fleet: "ShardedFleet", registry) -> None:
    """Re-register the resilience policy counters as read-time
    ``stats.retry.* / stats.hedge.* / stats.breaker.*`` metric views.

    The lambdas read the live seams at view-read time, so the views
    survive policies being installed, swapped or uninstalled after
    registration — an empty seam simply reads 0.  Called both by
    :func:`install_resilience` (when the fleet already carries a
    telemetry bundle) and by ``ShardedFleet.enable_telemetry`` (for
    policies installed first); ``register_view`` replaces, so the
    double registration is harmless.
    """
    def seam(name: str, attr: str, default=0):
        def read():
            policy = getattr(fleet, name)
            return getattr(policy, attr) if policy is not None else default
        return read

    for attr in ("retries", "denied", "exhausted"):
        registry.register_view(f"stats.retry.{attr}", seam("retry", attr))
    registry.register_view("stats.retry.tokens",
                           seam("retry", "tokens", 0.0))
    for attr in ("hedges", "wins", "cancels"):
        registry.register_view(f"stats.hedge.{attr}", seam("hedge", attr))
    for attr in ("trips", "resets", "half_opens", "rejections"):
        registry.register_view(f"stats.breaker.{attr}",
                               seam("breaker", attr))
