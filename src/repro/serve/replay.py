"""Deterministic trace replay: scripted production storms on a fleet.

The ROADMAP's open question after PR 5/7 was never "does one fault heal"
— the chaos suite pins that — but "does the *system* survive realistic
failure weather": heavy-tailed arrivals, zipfian hot keys, diurnal load
swings, multi-tenant priority mixes, and faults that land *together*
(a kill during a hang during a flap).  This module makes such weather a
reproducible artifact, the same discipline DNN-MG-style time-stepping
applies to numerics — identical seed + scenario ⇒ identical timeline:

* :class:`Scenario` — a JSON-loadable script: arrival process
  (lognormal or exponential inter-arrivals, optional diurnal rate
  envelope), model popularity (zipfian or uniform), tenant mix
  (weights, priorities, deadlines) and a coordinated fault schedule
  ("kill shard 2 at t=3s", "hang shard 0 for 2s at t=5s", "flap
  shard 1").
* :func:`build_trace` — expands a scenario into a flat, timestamped
  event list using **one** ``numpy`` Generator seeded by the scenario:
  the trace is a pure function of (scenario, seed), so
  :func:`event_log` — the jsonl rendering — is byte-identical across
  runs, machines and processes.  That is the replay contract the bench
  gates: same seed twice ⇒ ``event_log`` strings compare equal.
* :class:`ReplayHarness` — executes a trace against a live
  :class:`~repro.serve.fleet.ShardedFleet`: requests are paced to
  their timestamps (``time_scale`` stretches or crushes the clock),
  fault events drive per-shard chaos hooks (kill = submit raises,
  hang = forward blocks until released), and the drain phase re-runs
  transient verdicts through the fleet's installed
  :class:`~repro.serve.resilience.RetryPolicy`.  The report carries
  the outcome census, the fleet stats (``lost == 0`` is the
  acceptance gate), and the event log that produced them.
* :class:`VirtualClock` — a forgeable now() for the deterministic unit
  tests of the policies themselves (the trace generator needs no clock
  at all: its timeline is data).

Quickstart::

    scenario = load_scenario("benchmarks/scenarios/storm.json")
    fleet = ShardedFleet(FleetConfig(shards=4, shard_timeout_s=0.75))
    ...register scenario.models...
    with fleet:
        report = ReplayHarness(fleet, scenario).run()
    assert report.lost == 0
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .errors import FleetUnavailable, ServerOverloaded, TenantThrottled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fleet import Shard, ShardedFleet

__all__ = [
    "ArrivalSpec", "PopularitySpec", "TenantSpec", "FaultSpec", "Scenario",
    "TraceEvent", "VirtualClock", "ShardChaos", "ReplayHarness",
    "ReplayReport", "build_trace", "event_log", "load_scenario",
]

_FAULT_OPS = ("kill", "hang", "flap")


# --------------------------------------------------------------------- #
# Scenario script
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ArrivalSpec:
    """Inter-arrival process + optional diurnal rate envelope."""

    process: str = "lognormal"     # "lognormal" (heavy tail) | "exponential"
    rate: float = 50.0             # mean requests per second
    sigma: float = 0.8             # lognormal shape (tail heaviness)
    diurnal_period_s: float = 0.0  # 0 disables the envelope
    diurnal_amplitude: float = 0.0  # peak rate swing, in [0, 1)

    def __post_init__(self) -> None:
        if self.process not in ("lognormal", "exponential"):
            raise ValueError(f"unknown arrival process {self.process!r}")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_amplitude > 0.0 and self.diurnal_period_s <= 0.0:
            raise ValueError("diurnal_period_s must be positive when "
                             "diurnal_amplitude > 0")


@dataclass(frozen=True)
class PopularitySpec:
    """Which model a request asks for (hot-key skew)."""

    kind: str = "zipf"             # "zipf" | "uniform"
    s: float = 1.1                 # zipf exponent (weight of rank k: k^-s)

    def __post_init__(self) -> None:
        if self.kind not in ("zipf", "uniform"):
            raise ValueError(f"unknown popularity kind {self.kind!r}")
        if self.kind == "zipf" and self.s <= 0:
            raise ValueError("zipf exponent s must be positive")


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: share of requests, priority, deadline."""

    name: str
    weight: float = 1.0
    priority: int = 0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: kill / hang / flap a shard at time ``t``."""

    t: float
    op: str                        # "kill" | "hang" | "flap"
    shard: int
    duration_s: float | None = None  # kill: restore after; hang: release
    period_s: float = 1.0          # flap: one down/up cycle length
    count: int = 1                 # flap: number of cycles

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("fault t must be >= 0")
        if self.op not in _FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r} "
                             f"(expected one of {_FAULT_OPS})")
        if self.shard < 0:
            raise ValueError("fault shard index must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive when set")
        if self.op == "flap" and (self.period_s <= 0 or self.count < 1):
            raise ValueError("flap needs period_s > 0 and count >= 1")


@dataclass(frozen=True)
class Scenario:
    """A full replay script — the unit the JSON files serialize."""

    name: str
    seed: int
    duration_s: float
    models: tuple[str, ...]
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    popularity: PopularitySpec = field(default_factory=PopularitySpec)
    tenants: tuple[TenantSpec, ...] = (TenantSpec("default"),)
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.models:
            raise ValueError("scenario needs at least one model")
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")

    @classmethod
    def from_dict(cls, raw: dict) -> "Scenario":
        """Build + validate a scenario from parsed JSON."""
        if not isinstance(raw, dict):
            raise ValueError("scenario document must be a JSON object")
        known = {"name", "seed", "duration_s", "models", "arrivals",
                 "popularity", "tenants", "faults"}
        extra = set(raw) - known
        if extra:
            raise ValueError(f"unknown scenario fields: {sorted(extra)}")
        for key in ("name", "seed", "duration_s", "models"):
            if key not in raw:
                raise ValueError(f"scenario is missing required {key!r}")
        return cls(
            name=str(raw["name"]),
            seed=int(raw["seed"]),
            duration_s=float(raw["duration_s"]),
            models=tuple(str(m) for m in raw["models"]),
            arrivals=ArrivalSpec(**raw.get("arrivals", {})),
            popularity=PopularitySpec(**raw.get("popularity", {})),
            tenants=tuple(TenantSpec(**t) for t in raw.get(
                "tenants", [{"name": "default"}])),
            faults=tuple(FaultSpec(**f) for f in raw.get("faults", [])),
        )


def load_scenario(path: str | Path) -> Scenario:
    """Parse + validate one scenario JSON file."""
    text = Path(path).read_text()
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"scenario file {path} is not valid JSON: "
                         f"{exc}") from exc
    return Scenario.from_dict(raw)


# --------------------------------------------------------------------- #
# Trace expansion: scenario -> flat deterministic event list
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceEvent:
    """One timestamped replay event (request or fault edge)."""

    t: float
    seq: int
    kind: str                      # request | kill | restore | hang | release
    model: str | None = None
    tenant: str | None = None
    priority: int | None = None
    deadline_s: float | None = None
    omega: tuple[float, ...] | None = None
    shard: int | None = None

    def to_dict(self) -> dict:
        d = {"t": self.t, "seq": self.seq, "kind": self.kind}
        for key in ("model", "tenant", "priority", "deadline_s", "shard"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        if self.omega is not None:
            d["omega"] = list(self.omega)
        return d


def _popularity_weights(scenario: Scenario) -> np.ndarray:
    n = len(scenario.models)
    if scenario.popularity.kind == "zipf":
        w = np.array([1.0 / k ** scenario.popularity.s
                      for k in range(1, n + 1)])
    else:
        w = np.ones(n)
    return np.cumsum(w / w.sum())


def build_trace(scenario: Scenario, omega_dim: int = 4,
                omega_range: tuple[float, float] = (-3.0, 3.0)
                ) -> list[TraceEvent]:
    """Expand a scenario into its timestamped event list.

    A pure function of ``(scenario, omega_dim, omega_range)``: every
    random draw — inter-arrival, model pick, tenant pick, ω — comes
    from one ``np.random.default_rng(scenario.seed)`` in a fixed order,
    so two calls produce identical events and :func:`event_log` renders
    them to byte-identical jsonl.  Timestamps are rounded to
    nanoseconds so the log stays tidy and the executed trace matches
    the logged one exactly.
    """
    rng = np.random.default_rng(scenario.seed)
    arrivals = scenario.arrivals
    cum_models = _popularity_weights(scenario)
    tenant_w = np.array([t.weight for t in scenario.tenants])
    cum_tenants = np.cumsum(tenant_w / tenant_w.sum())
    if arrivals.process == "lognormal":
        # mu chosen so the lognormal's *mean* inter-arrival is 1/rate:
        # E[X] = exp(mu + sigma^2/2).
        mu = math.log(1.0 / arrivals.rate) - 0.5 * arrivals.sigma ** 2
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        if arrivals.process == "lognormal":
            dt = float(rng.lognormal(mu, arrivals.sigma))
        else:
            dt = float(rng.exponential(1.0 / arrivals.rate))
        if arrivals.diurnal_amplitude > 0.0:
            # A rate envelope compresses inter-arrivals at the peak and
            # stretches them in the trough; the floor keeps a deep
            # trough from freezing the timeline.
            envelope = 1.0 + arrivals.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / arrivals.diurnal_period_s)
            dt /= max(0.1, envelope)
        t += dt
        if t >= scenario.duration_s:
            break
        model = scenario.models[
            int(np.searchsorted(cum_models, rng.random(), side="right"))]
        tenant = scenario.tenants[
            int(np.searchsorted(cum_tenants, rng.random(), side="right"))]
        omega = rng.uniform(omega_range[0], omega_range[1], size=omega_dim)
        events.append(TraceEvent(
            t=round(t, 9), seq=0, kind="request", model=model,
            tenant=tenant.name, priority=tenant.priority,
            deadline_s=tenant.deadline_s,
            omega=tuple(round(float(x), 9) for x in omega)))
    for fault in scenario.faults:
        if fault.op == "kill":
            events.append(TraceEvent(t=round(fault.t, 9), seq=0,
                                     kind="kill", shard=fault.shard))
            if fault.duration_s is not None:
                events.append(TraceEvent(
                    t=round(fault.t + fault.duration_s, 9), seq=0,
                    kind="restore", shard=fault.shard))
        elif fault.op == "hang":
            duration = fault.duration_s or 1.0
            events.append(TraceEvent(t=round(fault.t, 9), seq=0,
                                     kind="hang", shard=fault.shard))
            events.append(TraceEvent(t=round(fault.t + duration, 9), seq=0,
                                     kind="release", shard=fault.shard))
        else:   # flap: count down/up cycles of period_s
            for i in range(fault.count):
                down = fault.t + i * fault.period_s
                events.append(TraceEvent(t=round(down, 9), seq=0,
                                         kind="kill", shard=fault.shard))
                events.append(TraceEvent(
                    t=round(down + fault.period_s / 2.0, 9), seq=0,
                    kind="restore", shard=fault.shard))
    # Stable sort on time: same-timestamp events keep their expansion
    # order (requests first, then faults in schedule order), which is
    # itself deterministic — the total order is reproducible.
    events.sort(key=lambda ev: ev.t)
    return [replace(ev, seq=i) for i, ev in enumerate(events)]


def event_log(events: list[TraceEvent]) -> str:
    """Render a trace as jsonl — the byte-identical replay artifact."""
    return "".join(json.dumps(ev.to_dict(), sort_keys=True) + "\n"
                   for ev in events)


# --------------------------------------------------------------------- #
# Forgeable clock (deterministic unit tests of time-based policies)
# --------------------------------------------------------------------- #
class VirtualClock:
    """A now() that moves only when told to.

    Inject it as the ``clock`` of any policy with deterministic tick
    semantics (retry budget, circuit breaker, prober, autoscaler) and
    drive time from the test: ``clock.advance(0.5)``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("time does not flow backwards")
        self._now += dt
        return self._now

    def sleep(self, dt: float) -> None:
        """Clock-compatible stand-in for ``time.sleep``."""
        self.advance(dt)


# --------------------------------------------------------------------- #
# Per-shard chaos hooks (the scripted faults' actuators)
# --------------------------------------------------------------------- #
class ShardChaos:
    """Reversible fault injection on one shard's server.

    ``kill`` makes ``submit`` *and* ``submit_stream`` raise (the fleet
    sees a shard fault and fails over — a mid-scenario stream resumes
    its undelivered tiles on a replica); ``hang`` gates ``_forward``
    and the per-tile ``_stream_tiles`` generator on an event (requests
    and streams stall until ``release`` — or until the fleet's hang
    budget ejects the shard); ``restore`` undoes everything.  The same
    mechanics as the single-fault chaos suite, packaged for scenario
    scripts.

    Re-entrant faults are safe: a second ``hang`` before the first is
    released swaps in a fresh gate but *sets the superseded one first*,
    so waiters parked on the old event are handed to the new gate's
    lifecycle instead of being orphaned forever — ``release``/
    ``restore`` then genuinely un-hangs the shard, which is what lets
    the harness's ``finally`` clean up a trace aborted mid-hang.
    """

    def __init__(self, shard: "Shard",
                 clock: "VirtualClock | None" = None) -> None:
        self.shard = shard
        self.clock = clock
        self._submit = shard.server.submit
        self._submit_stream = shard.server.submit_stream
        self._forward = shard.server._forward
        self._stream_tiles = shard.server._stream_tiles
        self._release = threading.Event()
        self._release.set()

    def kill(self) -> None:
        def dead(*args, **kwargs):
            raise ConnectionError(
                f"{self.shard.id} is down (scripted kill)")
        self.shard.server.submit = dead
        self.shard.server.submit_stream = dead

    def hang(self, until: float | None = None) -> None:
        # Swap the gate first, then open the superseded one: any thread
        # still parked on the previous event wakes and proceeds (that
        # hang is over), while new work blocks on the fresh gate.  The
        # old buggy shape — dropping the previous Event unreleased —
        # left prior waiters blocked on an object no longer reachable
        # through release()/restore(): a leaked hung shard.
        prev = self._release
        release = self._release = threading.Event()
        prev.set()
        forward = self._forward
        stream_tiles = self._stream_tiles
        clock = self.clock

        def stall() -> None:
            if clock is not None and until is not None:
                # Virtual time: a hang becomes "the forward takes until
                # the scripted release".  Blocking would deadlock the
                # single pacing thread — the release event that frees a
                # real hang is dispatched by the very thread parked
                # here — so advance the clock to the release target and
                # proceed instead.
                if not release.is_set():
                    release.set()
                    now = clock()
                    if until > now:
                        clock.advance(until - now)
            else:
                release.wait()

        def stalled(*args, **kwargs):
            stall()
            return forward(*args, **kwargs)

        def stalled_stream(*args, **kwargs):
            # Generator: the wait lands on first next(), i.e. on the
            # server's stream worker — the consumer side observes a
            # stalled next_record() and the fleet's budget ejects us.
            stall()
            yield from stream_tiles(*args, **kwargs)

        self.shard.server._forward = stalled
        self.shard.server._stream_tiles = stalled_stream

    def release(self) -> None:
        self._release.set()
        self.shard.server._forward = self._forward
        self.shard.server._stream_tiles = self._stream_tiles

    def restore(self) -> None:
        self.shard.server.submit = self._submit
        self.shard.server.submit_stream = self._submit_stream
        self.release()


# --------------------------------------------------------------------- #
# Harness: execute a trace against a live fleet
# --------------------------------------------------------------------- #
@dataclass
class ReplayReport:
    """What one replay run produced."""

    scenario: str
    seed: int
    events: int                    # trace events executed
    requests: int                  # request events among them
    outcomes: dict                 # final verdict census per request
    wall_s: float
    stats: object                  # FleetStats snapshot at the end
    log: str                       # the jsonl event log that was replayed
    spans: list = field(default_factory=list)  # exported span dicts
    #                                (telemetry-enabled runs; else empty)

    @property
    def lost(self) -> int:
        return self.stats.lost

    @property
    def served(self) -> int:
        return self.outcomes.get("served", 0)

    def span_log(self) -> str:
        """Span jsonl — the golden-trace artifact (empty string when
        the run carried no telemetry bundle)."""
        from .telemetry import export_jsonl
        return export_jsonl(self.spans)


class ReplayHarness:
    """Pace a scenario's trace against a fleet and account every request.

    ``time_scale`` multiplies every timestamp (0.25 replays a scenario
    at 4x speed); the trace itself is untouched, so the *log* stays
    byte-identical across speeds.  Requests go through
    ``fleet.submit``; transient verdicts are re-submitted in the drain
    phase through the fleet's installed retry policy (if any) — each
    retry a fresh, individually conserved submit.  Fault events drive
    :class:`ShardChaos` hooks on the fleet's shards by index.  Every
    hook is restored before the drain, whatever happens mid-run.

    With ``clock`` (a :class:`VirtualClock`) the pacing loop advances
    the clock instead of sleeping — combined with an *unstarted* fleet
    (submits process inline on the pacing thread) the whole replay is
    single-threaded and deterministic; scripted hangs become "the
    forward takes until the scripted release" in virtual time.  With
    ``telemetry`` the bundle is threaded through the fleet (if not
    already) and the report carries the exported spans —
    ``report.span_log()`` is the golden-trace artifact.
    """

    def __init__(self, fleet: "ShardedFleet", scenario: Scenario, *,
                 time_scale: float = 1.0,
                 request_timeout_s: float = 30.0,
                 omega_dim: int | None = None,
                 clock: VirtualClock | None = None,
                 telemetry=None) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.fleet = fleet
        self.scenario = scenario
        self.time_scale = time_scale
        self.request_timeout_s = request_timeout_s
        self.clock = clock
        self.telemetry = telemetry
        if telemetry is not None and getattr(fleet, "telemetry",
                                             None) is None:
            fleet.enable_telemetry(telemetry)
        registered = set(fleet.names())
        missing = [m for m in scenario.models if m not in registered]
        if missing:
            raise ValueError(
                f"scenario models not registered in the fleet: {missing}")
        if omega_dim is None:
            omega_dim = int(fleet.get(scenario.models[0]).problem.field.m)
        self.trace = build_trace(scenario, omega_dim=omega_dim)

    def _now(self) -> float:
        return self.clock() if self.clock is not None else time.monotonic()

    def _sleep(self, dt: float) -> None:
        if self.clock is not None:
            self.clock.sleep(dt)
        else:
            time.sleep(dt)

    def run(self) -> ReplayReport:
        fleet = self.fleet
        with fleet._lock:
            shards = list(fleet.shards)
        chaos = {i: ShardChaos(shard, clock=self.clock)
                 for i, shard in enumerate(shards)}
        # Virtual pacing cannot block on a hang (single thread), so the
        # release target of every scripted hang is precomputed from the
        # trace and handed to the hook: the stalled forward advances
        # the clock to it instead of waiting.
        releases: dict[int, list[float]] = {}
        if self.clock is not None:
            for ev in self.trace:
                if ev.kind == "release":
                    releases.setdefault(ev.shard % len(chaos),
                                        []).append(ev.t)
        records: list[tuple[TraceEvent, object, BaseException | None]] = []
        start = self._now()
        try:
            for ev in self.trace:
                target = start + ev.t * self.time_scale
                delay = target - self._now()
                if delay > 0:
                    self._sleep(delay)
                if ev.kind == "request":
                    future, exc = self._submit(ev)
                    records.append((ev, future, exc))
                    continue
                hook = chaos[ev.shard % len(chaos)]
                if ev.kind == "kill":
                    hook.kill()
                elif ev.kind == "restore":
                    hook.restore()
                elif ev.kind == "hang":
                    until = None
                    if self.clock is not None:
                        pending = releases.get(ev.shard % len(chaos), [])
                        while pending and pending[0] < ev.t:
                            pending.pop(0)
                        if pending:
                            until = (start
                                     + pending.pop(0) * self.time_scale)
                    hook.hang(until=until)
                elif ev.kind == "release":
                    hook.release()
        finally:
            for hook in chaos.values():
                hook.restore()
        outcomes: Counter = Counter()
        for ev, future, exc in records:
            outcomes[self._drain(ev, future, exc)] += 1
        wall = self._now() - start
        spans = ([span.to_dict()
                  for span in self.telemetry.tracer.spans()]
                 if self.telemetry is not None else [])
        return ReplayReport(
            scenario=self.scenario.name, seed=self.scenario.seed,
            events=len(self.trace), requests=len(records),
            outcomes=dict(outcomes), wall_s=wall, stats=fleet.stats,
            log=event_log(self.trace), spans=spans)

    def _submit(self, ev: TraceEvent):
        """One paced submit; transient sync verdicts become pending
        retry material instead of aborting the run."""
        try:
            future = self.fleet.submit(
                ev.model, np.asarray(ev.omega), priority=ev.priority,
                deadline_s=ev.deadline_s, tenant=ev.tenant)
            return future, None
        except (FleetUnavailable, ServerOverloaded, TenantThrottled) as exc:
            return None, exc

    def _drain(self, ev: TraceEvent, future, exc) -> str:
        """Final verdict of one request, retrying transient failures
        through the fleet's retry policy.  Returns the outcome label
        ("served" or the terminal exception class name)."""
        policy = self.fleet.retry
        attempt = 0
        while True:
            if future is not None:
                try:
                    self.fleet.await_result(future, self.request_timeout_s)
                    return "served"
                except Exception as raised:
                    exc = raised
            delay = None if policy is None else policy.plan(exc, attempt)
            if delay is None:
                return type(exc).__name__
            attempt += 1
            self.fleet.note_retry()
            if delay > 0:
                self._sleep(delay * self.time_scale)
            future, exc = self._submit(ev)
            if future is None and exc is None:  # pragma: no cover
                return "unknown"
